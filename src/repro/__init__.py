"""repro — a Python reproduction of "Composing Dataplane Programs with µP4"
(Soni et al., SIGCOMM 2020).

The package rebuilds the paper's full stack:

* a P4₁₆-subset frontend with the µP4 language extensions,
* µPA, the logical architecture (interfaces + logical externs),
* the µP4C midend (linking, operational-region analysis,
  parser/deparser→MAT homogenization, composition by inlining,
  header-stack/varbit lowering, PDG slicing),
* V1Model and Tofino (TNA) backends, the latter with a PHV/ALU/stage
  resource model reproducing the paper's Tables 2 and 3,
* a behavioral switch target that executes composed programs on real
  packet bytes, and
* the paper's module library (Table 1) with composed programs P1–P7
  plus monolithic baselines.

Quickstart::

    from repro import compile_module, build_dataplane
    main = compile_module(open("main.up4").read(), "main.up4")
    lib = compile_module(open("ipv4.up4").read(), "ipv4.up4")
    dp = build_dataplane(main, [lib])
    dp.api.add_entry("forward_tbl", [7], "forward", [0xAA, 0xBB, 3])
    outs = dp.inject(packet_bytes, in_port=1)
"""

from repro.core.api import (
    Dataplane,
    build_dataplane,
    compile_module,
    compose_modules,
    load_ir,
    save_ir,
)
from repro.core.arch import ARCHITECTURE, describe_architecture
from repro.core.driver import CompilerOptions, Up4Compiler
from repro.errors import (
    AnalysisError,
    BackendError,
    CompileError,
    LexError,
    LinkError,
    ParseError,
    ReproError,
    ResourceError,
    TargetError,
    TypeCheckError,
)
from repro.net.packet import Packet

__version__ = "1.0.0"

__all__ = [
    "Dataplane",
    "build_dataplane",
    "compile_module",
    "compose_modules",
    "save_ir",
    "load_ir",
    "ARCHITECTURE",
    "describe_architecture",
    "CompilerOptions",
    "Up4Compiler",
    "Packet",
    "ReproError",
    "CompileError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "LinkError",
    "AnalysisError",
    "BackendError",
    "ResourceError",
    "TargetError",
    "__version__",
]
