"""Per-packet execution traces for the behavioral target.

A :class:`PacketTrace` is an ordered event log of what the interpreter
did to one packet: parser extraction, every MAT apply (hit/miss, the
matched entry, the selected action and its arguments), deparsing/emits,
and the final disposition (output port, drop).  Behavioral tests use it
to assert *why* a packet was forwarded, not just that it was::

    outs, trace = instance.process_traced(pkt, in_port=1)
    assert trace.hit_sequence() == ["ipv4_lpm_tbl:process", "forward_tbl:forward"]

Tracing is opt-in per packet; the untraced path costs one ``is None``
check per event site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Version stamp for machine-readable trace exports (``to_json_line``,
#: ``--trace-out``); bump when the event schema changes shape.
TRACE_SCHEMA_VERSION = 1


@dataclass
class TraceEvent:
    """One step of packet processing."""

    kind: str  # extract | parser_state | table | deparse | emit | output | drop | fault
    data: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.data[key]

    def get(self, key: str, default: object = None) -> object:
        return self.data.get(key, default)

    def describe(self) -> str:
        if self.kind == "table":
            verdict = "hit" if self.data.get("hit") else "miss"
            entry = self.data.get("entry")
            where = f" entry#{entry}" if entry is not None else ""
            args = self.data.get("args") or []
            argtext = f"({', '.join(str(a) for a in args)})" if args else ""
            return (
                f"table {self.data['table']} keys={self.data.get('keys')} "
                f"-> {verdict}{where} action={self.data.get('action')}{argtext}"
            )
        detail = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"{self.kind} {detail}".rstrip()


class PacketTrace:
    """Ordered event log for one packet's trip through a pipeline.

    ``shard`` tags the trace with the engine shard that processed the
    packet (None outside sharded runs), so traces collected from
    parallel workers stay attributable after merging.
    """

    def __init__(self, shard: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.shard = shard

    # ------------------------------------------------------------------
    # Recording (called by the interpreter/pipeline)
    # ------------------------------------------------------------------
    def add(self, kind: str, **data: object) -> TraceEvent:
        event = TraceEvent(kind=kind, data=data)
        self.events.append(event)
        return event

    def extract(self, source: str, length: int, **extra: object) -> None:
        self.add("extract", source=source, bytes=length, **extra)

    def parser_state(self, state: str) -> None:
        self.add("parser_state", state=state)

    def table(
        self,
        table: str,
        keys: Sequence[int],
        action: str,
        hit: bool,
        entry: Optional[int] = None,
        const: Optional[bool] = None,
        args: Sequence[int] = (),
    ) -> None:
        self.add(
            "table",
            table=table,
            keys=list(keys),
            action=action,
            hit=hit,
            entry=entry,
            const=const,
            args=list(args),
        )

    def emit(self, header: str, length: int) -> None:
        self.add("emit", header=header, bytes=length)

    def deparse(self, length: int, payload: int) -> None:
        self.add("deparse", bytes=length, payload=payload)

    def output(
        self, port: int, length: int, mcast_grp: int = 0, recirculate: bool = False
    ) -> None:
        self.add(
            "output",
            port=port,
            bytes=length,
            mcast_grp=mcast_grp,
            recirculate=recirculate,
        )

    def drop(self, reason: str) -> None:
        self.add("drop", reason=reason)

    def fault(self, site: str, **extra: object) -> None:
        """An injected fault fired at ``site`` (e.g. ``corrupt``,
        ``table:ipv4_lpm_tbl``)."""
        self.add("fault", site=site, **extra)

    # ------------------------------------------------------------------
    # Querying (called by tests and tools)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def tables(self) -> List[TraceEvent]:
        return self.of_kind("table")

    def hits(self) -> List[TraceEvent]:
        return [e for e in self.tables() if e.data.get("hit")]

    def misses(self) -> List[TraceEvent]:
        return [e for e in self.tables() if not e.data.get("hit")]

    def hit_sequence(self) -> List[str]:
        """``"table:action"`` for every MAT apply, in execution order
        (same shape as ``Interpreter.table_trace``)."""
        return [f"{e.data['table']}:{e.data['action']}" for e in self.tables()]

    def dropped(self) -> bool:
        return any(e.kind == "drop" for e in self.events)

    def faults(self) -> List[TraceEvent]:
        return self.of_kind("fault")

    # ------------------------------------------------------------------
    def render(self) -> str:
        if not self.events:
            return "(empty packet trace)"
        return "\n".join(
            f"{i:3d}. {event.describe()}" for i, event in enumerate(self.events)
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "events": [{"kind": e.kind, **e.data} for e in self.events],
        }
        if self.shard is not None:
            out["shard"] = self.shard
        return out

    def to_json_line(
        self, index: Optional[int] = None, program: Optional[str] = None
    ) -> str:
        """One compact, schema-versioned JSON line for this trace —
        the ``--trace-out FILE.jsonl`` record format."""
        record: Dict[str, object] = {"schema": TRACE_SCHEMA_VERSION}
        if index is not None:
            record["packet"] = index
        if program is not None:
            record["program"] = program
        record.update(self.to_dict())
        return json.dumps(record, separators=(",", ":"))
