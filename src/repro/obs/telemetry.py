"""Live telemetry plane: rolling merged views of a running fleet.

Long soaks used to be black boxes: per-shard metrics existed only after
join, and a dead worker took its counters with it.  This module layers
a *live* export surface over the existing
:class:`~repro.obs.metrics.MetricsRegistry` / pkttrace substrate:

* :class:`LiveTelemetry` — a thread-safe rolling view.  Engine workers
  (or a single-process soak loop) periodically publish epoch-stamped
  cumulative registry snapshots plus a ledger block; the view keeps the
  latest snapshot per ``(program, shard)`` source and merges them on
  demand with the registry's commutative ``merge``.  Because each
  source's snapshot is cumulative and replace-by-epoch, every merged
  counter is monotonically non-decreasing over a run — the property the
  CI telemetry-smoke job asserts.
* :class:`StatsServer` — a daemon-thread HTTP server over a
  :class:`LiveTelemetry`: ``/stats.json`` (the merged snapshot as JSON)
  and ``/metrics`` (Prometheus text exposition), bound to localhost.
* :class:`FlightRecorder` — a bounded ring buffer of the last N verdict
  records (and any packet traces handed in), dumped on fault, failed
  ledger, or worker death for post-mortem attribution without paying
  for full per-packet tracing.
* :class:`TraceWriter` — streams pkttrace events as schema-versioned
  JSON lines (``--trace-out``).

Publishing is observation-only by construction: nothing here touches
packets, verdicts, or the digest input stream, so a run's verdict
digest is identical with telemetry on or off (pinned by test and CI).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, IO, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

#: Version stamp carried by every exported snapshot / JSONL line.
TELEMETRY_SCHEMA_VERSION = 1

#: Histogram keys with this marker get a quantile block in snapshots.
_LATENCY_MARKER = "latency_us"


# ======================================================================
# Rolling live view
# ======================================================================
class LiveTelemetry:
    """Rolling merged view over per-shard cumulative snapshots.

    Sources are ``(program, shard)`` pairs; each :meth:`publish` replaces
    that source's previous snapshot (stale epochs are ignored, so
    out-of-order queue delivery cannot roll a counter backwards).  The
    merged view is recomputed on read — publishes stay O(1) so the hot
    side never waits on an exporter.
    """

    #: Bounded supervision-event history kept per view (restarts,
    #: abandonments); old entries age out rather than grow a long soak.
    MAX_EVENTS = 256

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (program, shard) -> {"epoch", "metrics", "ledger", "final"}
        self._sources: Dict[Tuple[str, int], Dict[str, object]] = {}
        self._events: deque = deque(maxlen=self.MAX_EVENTS)
        self._publishes = 0
        self._started = time.time()

    # ------------------------------------------------------------------
    def publish(
        self,
        program: str,
        shard: int,
        epoch: int,
        metrics: Dict[str, Dict[str, object]],
        ledger: Optional[Dict[str, int]] = None,
        final: bool = False,
        run: Optional[int] = None,
        watermark: Optional[int] = None,
    ) -> bool:
        """Install one source's cumulative snapshot; returns False if a
        newer epoch for the same source was already present.

        ``run`` identifies a worker-pool submission: a resident worker's
        epochs restart at 1 on every run, so when the incoming ``run``
        differs from the stored one the snapshot *replaces* the source
        outright instead of losing the epoch comparison to the previous
        run's higher epochs.
        """
        key = (program, int(shard))
        with self._lock:
            current = self._sources.get(key)
            if (
                current is not None
                and current.get("run") == run
                and int(current["epoch"]) >= epoch  # type: ignore[arg-type]
            ):
                return False
            self._sources[key] = {
                "epoch": int(epoch),
                "metrics": metrics,
                "ledger": dict(ledger or {}),
                "final": bool(final),
                "run": run,
                "watermark": watermark,
            }
            self._publishes += 1
        return True

    def record_event(self, event: Dict[str, object]) -> None:
        """Append one supervision event (restart/abandon) to the bounded
        event history exposed by :meth:`snapshot`."""
        with self._lock:
            self._events.append(dict(event, ts=round(time.time(), 3)))

    def sources(self) -> List[Tuple[str, int]]:
        with self._lock:
            return sorted(self._sources)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sources)

    # ------------------------------------------------------------------
    def merged_registry(self) -> MetricsRegistry:
        """Fold the latest snapshot of every source into one registry."""
        registry = MetricsRegistry()
        with self._lock:
            snaps = [dict(entry["metrics"]) for entry in self._sources.values()]  # type: ignore[arg-type]
        for snap in snaps:
            registry.merge(snap)
        return registry

    def snapshot(self) -> Dict[str, object]:
        """The JSON-able rolling view: per-shard epochs + ledgers, the
        merged metrics snapshot, a summed ledger, and p50/p95/p99 for
        every ``latency_us`` histogram."""
        with self._lock:
            items = sorted(self._sources.items())
            publishes = self._publishes
            started = self._started
            events = list(self._events)
        registry = MetricsRegistry()
        ledger: Dict[str, int] = {}
        shards = []
        for (program, shard), entry in items:
            registry.merge(entry["metrics"])  # type: ignore[arg-type]
            for k, v in entry["ledger"].items():  # type: ignore[union-attr]
                ledger[k] = ledger.get(k, 0) + int(v)
            shard_entry = {
                "program": program,
                "shard": shard,
                "epoch": entry["epoch"],
                "final": entry["final"],
                "ledger": entry["ledger"],
            }
            if entry.get("run") is not None:
                shard_entry["run"] = entry["run"]
            if entry.get("watermark") is not None:
                shard_entry["watermark"] = entry["watermark"]
            shards.append(shard_entry)
        latency = {
            key: {
                "count": registry.histogram(key)["count"],  # type: ignore[index]
                **(registry.quantiles(key) or {}),
            }
            for key in registry.keys()
            if _LATENCY_MARKER in key and registry.histogram(key) is not None
        }
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "uptime_s": round(time.time() - started, 3),
            "publishes": publishes,
            "shards": shards,
            "ledger": ledger,
            "latency_us": latency,
            "metrics": registry.snapshot(),
            "events": events,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


# ======================================================================
# Prometheus text exposition
# ======================================================================
def _prom_name(key: str) -> str:
    out = []
    for ch in key:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return "repro_" + name


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`LiveTelemetry.snapshot` (or bare registry
    snapshot) in Prometheus text exposition format.  Histogram log2
    buckets become cumulative ``le`` buckets with bound ``2^e``."""
    metrics = snapshot.get("metrics", snapshot)
    lines: List[str] = []
    for key, value in sorted(metrics.get("counters", {}).items()):  # type: ignore[union-attr]
        name = _prom_name(key)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    for key, value in sorted(metrics.get("gauges", {}).items()):  # type: ignore[union-attr]
        name = _prom_name(key)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    for key, hist in sorted(metrics.get("histograms", {}).items()):  # type: ignore[union-attr]
        name = _prom_name(key)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for exp in sorted(int(e) for e in hist.get("buckets", {})):
            cumulative += int(hist["buckets"][str(exp)])
            lines.append(
                f'{name}_bucket{{le="{2.0 ** exp:g}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{name}_sum {hist['sum']}")
        lines.append(f"{name}_count {hist['count']}")
    for entry in snapshot.get("shards", ()):  # type: ignore[union-attr]
        labels = (
            f'program="{entry["program"]}",shard="{entry["shard"]}"'
        )
        lines.append(f"repro_shard_epoch{{{labels}}} {entry['epoch']}")
    return "\n".join(lines) + "\n"


# ======================================================================
# HTTP export
# ======================================================================
class _StatsHandler(BaseHTTPRequestHandler):
    server_version = "repro-stats/1"
    telemetry: LiveTelemetry  # injected by StatsServer

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/stats.json", "/stats"):
            body = self.telemetry.to_json().encode()
            ctype = "application/json"
        elif path == "/metrics":
            body = self.telemetry.to_prometheus().encode()
            ctype = "text/plain; version=0.0.4"
        elif path == "/healthz":
            body, ctype = b"ok\n", "text/plain"
        else:
            self.send_error(404, "unknown path (try /stats.json, /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # never spam the run's stdout with access logs


class StatsServer:
    """Serve a :class:`LiveTelemetry` over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  The server never touches the dataplane — it only
    reads published snapshots under the view's lock.
    """

    def __init__(
        self, telemetry: LiveTelemetry, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        handler = type("BoundStatsHandler", (_StatsHandler,), {
            "telemetry": telemetry,
        })
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.telemetry = telemetry
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-stats-{self.port}",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StatsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5)

    def __enter__(self) -> "StatsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()


# ======================================================================
# Flight recorder
# ======================================================================
class FlightRecorder:
    """Bounded ring of the last N per-packet outcomes.

    Recording is a tuple build plus a deque append — cheap enough to
    leave on for whole soaks — and the ring only becomes dicts at
    :meth:`dump` time (on fault, ledger mismatch, or worker death).
    ``capacity=0`` disables recording entirely.
    """

    __slots__ = ("capacity", "shard", "_ring")

    def __init__(self, capacity: int = 64, shard: Optional[int] = None) -> None:
        self.capacity = int(capacity)
        self.shard = shard
        self._ring: deque = deque(maxlen=max(self.capacity, 0) or None)

    def __len__(self) -> int:
        return len(self._ring) if self.capacity > 0 else 0

    def record(self, index: int, verdict, trace=None) -> None:
        """Remember one verdict (``repro.targets.faults.Verdict``)."""
        if self.capacity <= 0:
            return
        self._ring.append((
            index,
            verdict.kind,
            len(verdict.outputs),
            verdict.units,
            dict(verdict.reasons) if verdict.reasons else None,
            verdict.error,
            trace.to_dict() if trace is not None else None,
        ))

    def note(self, index: int, event: str, detail: str) -> None:
        """Remember a non-verdict event (e.g. an uncaught escape)."""
        if self.capacity <= 0:
            return
        self._ring.append((index, event, 0, 0, None, detail, None))

    def dump(self) -> List[Dict[str, object]]:
        """The ring as JSON-able dicts, oldest first."""
        out = []
        for index, kind, emits, units, reasons, error, trace in self._ring:
            entry: Dict[str, object] = {
                "packet": index,
                "kind": kind,
                "emits": emits,
                "units": units,
            }
            if self.shard is not None:
                entry["shard"] = self.shard
            if reasons:
                entry["reasons"] = reasons
            if error:
                entry["error"] = error
            if trace is not None:
                entry["trace"] = trace
            out.append(entry)
        return out


# ======================================================================
# JSONL packet-trace streaming
# ======================================================================
class TraceWriter:
    """Stream pkttrace events as JSON lines (``--trace-out FILE.jsonl``).

    Each line is one packet:
    ``{"schema": 1, "packet": i, "program": ..., "events": [...]}`` —
    machine-consumable, unlike ``PacketTrace.render``'s pretty-printing.
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = destination
            self._owns = False
        self.lines = 0

    def write(
        self,
        trace,
        index: int,
        program: Optional[str] = None,
        verdict: Optional[str] = None,
    ) -> None:
        record: Dict[str, object] = {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "packet": index,
        }
        if program is not None:
            record["program"] = program
        if verdict is not None:
            record["verdict"] = verdict
        record.update(trace.to_dict())
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.lines += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ======================================================================
# Snapshot readers (`repro stats`)
# ======================================================================
def fetch_snapshot(source: str, timeout: float = 5.0) -> Dict[str, object]:
    """Load a telemetry snapshot from a URL, ``host:port``, bare port,
    or JSON file path."""
    target = source
    if target.isdigit():
        target = f"http://127.0.0.1:{target}/stats.json"
    elif ":" in target and not target.startswith("http") and "/" not in target:
        target = f"http://{target}/stats.json"
    if target.startswith("http://") or target.startswith("https://"):
        import urllib.parse
        import urllib.request

        if urllib.parse.urlparse(target).path in ("", "/"):
            target = target.rstrip("/") + "/stats.json"
        with urllib.request.urlopen(target, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    with open(source, "r", encoding="utf-8") as fh:
        return json.load(fh)


def render_stats(snapshot: Dict[str, object]) -> str:
    """Human-readable rendering of a telemetry snapshot."""
    lines: List[str] = []
    schema = snapshot.get("schema", "?")
    lines.append(
        f"telemetry snapshot (schema {schema}, "
        f"{snapshot.get('publishes', '?')} publishes, "
        f"up {snapshot.get('uptime_s', '?')}s)"
    )
    shards = snapshot.get("shards", [])
    for entry in shards:  # type: ignore[union-attr]
        ledger = entry.get("ledger", {})
        watermark = (
            f" wm={entry['watermark']}"
            if entry.get("watermark") is not None
            else ""
        )
        lines.append(
            f"  {entry['program']}/shard{entry['shard']} "
            f"epoch={entry['epoch']}{' final' if entry.get('final') else ''}: "
            f"in={ledger.get('in', 0)} out={ledger.get('out', 0)} "
            f"dropped={ledger.get('dropped', 0)} "
            f"killed={ledger.get('killed', 0)}{watermark}"
        )
    events = snapshot.get("events", [])
    if events:
        lines.append(f"  supervision events ({len(events)}):")
        for event in events:  # type: ignore[union-attr]
            lines.append(
                f"    {event.get('event', '?')} "
                f"{event.get('program', '?')}/shard{event.get('shard', '?')} "
                f"attempt={event.get('attempt', '?')} "
                f"reason={event.get('reason', '?')} "
                f"watermark={event.get('watermark', '?')}"
            )
    ledger = snapshot.get("ledger", {})
    if ledger:
        lines.append(
            "  merged ledger: "
            + " ".join(f"{k}={v}" for k, v in sorted(ledger.items()))  # type: ignore[union-attr]
        )
    latency = snapshot.get("latency_us", {})
    if latency:
        lines.append("  latency (us):")
        for key, q in sorted(latency.items()):  # type: ignore[union-attr]
            quants = " ".join(
                f"{name}={q[name]:.1f}"
                for name in ("p50", "p95", "p99")
                if q.get(name) is not None
            )
            lines.append(f"    {key}: n={q.get('count', 0)} {quants}")
    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})  # type: ignore[union-attr]
    if counters:
        lines.append("  counters:")
        for key, value in sorted(counters.items()):
            lines.append(f"    {key} = {value}")
    return "\n".join(lines)
