"""Pass tracing: a context-manager span API for the compiler driver.

A :class:`Tracer` records a tree of :class:`Span` objects::

    tracer = Tracer(enabled=True)
    with tracer.span("midend.link", modules=4) as sp:
        linked = link_modules(main, libs)
        sp.set(programs=len(linked.providers))

Spans record wall-time (``time.perf_counter``), arbitrary attributes
(input/output sizes by convention), nesting, and the exception type if
one escaped the block.  A disabled tracer records nothing and hands out
a shared no-op span, so instrumented code needs no ``if`` guards.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One timed, attributed region of work."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0  # seconds; 0.0 while still open
    error: Optional[str] = None
    children: List["Span"] = field(default_factory=list)

    def set(self, **attrs: object) -> "Span":
        """Attach output attributes (sizes, counts) to the span."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ms(self) -> float:
        return self.duration * 1000.0

    # ------------------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal of this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> Optional["Span"]:
        """First span in this subtree whose name equals ``name``."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _NullSpan(Span):
    """Shared do-nothing span handed out by disabled tracers."""

    def __init__(self) -> None:
        super().__init__(name="<disabled>")

    def set(self, **attrs: object) -> "Span":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records a forest of spans; disabled tracers are no-ops."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a nested span around a block of work.

        The span is closed (duration recorded, nesting popped) even when
        the block raises; the exception type is recorded on the span and
        the exception propagates.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        sp = Span(name=name, attrs=dict(attrs))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)
        self._stack.append(sp)
        sp.start = time.perf_counter()
        try:
            yield sp
        except BaseException as exc:
            sp.error = type(exc).__name__
            raise
        finally:
            sp.duration = time.perf_counter() - sp.start
            self._stack.pop()

    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All recorded spans, depth-first across roots."""
        return [span for root in self.roots for _, span in root.walk()]

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def total_ms(self) -> float:
        return sum(root.duration_ms for root in self.roots)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [root.to_dict() for root in self.roots]

    def clear(self) -> None:
        self.roots = []
        self._stack = []

    # ------------------------------------------------------------------
    def render_table(self) -> str:
        """Render the span forest as a per-pass time/size table."""
        rows: List[Tuple[str, str, str]] = []
        for root in self.roots:
            for depth, span in root.walk():
                label = "  " * depth + span.name
                detail = " ".join(f"{k}={v}" for k, v in span.attrs.items())
                if span.error is not None:
                    detail = f"!{span.error} {detail}".rstrip()
                rows.append((label, f"{span.duration_ms:10.3f}", detail))
        if not rows:
            return "(no spans recorded)"
        width = max(len(r[0]) for r in rows)
        width = max(width, len("pass"))
        lines = [f"{'pass'.ljust(width)}  {'wall(ms)':>10}  detail"]
        lines.append("-" * (width + 14 + 8))
        for label, ms, detail in rows:
            lines.append(f"{label.ljust(width)}  {ms}  {detail}".rstrip())
        lines.append(f"{'total'.ljust(width)}  {self.total_ms():10.3f}")
        return "\n".join(lines)


#: Shared disabled tracer for code paths that want span syntax with no
#: tracer supplied.
NULL_TRACER = Tracer(enabled=False)
