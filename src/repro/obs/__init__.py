"""Compiler-wide observability: pass tracing, metrics, packet traces.

Three independent primitives, all disabled by default so the zero-cost
path stays zero-cost:

* :mod:`repro.obs.trace` — :class:`Tracer`, a nesting span recorder the
  driver wraps every compiler pass in (``with tracer.span("midend.link")``).
* :mod:`repro.obs.metrics` — :data:`METRICS`, the process-wide registry
  of counters/gauges/histograms populated by the frontend, midend and
  backends, with a JSON snapshot exporter.
* :mod:`repro.obs.pkttrace` — :class:`PacketTrace`, a per-packet event
  log (extract → MAT hit/miss → deparse/emit) the behavioral
  interpreter fills in when asked.

A fourth primitive builds on the first three:

* :mod:`repro.obs.telemetry` — the live telemetry plane:
  :class:`LiveTelemetry` (rolling merged per-shard snapshots),
  :class:`StatsServer` (``/stats.json`` + ``/metrics`` HTTP export),
  :class:`FlightRecorder` (bounded post-mortem verdict ring), and
  :class:`TraceWriter` (JSONL pkttrace streaming).

Metric key naming convention: ``<layer>.<component>.<what>`` with the
layer one of ``frontend``, ``linker``, ``analysis``, ``compose``,
``optimize``, ``tna``, ``v1model``, ``interp``, ``compiled``,
``pipeline``, ``switch``.
"""

from repro.obs.metrics import METRICS, MetricsRegistry, collecting
from repro.obs.pkttrace import TRACE_SCHEMA_VERSION, PacketTrace, TraceEvent
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    FlightRecorder,
    LiveTelemetry,
    StatsServer,
    TraceWriter,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "collecting",
    "PacketTrace",
    "TraceEvent",
    "TRACE_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "FlightRecorder",
    "LiveTelemetry",
    "StatsServer",
    "TraceWriter",
    "NULL_TRACER",
    "Span",
    "Tracer",
]
