"""Process-wide metrics registry: counters, gauges, histograms.

The compiler and the behavioral target report into the module-level
:data:`METRICS` registry, e.g.::

    METRICS.inc("frontend.tokens", len(tokens))
    METRICS.set_gauge("tna.schedule.stages_used", result.num_stages)
    METRICS.observe("tna.schedule.stage_occupancy", len(use.tables))

The registry is **disabled by default**: every report call returns
immediately after one attribute check, so instrumented hot paths pay
essentially nothing until someone opts in (``--metrics`` on the CLI, or
:func:`collecting` in tests).

The behavioral target reports ``interp.packets``, ``interp.table_hits``
/ ``interp.table_misses``, and ``interp.lookup.indexed`` /
``interp.lookup.scan`` — the last pair distinguishes O(1) indexed table
lookups (exact-hash, lpm-buckets) from linear scans (ternary/range
tables and the reference path).

Snapshots are plain dicts that round-trip through JSON losslessly:
histograms store ``count``/``sum``/``min``/``max`` rather than samples.

Snapshots are also **mergeable**: :meth:`MetricsRegistry.merge` folds a
snapshot into a registry with commutative semantics (counters and
histogram count/sum add; histogram min/max take extrema; gauges take the
max), so N worker processes can each report a local snapshot and the
parent can fold them in any order — the sharded traffic engine
(`repro.targets.engine`) relies on this.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class MetricsRegistry:
    """Counters, gauges and histograms under dotted string keys."""

    __slots__ = ("enabled", "counters", "gauges", "_hists")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        # key -> [count, sum, min, max]
        self._hists: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._hists.clear()

    # ------------------------------------------------------------------
    # Reporting (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, key: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[key] = self.counters.get(key, 0) + n

    def set_gauge(self, key: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[key] = value

    def observe(self, key: str, value: float) -> None:
        if not self.enabled:
            return
        hist = self._hists.get(key)
        if hist is None:
            self._hists[key] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            if value < hist[2]:
                hist[2] = value
            if value > hist[3]:
                hist[3] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, key: str) -> int:
        return self.counters.get(key, 0)

    def gauge(self, key: str) -> Optional[float]:
        return self.gauges.get(key)

    def histogram(self, key: str) -> Optional[Dict[str, float]]:
        hist = self._hists.get(key)
        if hist is None:
            return None
        return {"count": hist[0], "sum": hist[1], "min": hist[2], "max": hist[3]}

    def keys(self) -> List[str]:
        """Every metric key present, sorted."""
        return sorted({*self.counters, *self.gauges, *self._hists})

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self._hists)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: {"count": h[0], "sum": h[1], "min": h[2], "max": h[3]}
                for key, h in self._hists.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` dict into this registry.

        Commutative and associative, so per-worker snapshots can be
        folded in any order: counters add; histograms add count/sum and
        take min/max extrema; gauges take the max (the only commutative
        choice for a last-value metric).  Merging is explicit
        aggregation, not hot-path reporting, so it applies even while
        the registry is disabled.  Returns ``self`` for chaining.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + int(value)
        for key, value in snapshot.get("gauges", {}).items():
            current = self.gauges.get(key)
            self.gauges[key] = (
                value if current is None else max(current, value)
            )
        for key, h in snapshot.get("histograms", {}).items():
            hist = self._hists.get(key)
            if hist is None:
                self._hists[key] = [h["count"], h["sum"], h["min"], h["max"]]
            else:
                hist[0] += h["count"]
                hist[1] += h["sum"]
                if h["min"] < hist[2]:
                    hist[2] = h["min"]
                if h["max"] > hist[3]:
                    hist[3] = h["max"]
        return self

    @classmethod
    def from_snapshot(cls, data: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        reg = cls(enabled=False)
        reg.counters = {k: int(v) for k, v in data.get("counters", {}).items()}
        reg.gauges = {k: v for k, v in data.get("gauges", {}).items()}
        for key, h in data.get("histograms", {}).items():
            reg._hists[key] = [h["count"], h["sum"], h["min"], h["max"]]
        return reg

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_snapshot(json.loads(text))


#: The process-wide registry every instrumented module reports into.
METRICS = MetricsRegistry(enabled=False)


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None, fresh: bool = True
) -> Iterator[MetricsRegistry]:
    """Enable a registry (default: the global one) for the duration of a
    block, restoring its previous enabled state afterwards."""
    reg = registry if registry is not None else METRICS
    prior = reg.enabled
    if fresh:
        reg.reset()
    reg.enable()
    try:
        yield reg
    finally:
        reg.enabled = prior
