"""Process-wide metrics registry: counters, gauges, histograms.

The compiler and the behavioral target report into the module-level
:data:`METRICS` registry, e.g.::

    METRICS.inc("frontend.tokens", len(tokens))
    METRICS.set_gauge("tna.schedule.stages_used", result.num_stages)
    METRICS.observe("tna.schedule.stage_occupancy", len(use.tables))

The registry is **disabled by default**: every report call returns
immediately after one attribute check, so instrumented hot paths pay
essentially nothing until someone opts in (``--metrics`` on the CLI, or
:func:`collecting` in tests).

The behavioral target reports ``interp.packets``, ``interp.table_hits``
/ ``interp.table_misses``, and ``interp.lookup.indexed`` /
``interp.lookup.scan`` — the last pair distinguishes O(1) indexed table
lookups (exact-hash, lpm-buckets) from linear scans (ternary/range
tables and the reference path).  Latency observations go under
``switch.latency_us.packet`` and ``pipeline.latency_us.{parse,lookup,
action,deparse}`` (microseconds; shared by both execution backends; the
per-stage pipeline latencies are sampled — see
:data:`LATENCY_SAMPLE_EVERY`).

Snapshots are plain dicts that round-trip through JSON losslessly:
histograms store ``count``/``sum``/``min``/``max`` plus fixed **log2
buckets** (bucket ``e`` counts values in ``[2^(e-1), 2^e)``, i.e.
``frexp(v)[1]``; the bucket key in a snapshot is the stringified
exponent) rather than raw samples, so p50/p95/p99 can be estimated
after any number of merges (:meth:`MetricsRegistry.quantile`).

Snapshots are also **mergeable**: :meth:`MetricsRegistry.merge` folds a
snapshot into a registry with commutative semantics (counters and
histogram count/sum/buckets add; histogram min/max take extrema;
gauges merge per their declared policy), so N worker processes can each
report a local snapshot and the parent can fold them in any order — the
sharded traffic engine (`repro.targets.engine`) and the live telemetry
plane (`repro.obs.telemetry`) rely on this.

Gauge merge policies (``set_gauge(key, v, policy=...)``):

* ``"max"`` — take the maximum (the compatible default; right for
  high-water marks like stage counts);
* ``"sum"`` — add (right for partitioned absolute quantities, e.g.
  per-shard resident entries);
* ``"last"`` — most recent write wins.  Each ``last`` write is stamped
  with a per-registry sequence number carried in the snapshot's
  ``gauge_meta`` block; merging keeps the lexicographically largest
  ``(seq, value)`` pair, which keeps the merge commutative and
  associative even for a non-monotonic gauge (e.g. queue depth).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from math import frexp
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Allowed gauge merge policies.
GAUGE_POLICIES = ("max", "sum", "last")

#: Per-packet stage latencies (``pipeline.latency_us.*``) are timed on
#: every Nth packet rather than every packet: a packet traverses many
#: tables, and timing each stage of each table on every packet costs
#: more than the 5% overhead budget (see
#: ``benchmarks/test_telemetry_overhead.py``).  Sampling is a
#: deterministic per-instance packet-counter stride — not random — so
#: both execution backends sample the same packets and report identical
#: observation counts.  Counters (packets, hits/misses, drops) remain
#: exact; only the latency histograms are sampled.
LATENCY_SAMPLE_EVERY = 16

#: Bucket exponent used for observations <= 0 (log2 is undefined there);
#: far below any representable positive float's exponent.
_NONPOS_BUCKET = -1100


class MetricsRegistry:
    """Counters, gauges and histograms under dotted string keys."""

    __slots__ = ("enabled", "counters", "gauges", "_hists", "_gauge_meta",
                 "_gauge_seq")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        # key -> [count, sum, min, max, {bucket_exp: count}]
        self._hists: Dict[str, list] = {}
        # key -> (policy, seq); only gauges with a non-default policy or
        # a "last" sequence stamp appear here.
        self._gauge_meta: Dict[str, Tuple[str, int]] = {}
        self._gauge_seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._hists.clear()
        self._gauge_meta.clear()
        self._gauge_seq = 0

    # ------------------------------------------------------------------
    # Reporting (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, key: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[key] = self.counters.get(key, 0) + n

    def set_gauge(self, key: str, value: float, policy: str = "max") -> None:
        if not self.enabled:
            return
        self.gauges[key] = value
        if policy != "max":
            if policy not in GAUGE_POLICIES:
                raise ValueError(
                    f"unknown gauge policy {policy!r}; "
                    f"known: {', '.join(GAUGE_POLICIES)}"
                )
            self._gauge_seq += 1
            self._gauge_meta[key] = (policy, self._gauge_seq)

    def observe(self, key: str, value: float) -> None:
        if not self.enabled:
            return
        hist = self._hists.get(key)
        bucket = frexp(value)[1] if value > 0 else _NONPOS_BUCKET
        if hist is None:
            self._hists[key] = [1, value, value, value, {bucket: 1}]
        else:
            hist[0] += 1
            hist[1] += value
            if value < hist[2]:
                hist[2] = value
            if value > hist[3]:
                hist[3] = value
            buckets = hist[4]
            buckets[bucket] = buckets.get(bucket, 0) + 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, key: str) -> int:
        return self.counters.get(key, 0)

    def gauge(self, key: str) -> Optional[float]:
        return self.gauges.get(key)

    def gauge_policy(self, key: str) -> str:
        return self._gauge_meta.get(key, ("max", 0))[0]

    def histogram(self, key: str) -> Optional[Dict[str, object]]:
        hist = self._hists.get(key)
        if hist is None:
            return None
        return {
            "count": hist[0],
            "sum": hist[1],
            "min": hist[2],
            "max": hist[3],
            "buckets": {str(e): n for e, n in sorted(hist[4].items())},
        }

    def quantile(self, key: str, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile of a histogram from its log2
        buckets (linear interpolation within the containing bucket,
        clamped to the recorded min/max).  None if the key is absent."""
        hist = self._hists.get(key)
        if hist is None or hist[0] == 0:
            return None
        count, _, lo_all, hi_all, buckets = hist
        rank = q * count
        seen = 0.0
        for exp in sorted(buckets):
            n = buckets[exp]
            if seen + n >= rank:
                if exp == _NONPOS_BUCKET:
                    return min(lo_all, 0.0)
                lo, hi = 2.0 ** (exp - 1), 2.0 ** exp
                inside = max(rank - seen, 0.0) / n
                est = lo + inside * (hi - lo)
                return min(max(est, lo_all), hi_all)
            seen += n
        return hi_all

    def quantiles(
        self, key: str, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Optional[Dict[str, float]]:
        """``{"p50": ..., "p95": ..., ...}`` for one histogram key."""
        if key not in self._hists:
            return None
        return {f"p{q * 100:g}": self.quantile(key, q) for q in qs}

    def keys(self) -> List[str]:
        """Every metric key present, sorted."""
        return sorted({*self.counters, *self.gauges, *self._hists})

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self._hists)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        snap: Dict[str, Dict[str, object]] = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: {
                    "count": h[0],
                    "sum": h[1],
                    "min": h[2],
                    "max": h[3],
                    "buckets": {str(e): n for e, n in sorted(h[4].items())},
                }
                for key, h in self._hists.items()
            },
        }
        if self._gauge_meta:
            snap["gauge_meta"] = {
                key: {"policy": policy, "seq": seq}
                for key, (policy, seq) in self._gauge_meta.items()
            }
        return snap

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` dict into this registry.

        Commutative and associative, so per-worker snapshots can be
        folded in any order: counters add; histograms add
        count/sum/buckets and take min/max extrema; gauges merge per
        their policy (``max`` default, ``sum`` adds, ``last`` keeps the
        largest ``(seq, value)`` pair).  Snapshots without buckets or
        gauge metadata (the pre-telemetry schema) merge fine — buckets
        default to empty and every gauge defaults to ``max``.  Merging
        is explicit aggregation, not hot-path reporting, so it applies
        even while the registry is disabled.  Returns ``self``.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + int(value)
        meta_in = snapshot.get("gauge_meta", {})
        for key, value in snapshot.get("gauges", {}).items():
            current = self.gauges.get(key)
            entry = meta_in.get(key)
            policy, seq = (
                (str(entry["policy"]), int(entry.get("seq", 0)))
                if entry is not None
                else self._gauge_meta.get(key, ("max", 0))
            )
            if current is None:
                self.gauges[key] = value
                if policy != "max":
                    self._gauge_meta[key] = (policy, seq)
                continue
            if policy == "sum":
                self.gauges[key] = current + value
                self._gauge_meta[key] = (policy, 0)
            elif policy == "last":
                cur_seq = self._gauge_meta.get(key, ("last", 0))[1]
                # Largest (seq, value) wins: commutative, associative,
                # and "most recent write" whenever seqs are comparable.
                if (seq, value) > (cur_seq, current):
                    self.gauges[key] = value
                self._gauge_meta[key] = (policy, max(seq, cur_seq))
            else:
                self.gauges[key] = max(current, value)
        for key, h in snapshot.get("histograms", {}).items():
            incoming = {
                int(e): int(n) for e, n in h.get("buckets", {}).items()
            }
            hist = self._hists.get(key)
            if hist is None:
                self._hists[key] = [
                    h["count"], h["sum"], h["min"], h["max"], incoming
                ]
            else:
                hist[0] += h["count"]
                hist[1] += h["sum"]
                if h["min"] < hist[2]:
                    hist[2] = h["min"]
                if h["max"] > hist[3]:
                    hist[3] = h["max"]
                buckets = hist[4]
                for exp, n in incoming.items():
                    buckets[exp] = buckets.get(exp, 0) + n
        return self

    @classmethod
    def from_snapshot(cls, data: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        reg = cls(enabled=False)
        reg.counters = {k: int(v) for k, v in data.get("counters", {}).items()}
        reg.gauges = {k: v for k, v in data.get("gauges", {}).items()}
        for key, entry in data.get("gauge_meta", {}).items():
            reg._gauge_meta[key] = (
                str(entry["policy"]), int(entry.get("seq", 0))
            )
        for key, h in data.get("histograms", {}).items():
            reg._hists[key] = [
                h["count"], h["sum"], h["min"], h["max"],
                {int(e): int(n) for e, n in h.get("buckets", {}).items()},
            ]
        return reg

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_snapshot(json.loads(text))


#: The process-wide registry every instrumented module reports into.
METRICS = MetricsRegistry(enabled=False)


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None, fresh: bool = True
) -> Iterator[MetricsRegistry]:
    """Enable a registry (default: the global one) for the duration of a
    block, restoring its previous enabled state afterwards."""
    reg = registry if registry is not None else METRICS
    prior = reg.enabled
    if fresh:
        reg.reset()
    reg.enable()
    try:
        yield reg
    finally:
        reg.enabled = prior
