"""Control-path enumeration through control blocks.

The µP4C static analysis (§5.2) explores the branches in the *structure*
of a control block — conditionals, switch arms, and the actions of each
match-action table — rather than symbolic table contents, which is what
keeps it scalable.  A :class:`ControlPath` is one such structural path:
the ordered list of leaf operations that execute along it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast

MAX_CONTROL_PATHS = 65536


@dataclass
class ControlPath:
    """One structural execution path: the leaf statements it runs."""

    items: List[ast.Stmt] = field(default_factory=list)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def module_applies(self) -> List[ast.MethodCallExpr]:
        """Callee invocations on this path, in order."""
        out = []
        for stmt in self.items:
            if isinstance(stmt, ast.MethodCallStmt):
                resolved = getattr(stmt.call, "resolved", None)
                if resolved is not None and resolved[0] == "module":
                    out.append(stmt.call)
        return out

    def header_ops(self) -> List[tuple]:
        """``(op, header_type, lvalue)`` for setValid/setInvalid calls."""
        out = []
        for stmt in self.items:
            if isinstance(stmt, ast.MethodCallStmt):
                resolved = getattr(stmt.call, "resolved", None)
                if resolved is not None and resolved[0] == "header_op":
                    op = resolved[1]
                    if op in ("setValid", "setInvalid"):
                        target = stmt.call.target
                        assert isinstance(target, ast.MemberExpr)
                        out.append((op, target.base.type, target.base))
        return out


def _product(prefixes: List[List[ast.Stmt]], suffixes: List[List[ast.Stmt]]):
    return [p + s for p in prefixes for s in suffixes]


class _PathEnumerator:
    def __init__(self, actions: Dict[str, ast.ActionDecl]) -> None:
        self.actions = actions
        self.count = 0

    def _check_budget(self, paths: List[List[ast.Stmt]]) -> List[List[ast.Stmt]]:
        if len(paths) > MAX_CONTROL_PATHS:
            raise AnalysisError(
                f"control-path enumeration exceeded {MAX_CONTROL_PATHS} paths"
            )
        return paths

    def stmt_paths(self, stmt: ast.Stmt) -> List[List[ast.Stmt]]:
        if isinstance(stmt, ast.BlockStmt):
            paths: List[List[ast.Stmt]] = [[]]
            for inner in stmt.stmts:
                paths = self._check_budget(_product(paths, self.stmt_paths(inner)))
            return paths
        if isinstance(stmt, ast.IfStmt):
            then_paths = self.stmt_paths(stmt.then_body)
            else_paths = (
                self.stmt_paths(stmt.else_body)
                if stmt.else_body is not None
                else [[]]
            )
            return self._check_budget(then_paths + else_paths)
        if isinstance(stmt, ast.SwitchStmt):
            paths: List[List[ast.Stmt]] = []
            has_default = any(
                any(isinstance(k, ast.DefaultExpr) for k in case.keysets)
                for case in stmt.cases
            )
            for case in stmt.cases:
                if case.body is None:  # fallthrough arm
                    continue
                paths.extend(self.stmt_paths(case.body))
            if not has_default:
                paths.append([])  # no case matched
            return self._check_budget(paths)
        if isinstance(stmt, ast.MethodCallStmt):
            return self.call_paths(stmt)
        if isinstance(stmt, (ast.EmptyStmt, ast.ReturnStmt, ast.ExitStmt)):
            return [[stmt]] if not isinstance(stmt, ast.EmptyStmt) else [[]]
        # Leaf statements: assignments, declarations.
        return [[stmt]]

    def call_paths(self, stmt: ast.MethodCallStmt) -> List[List[ast.Stmt]]:
        resolved = getattr(stmt.call, "resolved", None)
        if resolved is None:
            return [[stmt]]
        kind = resolved[0]
        if kind == "table":
            table: ast.TableDecl = resolved[1]
            # One branch per action (paper: "number of actions per MAT"),
            # plus the default action's branch.
            action_names = list(table.actions)
            if table.default_action and table.default_action not in action_names:
                action_names.append(table.default_action)
            paths: List[List[ast.Stmt]] = []
            for aname in action_names:
                body = self.actions.get(aname)
                if body is None:  # NoAction
                    paths.append([stmt])
                    continue
                for sub in self.stmt_paths(body.body):
                    paths.append([stmt] + sub)
            return self._check_budget(paths or [[stmt]])
        if kind == "action":
            decl: ast.ActionDecl = resolved[1]
            return self._check_budget(
                [[stmt] + sub for sub in self.stmt_paths(decl.body)]
            )
        # module apply, header op, extern call: leaf.
        return [[stmt]]


def enumerate_control_paths(
    control: ast.ControlDecl,
    actions: Optional[Dict[str, ast.ActionDecl]] = None,
) -> List[ControlPath]:
    """Enumerate the structural control paths of a control's apply block.

    ``actions`` maps action names to declarations; defaults to the
    control's own local actions.
    """
    if actions is None:
        actions = {
            d.name: d for d in control.locals if isinstance(d, ast.ActionDecl)
        }
    enumerator = _PathEnumerator(actions)
    return [ControlPath(items=p) for p in enumerator.stmt_paths(control.apply_body)]
