"""Generic AST traversal and rewriting helpers.

These operate structurally over the dataclass-based AST, so midend passes
do not each need to know every node's field layout.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterator, List, Optional

from repro.frontend import astnodes as ast


def children(node: ast.Node) -> Iterator[ast.Node]:
    """Yield the direct child nodes of ``node``."""
    for f in dataclasses.fields(node):
        if f.name in ("loc",):
            continue
        yield from _nodes_in(getattr(node, f.name))


def _nodes_in(value: Any) -> Iterator[ast.Node]:
    if isinstance(value, ast.Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _nodes_in(item)


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Depth-first pre-order walk of the subtree rooted at ``node``."""
    yield node
    for child in children(node):
        yield from walk(child)


def walk_expressions(node: ast.Node) -> Iterator[ast.Expr]:
    """Yield every expression in the subtree."""
    for n in walk(node):
        if isinstance(n, ast.Expr):
            yield n


def rewrite_expressions(
    node: ast.Node, fn: Callable[[ast.Expr], Optional[ast.Expr]]
) -> ast.Node:
    """Rewrite expressions bottom-up, *in place*, returning ``node``.

    ``fn`` receives each expression after its children have been rewritten
    and returns a replacement or ``None`` to keep it.  Statement and
    declaration structure is preserved.
    """

    def rewrite_value(value: Any) -> Any:
        if isinstance(value, ast.Expr):
            _rewrite_children(value)
            replacement = fn(value)
            return replacement if replacement is not None else value
        if isinstance(value, ast.Node):
            _rewrite_children(value)
            return value
        if isinstance(value, list):
            return [rewrite_value(v) for v in value]
        if isinstance(value, tuple):
            return tuple(rewrite_value(v) for v in value)
        return value

    def _rewrite_children(n: ast.Node) -> None:
        for f in dataclasses.fields(n):
            if f.name in ("loc", "type", "decl"):
                continue
            setattr(n, f.name, rewrite_value(getattr(n, f.name)))

    _rewrite_children(node)
    if isinstance(node, ast.Expr):
        replacement = fn(node)
        if replacement is not None:
            return replacement
    return node


def collect_statements(stmt: ast.Stmt) -> List[ast.Stmt]:
    """Flatten a statement tree into the list of leaf statements."""
    out: List[ast.Stmt] = []

    def visit(s: ast.Stmt) -> None:
        if isinstance(s, ast.BlockStmt):
            for inner in s.stmts:
                visit(inner)
        elif isinstance(s, ast.IfStmt):
            out.append(s)
            visit(s.then_body)
            if s.else_body is not None:
                visit(s.else_body)
        elif isinstance(s, ast.SwitchStmt):
            out.append(s)
            for case in s.cases:
                if case.body is not None:
                    visit(case.body)
        else:
            out.append(s)

    visit(stmt)
    return out
