"""IR utilities shared by midend and backend passes.

* :mod:`~repro.ir.visitor` — generic AST walking and rewriting.
* :mod:`~repro.ir.parse_graph` — parser FSM graph and path enumeration.
* :mod:`~repro.ir.cfg` — control-path enumeration through apply blocks.
* :mod:`~repro.ir.printer` — render IR back to P4-ish source text.
"""

from repro.ir.parse_graph import ParseGraph, ParsePath, build_parse_graph
from repro.ir.cfg import ControlPath, enumerate_control_paths
from repro.ir.visitor import walk, walk_expressions, rewrite_expressions

__all__ = [
    "ParseGraph",
    "ParsePath",
    "build_parse_graph",
    "ControlPath",
    "enumerate_control_paths",
    "walk",
    "walk_expressions",
    "rewrite_expressions",
]
