"""Render AST/IR nodes back to P4-ish source text.

Used to emit the backend's generated target programs (the ``main.p4`` of
the paper's Fig. 4b) and for debugging midend transformations.  Output is
accepted by this package's own parser, enabling print→parse round-trip
tests.
"""

from __future__ import annotations

from typing import List

from repro.frontend import astnodes as ast

INDENT = "  "


class Printer:
    """Stateful pretty-printer."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append(INDENT * self.depth + text if text else "")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            if e.width is not None:
                return f"{e.width}w0x{e.value:x}"
            if isinstance(e.type, ast.BitType):
                return f"{e.type.width}w0x{e.value:x}"
            return str(e.value)
        if isinstance(e, ast.BoolLit):
            return "true" if e.value else "false"
        if isinstance(e, ast.PathExpr):
            return e.name
        if isinstance(e, ast.MemberExpr):
            return f"{self.expr(e.base)}.{e.member}"
        if isinstance(e, ast.IndexExpr):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, ast.SliceExpr):
            return f"{self.expr(e.base)}[{e.hi}:{e.lo}]"
        if isinstance(e, ast.BinaryExpr):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, ast.UnaryExpr):
            return f"{e.op}{self.expr(e.operand)}"
        if isinstance(e, ast.CastExpr):
            return f"({self.type(e.target)}) {self.expr(e.operand)}"
        if isinstance(e, ast.MethodCallExpr):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{self.expr(e.target)}({args})"
        if isinstance(e, ast.MaskExpr):
            return f"{self.expr(e.value)} &&& {self.expr(e.mask)}"
        if isinstance(e, ast.RangeExpr):
            return f"{self.expr(e.lo)} .. {self.expr(e.hi)}"
        if isinstance(e, ast.DefaultExpr):
            return "_"
        if isinstance(e, ast.TupleExpr):
            return "(" + ", ".join(self.expr(i) for i in e.items) + ")"
        raise ValueError(f"cannot print expression {type(e).__name__}")

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def type(self, t: ast.Type) -> str:
        if isinstance(t, ast.BitType):
            return f"bit<{t.width}>"
        if isinstance(t, ast.VarBitType):
            return f"varbit<{t.max_width}>"
        if isinstance(t, ast.BoolType):
            return "bool"
        if isinstance(t, ast.VoidType):
            return "void"
        if isinstance(
            t, (ast.TypeName, ast.HeaderType, ast.StructType, ast.EnumType, ast.ExternType)
        ):
            return t.name
        if isinstance(t, ast.HeaderStackType):
            return f"{self.type(t.element)}[{t.size}]"
        raise ValueError(f"cannot print type {type(t).__name__}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.BlockStmt):
            self.emit("{")
            self.depth += 1
            for inner in s.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.VarDeclStmt):
            init = f" = {self.expr(s.init)}" if s.init is not None else ""
            self.emit(f"{self.type(s.var_type)} {s.name}{init};")
        elif isinstance(s, ast.AssignStmt):
            self.emit(f"{self.expr(s.lhs)} = {self.expr(s.rhs)};")
        elif isinstance(s, ast.MethodCallStmt):
            self.emit(f"{self.expr(s.call)};")
        elif isinstance(s, ast.IfStmt):
            self.emit(f"if ({self.expr(s.cond)})")
            self._stmt_as_block(s.then_body)
            if s.else_body is not None:
                self.emit("else")
                self._stmt_as_block(s.else_body)
        elif isinstance(s, ast.SwitchStmt):
            self.emit(f"switch ({self.expr(s.subject)}) {{")
            self.depth += 1
            for case in s.cases:
                labels = ", ".join(
                    "default" if isinstance(k, ast.DefaultExpr) else self.expr(k)
                    for k in case.keysets
                )
                if case.body is None:
                    self.emit(f"{labels}:")
                else:
                    self.emit(f"{labels}:")
                    self._stmt_as_block(case.body)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.ReturnStmt):
            self.emit("return;")
        elif isinstance(s, ast.ExitStmt):
            self.emit("exit;")
        elif isinstance(s, ast.EmptyStmt):
            self.emit(";")
        else:
            raise ValueError(f"cannot print statement {type(s).__name__}")

    def _stmt_as_block(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.BlockStmt):
            self.stmt(s)
        else:
            self.emit("{")
            self.depth += 1
            self.stmt(s)
            self.depth -= 1
            self.emit("}")

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def param(self, p: ast.Param) -> str:
        direction = f"{p.direction} " if p.direction else ""
        return f"{direction}{self.type(p.param_type)} {p.name}"

    def decl(self, d: ast.Decl) -> None:
        if isinstance(d, ast.HeaderDecl):
            self.emit(f"header {d.name} {{")
            self.depth += 1
            for fname, ftype in d.fields:
                self.emit(f"{self.type(ftype)} {fname};")
            self.depth -= 1
            self.emit("}")
        elif isinstance(d, ast.StructDecl):
            self.emit(f"struct {d.name} {{")
            self.depth += 1
            for fname, ftype in d.fields:
                self.emit(f"{self.type(ftype)} {fname};")
            self.depth -= 1
            self.emit("}")
        elif isinstance(d, ast.EnumDecl):
            self.emit(f"enum {d.name} {{ " + ", ".join(d.members) + " }")
        elif isinstance(d, ast.ConstDecl):
            self.emit(
                f"const {self.type(d.const_type)} {d.name} = {self.expr(d.value)};"
            )
        elif isinstance(d, ast.VarLocal):
            init = f" = {self.expr(d.init)}" if d.init is not None else ""
            self.emit(f"{self.type(d.var_type)} {d.name}{init};")
        elif isinstance(d, ast.InstanceDecl):
            args = ", ".join(self.expr(a) for a in d.args)
            self.emit(f"{d.target}({args}) {d.name};")
        elif isinstance(d, ast.ActionDecl):
            params = ", ".join(self.param(p) for p in d.params)
            self.emit(f"action {d.name}({params})")
            self.stmt(d.body)
        elif isinstance(d, ast.TableDecl):
            self.table(d)
        elif isinstance(d, ast.ParserDecl):
            self.parser(d)
        elif isinstance(d, ast.ControlDecl):
            self.control(d)
        elif isinstance(d, ast.ModuleSigDecl):
            params = ", ".join(self.param(p) for p in d.params)
            self.emit(f"{d.name}({params});")
        elif isinstance(d, ast.ProgramDecl):
            self.emit(f"program {d.name} : implements {d.interface}<> {{")
            self.depth += 1
            for inner in d.decls:
                self.decl(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(d, ast.PackageInstantiation):
            self.emit(f"{d.package}({', '.join(d.args)}) main;")
        else:
            raise ValueError(f"cannot print declaration {type(d).__name__}")

    def table(self, d: ast.TableDecl) -> None:
        self.emit(f"table {d.name} {{")
        self.depth += 1
        if d.keys:
            self.emit("key = {")
            self.depth += 1
            for k in d.keys:
                self.emit(f"{self.expr(k.expr)} : {k.match_kind};")
            self.depth -= 1
            self.emit("}")
        self.emit("actions = { " + " ".join(f"{a};" for a in d.actions) + " }")
        if d.const_entries:
            self.emit("const entries = {")
            self.depth += 1
            for entry in d.const_entries:
                keys = ", ".join(
                    "_" if isinstance(k, ast.DefaultExpr) else self.expr(k)
                    for k in entry.keysets
                )
                args = ", ".join(self.expr(a) for a in entry.action_args)
                self.emit(f"({keys}) : {entry.action_name}({args});")
            self.depth -= 1
            self.emit("}")
        if d.default_action is not None:
            args = ", ".join(self.expr(a) for a in d.default_action_args)
            self.emit(f"default_action = {d.default_action}({args});")
        if d.size is not None:
            self.emit(f"size = {d.size};")
        self.depth -= 1
        self.emit("}")

    def parser(self, d: ast.ParserDecl) -> None:
        params = ", ".join(self.param(p) for p in d.params)
        self.emit(f"parser {d.name}({params}) {{")
        self.depth += 1
        for local in d.locals:
            self.decl(local)
        for state in d.states:
            self.emit(f"state {state.name} {{")
            self.depth += 1
            for stmt in state.stmts:
                self.stmt(stmt)
            if state.direct_next is not None:
                self.emit(f"transition {state.direct_next};")
            elif state.select_exprs:
                subjects = ", ".join(self.expr(e) for e in state.select_exprs)
                self.emit(f"transition select({subjects}) {{")
                self.depth += 1
                for keysets, target in state.select_cases:
                    labels = ", ".join(
                        "default" if isinstance(k, ast.DefaultExpr) else self.expr(k)
                        for k in keysets
                    )
                    if len(keysets) > 1:
                        labels = f"({labels})"
                    self.emit(f"{labels} : {target};")
                self.depth -= 1
                self.emit("}")
            self.depth -= 1
            self.emit("}")
        self.depth -= 1
        self.emit("}")

    def control(self, d: ast.ControlDecl) -> None:
        params = ", ".join(self.param(p) for p in d.params)
        self.emit(f"control {d.name}({params}) {{")
        self.depth += 1
        for local in d.locals:
            self.decl(local)
        self.emit("apply")
        self.stmt(d.apply_body)
        self.depth -= 1
        self.emit("}")


def print_program(program: ast.SourceProgram) -> str:
    """Render a whole compilation unit to source text."""
    printer = Printer()
    for decl in program.decls:
        printer.decl(decl)
        printer.emit()
    return printer.text()


def print_decl(decl: ast.Decl) -> str:
    printer = Printer()
    printer.decl(decl)
    return printer.text()


def print_stmt(stmt: ast.Stmt) -> str:
    printer = Printer()
    printer.stmt(stmt)
    return printer.text()


def expr_text(expr: ast.Expr) -> str:
    return Printer().expr(expr)
