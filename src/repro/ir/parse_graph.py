"""Parser FSM graph construction and path enumeration.

The µP4C midend analyses the parse graph of every module (§5.2): it
enumerates the paths from ``start`` to ``accept``, computing for each the
sequence of extracted headers with their byte offsets, the select
conditions that guard the path (after forward substitution, Fig. 10b),
and the total extract length.  The longest path gives Elp(ψ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.ir.visitor import rewrite_expressions

MAX_PARSE_PATHS = 4096


@dataclass
class ExtractOp:
    """One header extraction on a parse path, at a fixed byte offset."""

    lvalue: ast.Expr
    header_type: ast.HeaderType
    offset: int  # bytes from the module's packet start

    @property
    def size(self) -> int:
        return self.header_type.byte_width


@dataclass
class PathCondition:
    """A select condition contributing to a path's match key."""

    subject: ast.Expr  # after forward substitution
    keyset: ast.Expr  # IntLit / MaskExpr / RangeExpr / DefaultExpr


@dataclass
class ParsePath:
    """One start→accept path through the parser FSM."""

    states: List[str] = field(default_factory=list)
    extracts: List[ExtractOp] = field(default_factory=list)
    conditions: List[PathCondition] = field(default_factory=list)
    assigns: List[ast.AssignStmt] = field(default_factory=list)

    @property
    def extract_len(self) -> int:
        return sum(e.size for e in self.extracts)

    def name(self) -> str:
        """Stable label for the path, used to name synthesized actions."""
        hdrs = [_lvalue_text(e.lvalue) for e in self.extracts]
        return "_".join(h.replace(".", "_") for h in hdrs) or "empty"


def _lvalue_text(expr: ast.Expr) -> str:
    if isinstance(expr, ast.PathExpr):
        return expr.name
    if isinstance(expr, ast.MemberExpr):
        return f"{_lvalue_text(expr.base)}.{expr.member}"
    if isinstance(expr, ast.IndexExpr):
        idx = expr.index.value if isinstance(expr.index, ast.IntLit) else "?"
        return f"{_lvalue_text(expr.base)}[{idx}]"
    return "<expr>"


class ParseGraph:
    """Parse graph of one parser with path enumeration."""

    def __init__(self, parser: ast.ParserDecl) -> None:
        self.parser = parser
        self.states: Dict[str, ast.ParserState] = {s.name: s for s in parser.states}
        self._paths: Optional[List[ParsePath]] = None
        self._check_acyclic()

    # ------------------------------------------------------------------
    def successors(self, state: ast.ParserState) -> List[str]:
        if state.direct_next is not None:
            return [state.direct_next]
        return [target for _, target in state.select_cases]

    def _check_acyclic(self) -> None:
        visiting: Dict[str, int] = {}  # 0 = on stack, 1 = done

        def visit(name: str, trail: List[str]) -> None:
            if name in ("accept", "reject") or name not in self.states:
                return
            mark = visiting.get(name)
            if mark == 0:
                cycle = " -> ".join(trail + [name])
                raise AnalysisError(
                    f"parser {self.parser.name!r} has a cycle: {cycle} "
                    f"(header-stack loops must be unrolled first)"
                )
            if mark == 1:
                return
            visiting[name] = 0
            for nxt in self.successors(self.states[name]):
                visit(nxt, trail + [name])
            visiting[name] = 1

        if self.states:
            visit("start", [])

    # ------------------------------------------------------------------
    def paths(self) -> List[ParsePath]:
        """All start→accept paths (reject paths are dropped)."""
        if self._paths is not None:
            return self._paths
        results: List[ParsePath] = []
        if not self.states:
            self._paths = [ParsePath(states=["accept"])]
            return self._paths

        def explore(
            name: str,
            states: List[str],
            extracts: List[ExtractOp],
            conditions: List[PathCondition],
            assigns: List[ast.AssignStmt],
            offset: int,
            env: Dict[str, ast.Expr],
        ) -> None:
            if len(results) > MAX_PARSE_PATHS:
                raise AnalysisError(
                    f"parser {self.parser.name!r} exceeds {MAX_PARSE_PATHS} paths"
                )
            if name == "accept":
                results.append(
                    ParsePath(
                        states=states,
                        extracts=extracts,
                        conditions=conditions,
                        assigns=assigns,
                    )
                )
                return
            if name == "reject" or name not in self.states:
                return
            state = self.states[name]
            extracts = list(extracts)
            assigns = list(assigns)
            env = dict(env)
            for stmt in state.stmts:
                offset = self._apply_stmt(stmt, extracts, assigns, env, offset)
            if state.direct_next is not None:
                explore(
                    state.direct_next,
                    states + [state.direct_next],
                    extracts,
                    conditions,
                    assigns,
                    offset,
                    env,
                )
                return
            if not state.select_cases:
                # No transition clause: implicit reject.
                return
            subjects = [self._substitute(e, env) for e in state.select_exprs]
            for keysets, target in state.select_cases:
                new_conditions = list(conditions)
                for subject, keyset in zip(subjects, keysets):
                    if not isinstance(keyset, ast.DefaultExpr):
                        new_conditions.append(
                            PathCondition(subject=subject, keyset=keyset)
                        )
                explore(
                    target,
                    states + [target],
                    extracts,
                    new_conditions,
                    assigns,
                    offset,
                    env,
                )

        explore("start", ["start"], [], [], [], 0, {})
        self._paths = results
        return results

    # ------------------------------------------------------------------
    def _apply_stmt(
        self,
        stmt: ast.Stmt,
        extracts: List[ExtractOp],
        assigns: List[ast.AssignStmt],
        env: Dict[str, ast.Expr],
        offset: int,
    ) -> int:
        if isinstance(stmt, ast.MethodCallStmt):
            resolved = getattr(stmt.call, "resolved", None)
            if resolved is not None and resolved[:2] == ("extern", "extractor"):
                if len(stmt.call.args) != 2:
                    raise AnalysisError(
                        "variable-length extract must be lowered by the "
                        "varlen transformation before parse-graph analysis",
                        stmt.loc,
                    )
                lvalue = stmt.call.args[1]
                htype = lvalue.type
                if not isinstance(htype, ast.HeaderType):
                    raise AnalysisError("extract target is not a header", stmt.loc)
                extracts.append(
                    ExtractOp(lvalue=lvalue, header_type=htype, offset=offset)
                )
                return offset + htype.byte_width
            raise AnalysisError(
                "unsupported call in parser state (only extractor.extract)",
                stmt.loc,
            )
        if isinstance(stmt, ast.AssignStmt):
            # Forward substitution (Fig. 10b): remember local assignments so
            # later select subjects can be rewritten per path.
            substituted = self._substitute(stmt.rhs, env)
            if isinstance(stmt.lhs, ast.PathExpr):
                env[stmt.lhs.name] = substituted
            new_assign = ast.AssignStmt(loc=stmt.loc, lhs=stmt.lhs, rhs=substituted)
            assigns.append(new_assign)
            return offset
        if isinstance(stmt, (ast.EmptyStmt,)):
            return offset
        raise AnalysisError(
            f"unsupported statement in parser state: {type(stmt).__name__}",
            stmt.loc,
        )

    def _substitute(self, expr: ast.Expr, env: Dict[str, ast.Expr]) -> ast.Expr:
        if not env:
            return expr

        def repl(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.PathExpr) and e.name in env:
                return env[e.name].clone()
            return None

        return rewrite_expressions(expr.clone(), repl)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    @property
    def extract_length(self) -> int:
        """Elp(ψ): max bytes extracted on any accept path."""
        paths = self.paths()
        return max((p.extract_len for p in paths), default=0)

    @property
    def min_extract_length(self) -> int:
        """Fewest bytes a packet needs to be accepted."""
        paths = self.paths()
        return min((p.extract_len for p in paths), default=0)

    def extracted_header_types(self) -> List[Tuple[str, ast.HeaderType]]:
        """All distinct headers this parser may extract (lvalue text, type)."""
        seen: Dict[str, ast.HeaderType] = {}
        for path in self.paths():
            for op in path.extracts:
                seen.setdefault(_lvalue_text(op.lvalue), op.header_type)
        return list(seen.items())


def build_parse_graph(parser: ast.ParserDecl) -> ParseGraph:
    """Construct (and cycle-check) the parse graph of ``parser``."""
    return ParseGraph(parser)
