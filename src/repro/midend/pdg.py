"""Program Dependence Graph construction (§5.4, Ferrante et al.).

For packet-replication preprocessing, µP4C builds a PDG over the
statements of an orchestration control: nodes are leaf statements,
edges are

* *data dependences*, labeled with the variable they carry (def→use),
  where logical-extern instances (``pkt``, ``im_t``) are tracked like
  ordinary variables — a module ``apply`` both uses and redefines the
  packet instance it processes,
* *control dependences* from the statements computing a branch
  condition to the statements the branch guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.ir.visitor import walk_expressions


@dataclass
class PdgNode:
    """One leaf statement with its dataflow summary."""

    id: int
    stmt: ast.Stmt
    defs: Set[str] = field(default_factory=set)
    uses: Set[str] = field(default_factory=set)
    guard_vars: Set[str] = field(default_factory=set)
    # Extern instances: pkt instances this node initializes / processes.
    pkt_defs: Set[str] = field(default_factory=set)
    pkt_uses: Set[str] = field(default_factory=set)
    is_exit: bool = False  # out_buf.enqueue / to_in_buf
    exit_instance: Optional[str] = None

    def describe(self) -> str:
        from repro.ir.printer import print_stmt

        return print_stmt(self.stmt).strip()


@dataclass
class PdgEdge:
    src: int
    dst: int
    kind: str  # "data" | "control"
    var: str = ""


class Pdg:
    """The dependence graph."""

    def __init__(self) -> None:
        self.nodes: List[PdgNode] = []
        self.edges: List[PdgEdge] = []

    def successors(self, node_id: int) -> List[PdgEdge]:
        return [e for e in self.edges if e.src == node_id]

    def predecessors(self, node_id: int) -> List[PdgEdge]:
        return [e for e in self.edges if e.dst == node_id]

    def exit_nodes(self) -> List[PdgNode]:
        return [n for n in self.nodes if n.is_exit]


def _instance_vars(control: ast.ControlDecl) -> Tuple[Set[str], Set[str]]:
    """(pkt-instance names, im-instance names) visible in the control."""
    pkts: Set[str] = set()
    ims: Set[str] = set()

    def classify(name: str, t: Optional[ast.Type]) -> None:
        if isinstance(t, ast.ExternType):
            if t.name == "pkt":
                pkts.add(name)
            elif t.name == "im_t":
                ims.add(name)

    for p in control.params:
        classify(p.name, p.param_type)
    for local in control.locals:
        if isinstance(local, ast.VarLocal):
            classify(local.name, local.var_type)
    return pkts, ims


def build_pdg(control: ast.ControlDecl) -> Pdg:
    """Build the PDG of an orchestration control's apply block."""
    pdg = Pdg()
    pkts, ims = _instance_vars(control)
    tracked_externs = pkts | ims

    def expr_vars(expr: ast.Expr) -> Set[str]:
        out: Set[str] = set()
        for node in walk_expressions(expr):
            if isinstance(node, ast.PathExpr):
                out.add(node.name)
            elif isinstance(node, ast.MemberExpr):
                root = node
                while isinstance(root, ast.MemberExpr):
                    root = root.base
                if isinstance(root, ast.PathExpr):
                    out.add(root.name)
        return out

    def add_node(stmt: ast.Stmt, guard_vars: Set[str]) -> PdgNode:
        node = PdgNode(id=len(pdg.nodes), stmt=stmt, guard_vars=set(guard_vars))
        _summarize(stmt, node)
        pdg.nodes.append(node)
        return node

    def _summarize(stmt: ast.Stmt, node: PdgNode) -> None:
        if isinstance(stmt, ast.AssignStmt):
            lhs_root = _root(stmt.lhs)
            if lhs_root is not None:
                node.defs.add(lhs_root)
            node.uses |= expr_vars(stmt.rhs)
        elif isinstance(stmt, ast.VarDeclStmt):
            node.defs.add(stmt.name)
            if stmt.init is not None:
                node.uses |= expr_vars(stmt.init)
        elif isinstance(stmt, ast.MethodCallStmt):
            self_call = stmt.call
            resolved = getattr(self_call, "resolved", None)
            target = self_call.target
            args_vars = set()
            for arg in self_call.args:
                args_vars |= expr_vars(arg)
            node.uses |= args_vars
            if resolved is None:
                raise AnalysisError("unresolved call in PDG", stmt.loc)
            kind = resolved[0]
            if kind == "extern":
                _, ext, method = resolved
                base_root = _root(target.base) if isinstance(
                    target, ast.MemberExpr
                ) else None
                if base_root is not None:
                    node.uses.add(base_root)
                if method == "copy_from" and base_root is not None:
                    node.defs.add(base_root)
                    if base_root in pkts:
                        node.pkt_defs.add(base_root)
                if ext == "im_t" and method.startswith("set_") and base_root:
                    node.defs.add(base_root)
                if ext == "im_t" and method == "drop" and base_root:
                    node.defs.add(base_root)
                if ext == "out_buf" and method in ("enqueue", "to_in_buf", "merge"):
                    node.is_exit = True
                    for arg in self_call.args:
                        root = _root(arg)
                        if root in pkts:
                            node.exit_instance = root
                for arg in self_call.args:
                    root = _root(arg)
                    if root in pkts:
                        node.pkt_uses.add(root)
            elif kind == "module":
                # A callee consumes and regenerates its packet argument
                # and may write every out/inout argument.
                inst: ast.InstanceDecl = resolved[1]
                if self_call.args:
                    pkt_root = _root(self_call.args[0])
                    if pkt_root in pkts:
                        node.pkt_uses.add(pkt_root)
                        node.pkt_defs.add(pkt_root)
                        node.defs.add(pkt_root)
                for arg in self_call.args[1:]:
                    root = _root(arg)
                    if root is not None:
                        node.defs.add(root)  # conservative: out/inout
            elif kind == "action":
                decl: ast.ActionDecl = resolved[1]
                from repro.backend.base import stmt_effects

                reads, writes, _ = stmt_effects(stmt, {})
                node.uses |= {r.split(".")[0] for r in reads}
                node.defs |= {w.split(".")[0] for w in writes}
            elif kind == "header_op":
                base_root = _root(target.base)
                if base_root is not None:
                    node.defs.add(base_root)

    def visit(stmt: ast.Stmt, guard_vars: Set[str]) -> None:
        if isinstance(stmt, ast.BlockStmt):
            for inner in stmt.stmts:
                visit(inner, guard_vars)
        elif isinstance(stmt, ast.IfStmt):
            cond_vars = expr_vars(stmt.cond)
            visit(stmt.then_body, guard_vars | cond_vars)
            if stmt.else_body is not None:
                visit(stmt.else_body, guard_vars | cond_vars)
        elif isinstance(stmt, ast.SwitchStmt):
            subject_vars = expr_vars(stmt.subject)
            for case in stmt.cases:
                if case.body is not None:
                    visit(case.body, guard_vars | subject_vars)
        elif isinstance(stmt, (ast.EmptyStmt,)):
            pass
        else:
            add_node(stmt, guard_vars)

    visit(control.apply_body, set())

    # Data edges: def -> later use (and def -> later def for ordering of
    # instance redefinitions).
    last_def: Dict[str, int] = {}
    for node in pdg.nodes:
        for var in sorted(node.uses | node.guard_vars):
            if var in last_def:
                src = last_def[var]
                if src != node.id:
                    kind = "control" if var in node.guard_vars and var not in node.uses else "data"
                    pdg.edges.append(PdgEdge(src, node.id, kind, var))
        for var in sorted(node.defs):
            if var in last_def and var in tracked_externs:
                pdg.edges.append(PdgEdge(last_def[var], node.id, "data", var))
        for var in node.defs:
            last_def[var] = node.id
    return pdg


def _root(expr: ast.Expr) -> Optional[str]:
    while isinstance(expr, (ast.MemberExpr, ast.IndexExpr, ast.SliceExpr)):
        expr = expr.base
    if isinstance(expr, ast.PathExpr):
        return expr.name
    return None
