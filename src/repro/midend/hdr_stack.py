"""Header-stack lowering (paper Appendix C).

µP4 allows header stacks of compile-time-known size.  µP4C "replaces
each header stack instance with multiple instances of the header type"
and rewrites the operations:

* ``hs[i]``            → the synthesized instance ``hs_i``,
* ``hs.push_front(1)`` → ``hs_2 = hs_1; hs_1 = hs_0; hs_0.setInvalid()``
  (header copies expand to per-field assignments plus validity
  transfer),
* ``hs.pop_front(1)``  → the converse shift,
* parser loops over ``hs.next`` → the loop state is unrolled once per
  element (``lastIndex`` rewrites to the element index).

The pass rewrites the module's *source AST* and re-runs the type
checker, so downstream passes see a fully annotated stack-free program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Module, TypeChecker
from repro.ir.visitor import rewrite_expressions, walk


def _element_name(stack_field: str, index: int) -> str:
    return f"{stack_field}_{index}"


def _find_stacks(source: ast.SourceProgram) -> Dict[str, Tuple[ast.Type, int]]:
    """struct-field name -> (element type node, size) for all stacks."""
    stacks: Dict[str, Tuple[ast.Type, int]] = {}
    for decl in source.decls:
        if isinstance(decl, ast.StructDecl):
            for fname, ftype in decl.fields:
                if isinstance(ftype, ast.HeaderStackType):
                    stacks[fname] = (ftype.element, ftype.size)
    return stacks


def _element_fields(element: ast.Type, module: Module) -> List[str]:
    """Field names of a stack's element header type."""
    name = getattr(element, "name", None)
    resolved = module.types.get(name) if name else None
    if isinstance(resolved, ast.HeaderType):
        return [f for f, _ in resolved.fields]
    raise AnalysisError(f"cannot resolve stack element type {name!r}")


def has_header_stacks(source: ast.SourceProgram) -> bool:
    return bool(_find_stacks(source))


def lower_header_stacks(module: Module) -> Module:
    """Lower all header stacks; returns a freshly checked module."""
    source = module.source
    stacks = _find_stacks(source)
    if not stacks:
        return module
    source = source.clone()

    # 1. Flatten stack fields in struct declarations.
    for decl in source.decls:
        if isinstance(decl, ast.StructDecl):
            new_fields: List[Tuple[str, ast.Type]] = []
            for fname, ftype in decl.fields:
                if isinstance(ftype, ast.HeaderStackType):
                    for i in range(ftype.size):
                        new_fields.append((_element_name(fname, i), ftype.element.clone()))
                else:
                    new_fields.append((fname, ftype))
            decl.fields = new_fields

    # 2. Rewrite expressions and statements everywhere.
    for decl in source.decls:
        _rewrite_decl(decl, stacks, module)

    checked = TypeChecker(source, module.name).check()
    return checked


def _rewrite_decl(decl: ast.Decl, stacks, module: Module) -> None:
    if isinstance(decl, ast.ProgramDecl):
        for inner in decl.decls:
            _rewrite_decl(inner, stacks, module)
        return
    if isinstance(decl, ast.ParserDecl):
        _unroll_parser(decl, stacks, module)
        for state in decl.states:
            for stmt in state.stmts:
                _rewrite_indexing(stmt, stacks)
            for exprs in (state.select_exprs,):
                for i, e in enumerate(exprs):
                    exprs[i] = _rewrite_indexing_expr(e, stacks)
        return
    if isinstance(decl, ast.ControlDecl):
        decl.apply_body = _rewrite_stmt(decl.apply_body, stacks, module)
        for local in decl.locals:
            if isinstance(local, ast.ActionDecl):
                local.body = _rewrite_stmt(local.body, stacks, module)
            elif isinstance(local, ast.TableDecl):
                for key in local.keys:
                    key.expr = _rewrite_indexing_expr(key.expr, stacks)
        return


# ----------------------------------------------------------------------
# Expression rewriting: hs[i] -> hs_i
# ----------------------------------------------------------------------


def _stack_member(expr: ast.Expr, stacks) -> Optional[Tuple[ast.Expr, str]]:
    """If expr is ``<base>.<stackfield>``, return (base, field)."""
    if isinstance(expr, ast.MemberExpr) and expr.member in stacks:
        return expr.base, expr.member
    return None


def _rewrite_indexing_expr(expr: ast.Expr, stacks) -> ast.Expr:
    def repl(e: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(e, ast.IndexExpr):
            hit = _stack_member(e.base, stacks)
            if hit is None:
                return None
            if not isinstance(e.index, ast.IntLit):
                raise AnalysisError(
                    "header-stack index must be a compile-time constant "
                    "after loop unrolling",
                    e.loc,
                )
            base, fname = hit
            _, size = stacks[fname]
            if not (0 <= e.index.value < size):
                raise AnalysisError(
                    f"stack index {e.index.value} out of range [0, {size})",
                    e.loc,
                )
            return ast.MemberExpr(
                loc=e.loc,
                base=base.clone(),
                member=_element_name(fname, e.index.value),
            )
        return None

    return rewrite_expressions(expr, repl)  # type: ignore[return-value]


def _rewrite_indexing(stmt: ast.Stmt, stacks) -> None:
    def repl(e: ast.Expr) -> Optional[ast.Expr]:
        return None

    rewrite_expressions(stmt, lambda e: None)  # ensure structure walked
    # Reuse expression rewriting through the statement fields directly.
    if isinstance(stmt, ast.AssignStmt):
        stmt.lhs = _rewrite_indexing_expr(stmt.lhs, stacks)
        stmt.rhs = _rewrite_indexing_expr(stmt.rhs, stacks)
    elif isinstance(stmt, ast.MethodCallStmt):
        stmt.call = _rewrite_indexing_expr(stmt.call, stacks)  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Statement rewriting: push_front / pop_front, plus indexing
# ----------------------------------------------------------------------


def _rewrite_stmt(stmt: ast.Stmt, stacks, module: Module) -> ast.Stmt:
    if isinstance(stmt, ast.BlockStmt):
        new_stmts: List[ast.Stmt] = []
        for inner in stmt.stmts:
            rewritten = _rewrite_stmt(inner, stacks, module)
            if isinstance(rewritten, ast.BlockStmt) and getattr(
                rewritten, "_splice", False
            ):
                new_stmts.extend(rewritten.stmts)
            else:
                new_stmts.append(rewritten)
        stmt.stmts = new_stmts
        return stmt
    if isinstance(stmt, ast.IfStmt):
        stmt.cond = _rewrite_indexing_expr(stmt.cond, stacks)
        stmt.then_body = _rewrite_stmt(stmt.then_body, stacks, module)
        if stmt.else_body is not None:
            stmt.else_body = _rewrite_stmt(stmt.else_body, stacks, module)
        return stmt
    if isinstance(stmt, ast.SwitchStmt):
        stmt.subject = _rewrite_indexing_expr(stmt.subject, stacks)
        for case in stmt.cases:
            if case.body is not None:
                case.body = _rewrite_stmt(case.body, stacks, module)
        return stmt
    if isinstance(stmt, ast.MethodCallStmt):
        expanded = _expand_stack_op(stmt, stacks, module)
        if expanded is not None:
            return expanded
        stmt.call = _rewrite_indexing_expr(stmt.call, stacks)  # type: ignore[assignment]
        return stmt
    if isinstance(stmt, ast.AssignStmt):
        stmt.lhs = _rewrite_indexing_expr(stmt.lhs, stacks)
        stmt.rhs = _rewrite_indexing_expr(stmt.rhs, stacks)
        return stmt
    return stmt


def _expand_stack_op(stmt: ast.MethodCallStmt, stacks, module: Module) -> Optional[ast.BlockStmt]:
    call = stmt.call
    if not isinstance(call.target, ast.MemberExpr):
        return None
    op = call.target.member
    if op not in ("push_front", "pop_front"):
        return None
    hit = _stack_member(call.target.base, stacks)
    if hit is None:
        return None
    base, fname = hit
    element_type, size = stacks[fname]
    fields = _element_fields(element_type, module)
    if len(call.args) != 1 or not isinstance(call.args[0], ast.IntLit):
        raise AnalysisError(f"{op} needs a constant argument", stmt.loc)
    count = call.args[0].value
    stmts: List[ast.Stmt] = []

    def elem(i: int) -> ast.MemberExpr:
        return ast.MemberExpr(base=base.clone(), member=_element_name(fname, i))

    if op == "push_front":
        # hs_{n-1} = hs_{n-1-count} ... then invalidate the new front.
        for i in reversed(range(count, size)):
            stmts.append(_copy_header(elem(i), elem(i - count), fields))
        for i in range(min(count, size)):
            stmts.append(_validity_stmt(elem(i), valid=False))
    else:  # pop_front
        for i in range(size - count):
            stmts.append(_copy_header(elem(i), elem(i + count), fields))
        for i in range(max(size - count, 0), size):
            stmts.append(_validity_stmt(elem(i), valid=False))
    block = ast.BlockStmt(loc=stmt.loc, stmts=stmts)
    block._splice = True  # type: ignore[attr-defined]
    return block


def _copy_header(dst: ast.Expr, src: ast.Expr, fields: List[str]) -> ast.Stmt:
    """``dst = src`` for headers: validity transfer plus field copies."""
    copies: List[ast.Stmt] = [_validity_stmt(dst.clone(), valid=True)]
    for fname in fields:
        copies.append(
            ast.AssignStmt(
                lhs=ast.MemberExpr(base=dst.clone(), member=fname),
                rhs=ast.MemberExpr(base=src.clone(), member=fname),
            )
        )
    is_valid = ast.MethodCallExpr(
        target=ast.MemberExpr(base=src.clone(), member="isValid")
    )
    return ast.IfStmt(
        cond=is_valid,
        then_body=ast.BlockStmt(stmts=copies),
        else_body=ast.BlockStmt(stmts=[_validity_stmt(dst.clone(), valid=False)]),
    )


def _validity_stmt(target: ast.Expr, valid: bool) -> ast.Stmt:
    call = ast.MethodCallExpr(
        target=ast.MemberExpr(base=target, member="setValid" if valid else "setInvalid"),
    )
    return ast.MethodCallStmt(call=call)


# ----------------------------------------------------------------------
# Parser loop unrolling
# ----------------------------------------------------------------------


def _unroll_parser(parser: ast.ParserDecl, stacks, module: Module) -> None:
    """Unroll self-loop states extracting ``hs.next``."""
    new_states: List[ast.ParserState] = []
    for state in parser.states:
        loop_field = _next_extract_field(state, stacks)
        if loop_field is None:
            new_states.append(state)
            continue
        base, fname = loop_field
        _, size = stacks[fname]
        for i in range(size):
            clone = state.clone()
            clone.name = state.name if i == 0 else f"{state.name}_u{i}"
            _replace_next(clone, base, fname, i)
            # Retarget the self-loop to the next unrolled copy; the last
            # copy turns the loop edge into reject (stack overflow).
            next_name = f"{state.name}_u{i + 1}" if i + 1 < size else "reject"
            _retarget(clone, state.name, next_name)
            new_states.append(clone)
    parser.states = new_states


def _next_extract_field(state: ast.ParserState, stacks):
    for stmt in state.stmts:
        if isinstance(stmt, ast.MethodCallStmt):
            call = stmt.call
            if (
                isinstance(call.target, ast.MemberExpr)
                and call.target.member == "extract"
                and len(call.args) == 2
            ):
                arg = call.args[1]
                if isinstance(arg, ast.MemberExpr) and arg.member == "next":
                    hit = _stack_member(arg.base, stacks)
                    if hit is not None:
                        return hit
    return None


def _replace_next(state: ast.ParserState, base: ast.Expr, fname: str, index: int):
    def repl(e: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(e, ast.MemberExpr) and e.member in ("next", "last"):
            inner = _stack_member(e.base, {fname: None})
            if inner is not None and inner[1] == fname:
                element = index if e.member == "next" else max(index - 1, 0)
                return ast.MemberExpr(
                    base=inner[0].clone(), member=_element_name(fname, element)
                )
        if isinstance(e, ast.MemberExpr) and e.member == "lastIndex":
            inner = _stack_member(e.base, {fname: None})
            if inner is not None:
                lit = ast.IntLit(value=index, width=32)
                return lit
        return None

    for stmt in state.stmts:
        rewrite_expressions(stmt, repl)
    state.select_exprs = [
        rewrite_expressions(e, repl) for e in state.select_exprs  # type: ignore[misc]
    ]


def _retarget(state: ast.ParserState, old: str, new: str) -> None:
    if state.direct_next == old:
        state.direct_next = new
    state.select_cases = [
        (keysets, new if target == old else target)
        for keysets, target in state.select_cases
    ]
