"""Composition-overhead optimizations (paper §8.1).

The paper outlines optimizations to reduce the resource cost of
homogenized (de)parsers.  This pass implements the first practical
slice of them on a composed pipeline:

* **trivial parser MATs** — a module whose parser extracts nothing
  (e.g. a dispatch module like ``L3``) still gets a full MAT with a
  length guard; its only effect is setting the path register.  The MAT
  is replaced by the straight-line action body, freeing a logical table
  and its match crossbar share.
* **empty deparser MATs** — a deparser that emits nothing compiles to a
  table whose every action is a no-op; it is removed outright.
* **single-entry parser MATs** — a parser with exactly one path whose
  only guard is the packet-length check is replaced by a conditional
  around its action body (the "gateway" form targets implement for
  free), instead of occupying a match stage.

Returns statistics so ablation benches can report what was removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend import astnodes as ast
from repro.midend.inline import ComposedPipeline
from repro.obs.metrics import METRICS


@dataclass
class OptimizationStats:
    """What the pass removed or rewrote."""

    elided_parser_mats: List[str] = field(default_factory=list)
    elided_deparser_mats: List[str] = field(default_factory=list)
    gatewayed_parser_mats: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            len(self.elided_parser_mats)
            + len(self.elided_deparser_mats)
            + len(self.gatewayed_parser_mats)
        )


def _table_of(stmt: ast.Stmt) -> Optional[ast.TableDecl]:
    if isinstance(stmt, ast.MethodCallStmt):
        resolved = getattr(stmt.call, "resolved", None)
        if resolved is not None and resolved[0] == "table":
            return resolved[1]
    return None


def _is_trivial_parser_mat(composed: ComposedPipeline, decl: ast.TableDecl):
    """A parser MAT with one path and no extractions: its single entry's
    action only sets the path register."""
    for prefix, mat in composed.parser_mats.items():
        if mat.table is decl:
            if len(mat.paths) == 1 and not mat.paths[0].extracts:
                return mat
            return None
    return None


def _is_single_path_parser_mat(composed: ComposedPipeline, decl: ast.TableDecl):
    for mat in composed.parser_mats.values():
        if mat.table is decl and len(mat.paths) == 1 and mat.paths[0].extracts:
            # Single path, real extraction: entry keys are just the
            # length guard (no select conditions on a one-path parser
            # unless defaults were taken).
            if len(decl.keys) == 1:
                return mat
    return None


def _is_empty_deparser_mat(composed: ComposedPipeline, decl: ast.TableDecl) -> bool:
    for mat in composed.deparser_mats.values():
        if mat.table is decl:
            return all(
                not composed.actions[name].body.stmts
                for name in decl.actions
                if name in composed.actions
            )
    return False


def _length_guard_condition(mat, bs) -> ast.Expr:
    """``upa_bs_len >= <need>`` for a single-path parser gateway."""
    need = mat.base_offset + mat.paths[0].extract_len
    lit = ast.IntLit(value=need, width=16)
    lit.type = ast.BitType(width=16)
    cond = ast.BinaryExpr(op=">=", left=bs.len_expr(), right=lit)
    cond.type = ast.BoolType()
    return cond


def _error_action_call(composed: ComposedPipeline, mat) -> List[ast.Stmt]:
    err = composed.actions.get(mat.table.default_action)
    return [s.clone() for s in err.body.stmts] if err is not None else []


def elide_trivial_mats(composed: ComposedPipeline) -> OptimizationStats:
    """Apply the §8.1 MAT-elision optimizations in place."""
    stats = OptimizationStats()
    if composed.mode != "micro" or composed.byte_stack is None:
        return stats
    bs = composed.byte_stack

    def rewrite(stmts: List[ast.Stmt]) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for stmt in stmts:
            decl = _table_of(stmt)
            if decl is None:
                out.append(_rewrite_nested(stmt))
                continue
            trivial = _is_trivial_parser_mat(composed, decl)
            if trivial is not None:
                # Inline the single entry's action body; the length
                # guard still applies (an empty parser accepts any
                # suffix, including the empty one, so it is vacuous).
                action = composed.actions[decl.const_entries[0].action_name]
                out.extend(s.clone() for s in action.body.stmts)
                composed.tables.pop(decl.name, None)
                stats.elided_parser_mats.append(decl.name)
                continue
            single = _is_single_path_parser_mat(composed, decl)
            if single is not None:
                action = composed.actions[decl.const_entries[0].action_name]
                guard = _length_guard_condition(single, bs)
                out.append(
                    ast.IfStmt(
                        cond=guard,
                        then_body=ast.BlockStmt(
                            stmts=[s.clone() for s in action.body.stmts]
                        ),
                        else_body=ast.BlockStmt(
                            stmts=_error_action_call(composed, single)
                        ),
                    )
                )
                composed.tables.pop(decl.name, None)
                stats.gatewayed_parser_mats.append(decl.name)
                continue
            if _is_empty_deparser_mat(composed, decl):
                composed.tables.pop(decl.name, None)
                stats.elided_deparser_mats.append(decl.name)
                continue
            out.append(stmt)
        return out

    def _rewrite_nested(stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.BlockStmt):
            stmt.stmts = rewrite(stmt.stmts)
        elif isinstance(stmt, ast.IfStmt):
            stmt.then_body = _rewrite_nested(stmt.then_body)
            if stmt.else_body is not None:
                stmt.else_body = _rewrite_nested(stmt.else_body)
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                if case.body is not None:
                    case.body = _rewrite_nested(case.body)
        return stmt

    composed.statements = rewrite(composed.statements)
    METRICS.inc("optimize.mats_elided", stats.total)
    return stats
