"""Deparser → MAT homogenization (paper §5.3).

The deparser of a module becomes one MAT that copies user header fields
back into the byte stack.  Matching is on (i) which parser path ran (the
``<prefix>_path`` register set by the parser MAT) and (ii) the validity
of each emitted header, so that every entry's byte offsets are static:

* the valid headers are packed contiguously from the module's base
  offset in emit order,
* if the packed size differs from the bytes the parser originally
  extracted on that path, the tail of the stack region is shifted
  (e.g. removing a 4-byte MPLS header moves the following bytes up by
  4 — paper §5.3) and ``upa_bs_len`` is adjusted.

Identical (layout, shift) combinations share one synthesized action.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AnalysisError, ResourceError
from repro.frontend import astnodes as ast
from repro.ir.parse_graph import ParsePath
from repro.ir.printer import expr_text
from repro.midend.bytestack import ByteStack
from repro.midend.parser_to_mat import PATH_VAR_WIDTH, _int_lit, _path_lvalue

MAX_EMITTED_HEADERS = 10


@dataclass
class MatDeparser:
    """The synthesized deparser MAT for one module instance."""

    table: ast.TableDecl
    actions: Dict[str, ast.ActionDecl]
    emitted: List[ast.Expr]  # header lvalues in emit order

    def apply_stmt(self) -> ast.MethodCallStmt:
        target = ast.MemberExpr(
            base=ast.PathExpr(name=self.table.name), member="apply"
        )
        call = ast.MethodCallExpr(target=target)
        call.resolved = ("table", self.table)  # type: ignore[attr-defined]
        return ast.MethodCallStmt(call=call)


def _emit_sequence(deparser: ast.ControlDecl) -> List[ast.Expr]:
    """The ordered ``emitter.emit`` header lvalues; straight-line only."""
    emits: List[ast.Expr] = []
    for stmt in deparser.apply_body.stmts:
        if isinstance(stmt, ast.EmptyStmt):
            continue
        if not isinstance(stmt, ast.MethodCallStmt):
            raise AnalysisError(
                "deparser bodies must be straight-line emit sequences",
                stmt.loc,
            )
        resolved = getattr(stmt.call, "resolved", None)
        if resolved is None or resolved[:2] != ("extern", "emitter"):
            raise AnalysisError(
                "deparser bodies may only call emitter.emit", stmt.loc
            )
        emits.append(stmt.call.args[1])
    return emits


def _isvalid_expr(hdr_lvalue: ast.Expr) -> ast.Expr:
    target = ast.MemberExpr(base=hdr_lvalue.clone(), member="isValid")
    call = ast.MethodCallExpr(target=target)
    call.resolved = ("header_op", "isValid")  # type: ignore[attr-defined]
    call.type = ast.BoolType()
    return call


def _bool_lit(value: bool) -> ast.BoolLit:
    lit = ast.BoolLit(value=value)
    lit.type = ast.BoolType()
    return lit


def deparser_to_mat(
    deparser: ast.ControlDecl,
    parser_paths: List[ParsePath],
    base_offset: int,
    bs: ByteStack,
    prefix: str,
) -> MatDeparser:
    """Transform ``deparser`` into a copy-back MAT over the byte stack."""
    emitted = _emit_sequence(deparser)
    if len(emitted) > MAX_EMITTED_HEADERS:
        raise ResourceError(
            f"deparser of {prefix!r} emits {len(emitted)} headers; "
            f"the MAT transformation supports at most {MAX_EMITTED_HEADERS}"
        )
    for e in emitted:
        if not isinstance(e.type, ast.HeaderType):
            raise AnalysisError("emit argument is not a header", e.loc)

    path_var = f"{prefix}_path"
    keys: List[ast.KeyElement] = [
        ast.KeyElement(expr=_path_lvalue(path_var), match_kind="exact")
    ]
    for hdr in emitted:
        keys.append(ast.KeyElement(expr=_isvalid_expr(hdr), match_kind="exact"))

    actions: Dict[str, ast.ActionDecl] = {}
    # Content-addressed action cache: identical layouts share an action.
    action_by_signature: Dict[Tuple, str] = {}
    entries: List[ast.TableEntry] = []

    noop_name = f"dep_{prefix}_noop"
    actions[noop_name] = ast.ActionDecl(name=noop_name, body=ast.BlockStmt())

    for path_id, path in enumerate(parser_paths, start=1):
        orig_len = path.extract_len
        for combo in itertools.product([True, False], repeat=len(emitted)):
            new_len = sum(
                hdr.type.byte_width  # type: ignore[union-attr]
                for hdr, valid in zip(emitted, combo)
                if valid
            )
            if base_offset + new_len > bs.size:
                # This validity combination cannot occur: the static
                # analysis bounds packet growth (Eq. 1), so combinations
                # overflowing the byte stack are unreachable (e.g. all
                # varbit variants valid at once).  No entry is emitted;
                # the table default (no-op) covers the impossible case.
                continue
            delta = new_len - orig_len
            layout: List[Tuple[str, int]] = []
            cursor = base_offset
            for hdr, valid in zip(emitted, combo):
                if not valid:
                    continue
                layout.append((expr_text(hdr), cursor))
                cursor += hdr.type.byte_width  # type: ignore[union-attr]
            signature = (tuple(layout), delta, base_offset + orig_len)
            action_name = action_by_signature.get(signature)
            if action_name is None:
                action_name = f"dep_{prefix}_{len(action_by_signature)}"
                action_by_signature[signature] = action_name
                actions[action_name] = _make_writeback_action(
                    action_name,
                    emitted,
                    combo,
                    base_offset,
                    orig_len,
                    delta,
                    bs,
                )
            keysets: List[ast.Expr] = [_int_lit(path_id, PATH_VAR_WIDTH)]
            keysets.extend(_bool_lit(v) for v in combo)
            entries.append(
                ast.TableEntry(
                    keysets=keysets, action_name=action_name, action_args=[]
                )
            )

    table = ast.TableDecl(
        name=f"{prefix}_deparser_tbl",
        keys=keys,
        actions=list(actions),
        default_action=noop_name,
        const_entries=entries,
    )
    return MatDeparser(table=table, actions=actions, emitted=emitted)


def _make_writeback_action(
    name: str,
    emitted: List[ast.Expr],
    combo: Tuple[bool, ...],
    base_offset: int,
    orig_len: int,
    delta: int,
    bs: ByteStack,
) -> ast.ActionDecl:
    stmts: List[ast.Stmt] = []
    region_tail = base_offset + orig_len
    if delta > 0:
        # Growing: move the tail out of the way before writing headers.
        stmts.extend(bs.shift_assigns(region_tail, delta))
    cursor = base_offset
    for hdr, valid in zip(emitted, combo):
        if not valid:
            continue
        htype = hdr.type
        assert isinstance(htype, ast.HeaderType)
        stmts.extend(bs.writeback_assigns(cursor, htype, hdr))
        cursor += htype.byte_width
    if delta < 0:
        # Shrinking: headers written, now pull the tail up.
        stmts.extend(bs.shift_assigns(region_tail, delta))
    if delta != 0:
        stmts.append(bs.adjust_len_stmt(delta))
    return ast.ActionDecl(name=name, body=ast.BlockStmt(stmts=stmts))
