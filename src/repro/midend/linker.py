"""Linking µP4-IR modules (§5.1 midend step 1).

The linker takes the main module plus a set of library modules and
resolves every module instantiation (``L3() l3_i;``) to the program that
provides it.  A caller refers to callees through module signature
declarations; the provider is a ``program`` with the same name whose
derived apply signature matches.

The linker also rejects cyclic composition (the recursion check that the
paper's prototype leaves for future work, §6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import LinkError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Module, ProgramInfo
from repro.obs.metrics import METRICS


@dataclass
class LinkedUnit:
    """One program together with the module that declared it."""

    module: Module
    program: ProgramInfo

    @property
    def name(self) -> str:
        return self.program.name


@dataclass
class LinkedProgram:
    """A fully linked composition rooted at the main program."""

    main: LinkedUnit
    providers: Dict[str, LinkedUnit] = field(default_factory=dict)

    def resolve(self, program_name: str) -> LinkedUnit:
        try:
            return self.providers[program_name]
        except KeyError:
            raise LinkError(f"no provider for module {program_name!r}") from None

    def callee_of(self, caller: ProgramInfo, instance_name: str) -> LinkedUnit:
        """Resolve an instance declared in ``caller`` to its provider."""
        inst = caller.instances.get(instance_name)
        if inst is None:
            raise LinkError(
                f"program {caller.name!r} has no module instance "
                f"{instance_name!r}"
            )
        return self.resolve(inst.target)

    def units(self) -> List[LinkedUnit]:
        """All reachable units, callees before callers (topological)."""
        order: List[LinkedUnit] = []
        seen: Set[str] = set()

        def visit(unit: LinkedUnit) -> None:
            if unit.name in seen:
                return
            seen.add(unit.name)
            for inst in unit.program.instances.values():
                visit(self.resolve(inst.target))
            order.append(unit)

        visit(self.main)
        return order


def _types_compatible(a: ast.Type, b: ast.Type) -> bool:
    if isinstance(a, ast.BitType) and isinstance(b, ast.BitType):
        return a.width == b.width
    if isinstance(a, ast.ExternType) and isinstance(b, ast.ExternType):
        return a.name == b.name
    if isinstance(a, (ast.StructType, ast.HeaderType)) and isinstance(
        b, (ast.StructType, ast.HeaderType)
    ):
        return a.name == b.name
    if isinstance(a, ast.TypeName) and isinstance(b, ast.ExternType):
        return a.name == b.name
    if isinstance(b, ast.TypeName) and isinstance(a, ast.ExternType):
        return b.name == a.name
    return type(a) is type(b)


def check_signature(sig: ast.ModuleSigDecl, provider: ProgramInfo) -> None:
    """Verify a caller-side signature against the provider's interface."""
    expected = provider.apply_signature()
    if len(sig.params) != len(expected):
        raise LinkError(
            f"module {sig.name!r}: caller declares {len(sig.params)} "
            f"parameters but program {provider.name!r} exposes {len(expected)}",
            sig.loc,
        )
    for caller_p, provider_p in zip(sig.params, expected):
        if caller_p.direction != provider_p.direction:
            raise LinkError(
                f"module {sig.name!r}: parameter {caller_p.name!r} direction "
                f"{caller_p.direction or 'none'!r} does not match provider's "
                f"{provider_p.direction or 'none'!r}",
                sig.loc,
            )
        if not _types_compatible(caller_p.param_type, provider_p.param_type):
            raise LinkError(
                f"module {sig.name!r}: parameter {caller_p.name!r} type "
                f"mismatch with provider",
                sig.loc,
            )


def link_modules(main: Module, libraries: Optional[List[Module]] = None) -> LinkedProgram:
    """Link ``main`` against ``libraries`` and return the composition.

    Every program in every module (including ``main``) becomes a
    potential provider; module signature declarations are resolved by
    name and validated structurally.
    """
    libraries = libraries or []
    providers: Dict[str, LinkedUnit] = {}
    for module in [main, *libraries]:
        for name, info in module.programs.items():
            if name in providers:
                raise LinkError(
                    f"module {name!r} provided by both "
                    f"{providers[name].module.name!r} and {module.name!r}"
                )
            providers[name] = LinkedUnit(module=module, program=info)

    main_info = main.main_program()
    linked = LinkedProgram(
        main=LinkedUnit(module=main, program=main_info), providers=providers
    )

    # Resolve and validate every instance of every reachable program, and
    # reject cycles along the way.
    visiting: Dict[str, int] = {}

    def visit(unit: LinkedUnit, trail: List[str]) -> None:
        mark = visiting.get(unit.name)
        if mark == 0:
            cycle = " -> ".join(trail + [unit.name])
            raise LinkError(f"recursive module composition: {cycle}")
        if mark == 1:
            return
        visiting[unit.name] = 0
        for inst in unit.program.instances.values():
            if inst.target not in providers:
                raise LinkError(
                    f"program {unit.name!r} instantiates {inst.target!r} "
                    f"but no library provides it",
                    inst.loc,
                )
            sig = unit.module.module_sigs.get(inst.target)
            provider = providers[inst.target]
            if sig is not None:
                check_signature(sig, provider.program)
                METRICS.inc("linker.signatures_checked")
            METRICS.inc("linker.instances_resolved")
            visit(provider, trail + [unit.name])
        visiting[unit.name] = 1

    visit(linked.main, [])
    METRICS.set_gauge("linker.providers", len(providers))
    return linked
