"""Byte-stack synthesis (paper §5.2/§5.3).

The midend synthesizes "a stack of one-byte headers ... large enough to
store the operational-region" and rewrites all packet accesses onto it.
Here the stack is a synthetic struct ``upa_bs`` with one ``bit<8>``
field per byte (``b0``, ``b1``, ...), plus a running length register
``upa_bs_len`` that deparser MATs adjust when headers are added or
removed.

This module provides the expression/statement builders shared by the
parser→MAT and deparser→MAT passes:

* reading a header field out of the stack (concat + slice of byte slots),
* writing a header back into the stack byte by byte,
* shifting a stack region up or down when a module changes packet size.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast

BS_INSTANCE = "upa_bs"
BS_LEN_VAR = "upa_bs_len"
PARSER_ERR_VAR = "upa_parser_err"
BS_LEN_WIDTH = 16


class ByteStack:
    """A synthesized byte-stack of a fixed size (Bs from Eq. 4)."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise AnalysisError(f"negative byte-stack size {size}")
        self.size = size

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def header_type(self) -> ast.HeaderType:
        """The synthetic ``upa_bs_t`` header holding all stack bytes."""
        fields = [(f"b{i}", ast.BitType(width=8)) for i in range(self.size)]
        return ast.HeaderType(name="upa_bs_t", fields=fields)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def slot(self, index: int) -> ast.Expr:
        """Lvalue for stack byte ``index`` (``upa_bs.b<i>``)."""
        if not (0 <= index < self.size):
            raise AnalysisError(
                f"byte-stack slot {index} out of range [0, {self.size})"
            )
        expr = ast.MemberExpr(
            base=ast.PathExpr(name=BS_INSTANCE), member=f"b{index}"
        )
        expr.type = ast.BitType(width=8)
        return expr

    def len_expr(self) -> ast.Expr:
        expr = ast.PathExpr(name=BS_LEN_VAR)
        expr.type = ast.BitType(width=BS_LEN_WIDTH)
        return expr

    def read_bits(self, byte_offset: int, bit_offset: int, width: int) -> ast.Expr:
        """Expression reading ``width`` bits at ``byte_offset``+``bit_offset``.

        ``bit_offset`` counts from the MSB of the byte at ``byte_offset``.
        The result is a concat of the covering slots, sliced if the field
        is not byte-aligned — exactly the ``b[12]++b[13]`` /
        ``b[14][7:4]`` shapes of the paper's Fig. 10.
        """
        first = byte_offset + bit_offset // 8
        bit_in_first = bit_offset % 8
        last = byte_offset + (bit_offset + width + 7) // 8  # exclusive
        concat: ast.Expr = self.slot(first)
        for i in range(first + 1, last):
            concat = ast.BinaryExpr(op="++", left=concat, right=self.slot(i))
            concat.type = ast.BitType(width=8 * (i - first + 1))
        total = 8 * (last - first)
        hi = total - 1 - bit_in_first
        lo = hi - width + 1
        if hi == total - 1 and lo == 0:
            return concat
        sliced = ast.SliceExpr(base=concat, hi=hi, lo=lo)
        sliced.type = ast.BitType(width=width)
        return sliced

    def read_field(
        self, base_offset: int, header_type: ast.HeaderType, field: str
    ) -> ast.Expr:
        """Read one header field from the stack."""
        bit_off = 0
        for fname, ftype in header_type.fields:
            if not isinstance(ftype, ast.BitType):
                raise AnalysisError(
                    f"field {header_type.name}.{fname} must be lowered before "
                    f"byte-stack mapping"
                )
            if fname == field:
                return self.read_bits(base_offset, bit_off, ftype.width)
            bit_off += ftype.width
        raise AnalysisError(f"{header_type.name} has no field {field!r}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def extract_assigns(
        self, base_offset: int, header_type: ast.HeaderType, hdr_lvalue: ast.Expr
    ) -> List[ast.AssignStmt]:
        """Copy stack bytes into a header's fields (parser direction)."""
        out: List[ast.AssignStmt] = []
        bit_off = 0
        for fname, ftype in header_type.fields:
            assert isinstance(ftype, ast.BitType)
            lhs = ast.MemberExpr(base=hdr_lvalue.clone(), member=fname)
            lhs.type = ftype
            rhs = self.read_bits(base_offset, bit_off, ftype.width)
            out.append(ast.AssignStmt(lhs=lhs, rhs=rhs))
            bit_off += ftype.width
        return out

    def writeback_assigns(
        self, base_offset: int, header_type: ast.HeaderType, hdr_lvalue: ast.Expr
    ) -> List[ast.AssignStmt]:
        """Copy a header's fields back into stack bytes (deparser direction).

        Each stack byte is assigned the concatenation of the field slices
        covering it; these are the "complex assignment operations" that
        stress per-ALU PHV limits on Tofino (§6.3).
        """
        # Field spans: (bit_start, bit_end, field_name, width)
        spans: List[Tuple[int, int, str, int]] = []
        bit_off = 0
        for fname, ftype in header_type.fields:
            assert isinstance(ftype, ast.BitType)
            spans.append((bit_off, bit_off + ftype.width, fname, ftype.width))
            bit_off += ftype.width
        total_bits = bit_off
        if total_bits % 8 != 0:
            raise AnalysisError(f"header {header_type.name} is not byte aligned")
        out: List[ast.AssignStmt] = []
        for byte_index in range(total_bits // 8):
            lo_bit = 8 * byte_index
            hi_bit = lo_bit + 8
            pieces: List[ast.Expr] = []
            for start, end, fname, width in spans:
                if end <= lo_bit or start >= hi_bit:
                    continue
                field_expr: ast.Expr = ast.MemberExpr(
                    base=hdr_lvalue.clone(), member=fname
                )
                field_expr.type = ast.BitType(width=width)
                cut_lo = max(start, lo_bit)
                cut_hi = min(end, hi_bit)
                if cut_lo > start or cut_hi < end:
                    # Slice indices are MSB-based within the field.
                    hi = width - 1 - (cut_lo - start)
                    lo = width - (cut_hi - start)
                    field_expr = ast.SliceExpr(base=field_expr, hi=hi, lo=lo)
                    field_expr.type = ast.BitType(width=hi - lo + 1)
                pieces.append(field_expr)
            rhs = pieces[0]
            for piece in pieces[1:]:
                width_sum = rhs.type.width + piece.type.width  # type: ignore[union-attr]
                rhs = ast.BinaryExpr(op="++", left=rhs, right=piece)
                rhs.type = ast.BitType(width=width_sum)
            out.append(
                ast.AssignStmt(lhs=self.slot(base_offset + byte_index), rhs=rhs)
            )
        return out

    def shift_assigns(self, region_start: int, delta: int) -> List[ast.AssignStmt]:
        """Move stack bytes ``[region_start, size)`` by ``delta`` bytes.

        ``delta`` < 0 shifts up (header removed: following data moves
        toward the packet start, paper §5.3); ``delta`` > 0 shifts down
        (header inserted).  Copies are ordered so overlapping moves are
        safe within a single action.
        """
        out: List[ast.AssignStmt] = []
        if delta == 0:
            return out
        if delta < 0:
            dst_start = region_start + delta
            count = self.size - region_start
            for i in range(count):
                out.append(
                    ast.AssignStmt(
                        lhs=self.slot(dst_start + i), rhs=self.slot(region_start + i)
                    )
                )
        else:
            count = self.size - region_start - delta
            for i in reversed(range(count)):
                out.append(
                    ast.AssignStmt(
                        lhs=self.slot(region_start + i + delta),
                        rhs=self.slot(region_start + i),
                    )
                )
        return out

    def adjust_len_stmt(self, delta: int) -> ast.AssignStmt:
        """``upa_bs_len = upa_bs_len + delta`` (two's-complement add)."""
        lhs = self.len_expr()
        value = delta % (1 << BS_LEN_WIDTH)
        rhs = ast.BinaryExpr(
            op="+",
            left=self.len_expr(),
            right=ast.IntLit(value=value, width=BS_LEN_WIDTH),
        )
        rhs.type = ast.BitType(width=BS_LEN_WIDTH)
        return ast.AssignStmt(lhs=lhs, rhs=rhs)
