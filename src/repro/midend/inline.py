"""Composition by inlining (paper §5.3, "transfer of execution control").

After homogenization every block is a MAT, so a callee invocation
(``l3_i.apply(p, im, nh, h.eth.etherType)``) can be realized by splicing
the callee's pipeline — parser MAT, control body, deparser MAT — into the
caller at the call site, with:

* the callee's packet view anchored at a **static byte-stack offset**
  (the bytes its callers consumed before invoking it),
* the callee's parameters substituted by the caller's argument
  expressions (µP4's explicit data passing), and
* every callee-local name (headers, metadata, variables, actions,
  tables) renamed under the instance's prefix so modules stay
  encapsulated.

The result is a :class:`ComposedPipeline`: a flat, MAT-only program the
backends partition onto a target and the behavioral model executes.

Monolithic P4 programs flow through :func:`compose_monolithic`, which
skips homogenization and keeps the native parser/deparser — the
comparison baseline used throughout the paper's evaluation (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError, LinkError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import ProgramInfo
from repro.ir.visitor import rewrite_expressions, walk
from repro.midend.analysis import Analyzer, OperationalRegion
from repro.obs.metrics import METRICS
from repro.obs.trace import NULL_TRACER, Tracer
from repro.midend.bytestack import (
    BS_INSTANCE,
    BS_LEN_VAR,
    BS_LEN_WIDTH,
    PARSER_ERR_VAR,
    ByteStack,
)
from repro.midend.deparser_to_mat import MatDeparser, deparser_to_mat
from repro.midend.linker import LinkedProgram, LinkedUnit
from repro.midend.parser_to_mat import PATH_VAR_WIDTH, MatParser, parser_to_mat

PKT_VAR = "upa_pkt"
IM_VAR = "upa_im"


@dataclass
class ComposedPipeline:
    """A composed, homogenized dataplane program (µP4-IR, post-midend)."""

    name: str
    mode: str  # "micro" | "monolithic"
    region: OperationalRegion
    byte_stack: Optional[ByteStack]
    variables: Dict[str, ast.Type] = field(default_factory=dict)
    tables: Dict[str, ast.TableDecl] = field(default_factory=dict)
    actions: Dict[str, ast.ActionDecl] = field(default_factory=dict)
    statements: List[ast.Stmt] = field(default_factory=list)
    # Monolithic-only: the native parser and ordered deparser emit list.
    native_parser: Optional[ast.ParserDecl] = None
    native_emits: Optional[List[ast.Expr]] = None
    # Per-module-instance parser MATs (prefix → MatParser), for reporting.
    parser_mats: Dict[str, MatParser] = field(default_factory=dict)
    deparser_mats: Dict[str, MatDeparser] = field(default_factory=dict)
    # When the main program has user parameters (e.g. a module compiled
    # standalone for orchestration-time invocation), each is bound to a
    # synthetic pipeline variable: param name -> variable name.
    arg_vars: Dict[str, str] = field(default_factory=dict)

    @property
    def byte_stack_size(self) -> int:
        return self.byte_stack.size if self.byte_stack is not None else 0


class Composer:
    """Builds a :class:`ComposedPipeline` from a linked composition."""

    def __init__(
        self,
        linked: LinkedProgram,
        analyzer: Optional[Analyzer] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.linked = linked
        self.tracer = tracer if tracer is not None else NULL_TRACER
        analyzer = analyzer if analyzer is not None else Analyzer(linked)
        self.region = analyzer.analyze()
        self.regions = {u.name: analyzer.analyze(u) for u in linked.units()}
        self.bs = ByteStack(self.region.byte_stack_size)
        self.pipeline = ComposedPipeline(
            name=linked.main.name,
            mode="micro",
            region=self.region,
            byte_stack=self.bs,
        )

    # ------------------------------------------------------------------
    def compose(self) -> ComposedPipeline:
        p = self.pipeline
        p.variables[BS_INSTANCE] = self.bs.header_type()
        p.variables[BS_LEN_VAR] = ast.BitType(width=BS_LEN_WIDTH)
        p.variables[PARSER_ERR_VAR] = ast.BitType(width=8)
        # Bind any user parameters of the main program to synthetic
        # variables the runtime can preset/read (orchestration-time
        # invocation of a standalone module).
        bindings: Dict[str, ast.Expr] = {}
        for param in self.linked.main.program.user_params:
            var_name = f"upa_arg_{param.name}"
            p.variables[var_name] = param.param_type
            p.arg_vars[param.name] = var_name
            bindings[param.name] = _typed_path(var_name, param.param_type)
        p.statements = self._inline_unit(
            self.linked.main, base_offset=0, prefix="main", bindings=bindings
        )
        METRICS.set_gauge("compose.tables", len(p.tables))
        METRICS.set_gauge("compose.actions", len(p.actions))
        METRICS.set_gauge("compose.variables", len(p.variables))
        return p

    # ------------------------------------------------------------------
    def _inline_unit(
        self,
        unit: LinkedUnit,
        base_offset: int,
        prefix: str,
        bindings: Dict[str, ast.Expr],
    ) -> List[ast.Stmt]:
        with self.tracer.span(
            f"compose.inline.{prefix}", program=unit.name, offset=base_offset
        ):
            METRICS.inc("compose.modules_inlined")
            return self._inline_unit_body(unit, base_offset, prefix, bindings)

    def _inline_unit_body(
        self,
        unit: LinkedUnit,
        base_offset: int,
        prefix: str,
        bindings: Dict[str, ast.Expr],
    ) -> List[ast.Stmt]:
        info = unit.program
        prog = info.decl.clone()
        parser = _find_decl(prog, ast.ParserDecl, info.parser.name) if info.parser else None
        control = _find_decl(prog, ast.ControlDecl, info.control.name)
        deparser = (
            _find_decl(prog, ast.ControlDecl, info.deparser.name)
            if info.deparser
            else None
        )

        renames = self._build_renames(info, parser, control, deparser, prefix, bindings)
        for decl in (parser, control, deparser):
            if decl is not None:
                _apply_renames(decl, renames)

        stmts: List[ast.Stmt] = []
        parser_mat: Optional[MatParser] = None
        if parser is not None:
            parser_mat = parser_to_mat(parser, base_offset, self.bs, prefix)
            self._register_mat_parser(parser_mat)
            stmts.append(parser_mat.apply_stmt())

        # Locals: variables get initial-value statements; actions/tables
        # are registered; instances drive recursion.
        instances: Dict[str, ast.InstanceDecl] = {}
        for local in control.locals:
            self._register_local(local, prefix, instances, stmts)
        if parser is not None:
            for local in parser.locals:
                self._register_local(local, prefix, {}, stmts)

        callee_base: Optional[int] = None
        if parser_mat is not None:
            callee_base = parser_mat.const_extract_len
            if callee_base is not None:
                callee_base += base_offset
        else:
            callee_base = base_offset

        body = self._inline_calls(
            control.apply_body, instances, callee_base, prefix, unit
        )
        stmts.extend(body.stmts)

        if deparser is not None and parser_mat is not None:
            deparser_mat = deparser_to_mat(
                deparser, parser_mat.paths, base_offset, self.bs, prefix
            )
            self._register_mat_deparser(deparser_mat)
            stmts.append(deparser_mat.apply_stmt())
        return stmts

    # ------------------------------------------------------------------
    def _register_mat_parser(self, mat: MatParser) -> None:
        p = self.pipeline
        p.tables[mat.table.name] = mat.table
        p.actions.update(mat.actions)
        p.variables[mat.path_var] = ast.BitType(width=PATH_VAR_WIDTH)
        p.parser_mats[mat.prefix] = mat

    def _register_mat_deparser(self, mat: MatDeparser) -> None:
        p = self.pipeline
        p.tables[mat.table.name] = mat.table
        p.actions.update(mat.actions)
        p.deparser_mats[mat.table.name] = mat

    def _register_local(
        self,
        local: ast.Decl,
        prefix: str,
        instances: Dict[str, ast.InstanceDecl],
        stmts: List[ast.Stmt],
    ) -> None:
        p = self.pipeline
        if isinstance(local, ast.VarLocal):
            p.variables[local.name] = local.var_type
            if local.init is not None:
                lhs = ast.PathExpr(name=local.name)
                lhs.type = local.var_type
                stmts.append(ast.AssignStmt(lhs=lhs, rhs=local.init))
        elif isinstance(local, ast.ActionDecl):
            p.actions[local.name] = local
        elif isinstance(local, ast.TableDecl):
            p.tables[local.name] = local
        elif isinstance(local, ast.InstanceDecl):
            if getattr(local, "kind", "module") == "module":
                instances[local.name] = local
            else:
                p.variables[local.name] = _extern_type_of(local)
        elif isinstance(local, ast.ConstDecl):
            pass  # folded by the checker
        else:
            raise AnalysisError(
                f"unsupported local {type(local).__name__} during inlining",
                local.loc,
            )

    # ------------------------------------------------------------------
    def _build_renames(
        self,
        info: ProgramInfo,
        parser: Optional[ast.ParserDecl],
        control: ast.ControlDecl,
        deparser: Optional[ast.ControlDecl],
        prefix: str,
        bindings: Dict[str, ast.Expr],
    ) -> Dict[str, object]:
        """Map every free name in the module to its composed meaning."""
        expr_map: Dict[str, ast.Expr] = {}
        name_map: Dict[str, str] = {}

        hdr_type = None
        meta_type = None
        if info.parser is not None:
            for p in info.parser.params:
                if p.direction == "out" and isinstance(
                    p.param_type, (ast.StructType, ast.HeaderType)
                ):
                    hdr_type = p.param_type
                elif p.direction == "inout" and isinstance(
                    p.param_type, ast.StructType
                ):
                    meta_type = p.param_type

        user_param_names = {p.name for p in info.user_params}
        for decl in (parser, control, deparser):
            if decl is None:
                continue
            for p in decl.params:
                ptype = p.param_type
                if isinstance(ptype, ast.ExternType):
                    if ptype.name == "pkt":
                        expr_map[p.name] = _typed_path(PKT_VAR, ptype)
                    elif ptype.name == "im_t":
                        expr_map[p.name] = _typed_path(IM_VAR, ptype)
                    # extractor/emitter params disappear with the MATs.
                    continue
                if hdr_type is not None and ptype is not None and _same_named(
                    ptype, hdr_type
                ):
                    expr_map[p.name] = _typed_path(f"{prefix}_hdr", ptype)
                    continue
                if meta_type is not None and ptype is not None and _same_named(
                    ptype, meta_type
                ):
                    expr_map[p.name] = _typed_path(f"{prefix}_meta", ptype)
                    continue
                if p.name in user_param_names:
                    bound = bindings.get(p.name)
                    if bound is None:
                        raise LinkError(
                            f"module {info.name!r}: user parameter {p.name!r} "
                            f"was not bound by the caller"
                        )
                    expr_map[p.name] = bound
                    continue
                # Control/deparser-only structs (e.g. a scratch struct).
                expr_map[p.name] = _typed_path(f"{prefix}_{p.name}", ptype)
                self.pipeline.variables[f"{prefix}_{p.name}"] = ptype

        if hdr_type is not None:
            self.pipeline.variables[f"{prefix}_hdr"] = hdr_type
        if meta_type is not None:
            self.pipeline.variables[f"{prefix}_meta"] = meta_type

        # Locals of parser and control.
        for decl in (parser, control):
            if decl is None:
                continue
            for local in decl.locals:
                name_map[local.name] = f"{prefix}_{local.name}"
        # Apply-body variable declarations.
        for node in walk(control.apply_body):
            if isinstance(node, ast.VarDeclStmt):
                name_map[node.name] = f"{prefix}_{node.name}"
        return {"exprs": expr_map, "names": name_map}

    # ------------------------------------------------------------------
    def _inline_calls(
        self,
        stmt: ast.Stmt,
        instances: Dict[str, ast.InstanceDecl],
        callee_base: Optional[int],
        prefix: str,
        unit: LinkedUnit,
    ) -> ast.BlockStmt:
        """Replace module applies inside ``stmt`` with callee pipelines."""

        def transform(s: ast.Stmt) -> ast.Stmt:
            if isinstance(s, ast.BlockStmt):
                s.stmts = [transform(inner) for inner in s.stmts]
                return s
            if isinstance(s, ast.IfStmt):
                s.then_body = transform(s.then_body)
                if s.else_body is not None:
                    s.else_body = transform(s.else_body)
                return s
            if isinstance(s, ast.SwitchStmt):
                for case in s.cases:
                    if case.body is not None:
                        case.body = transform(case.body)
                return s
            if isinstance(s, ast.MethodCallStmt):
                resolved = getattr(s.call, "resolved", None)
                if resolved is not None and resolved[0] == "module":
                    return self._expand_call(
                        s.call, instances, callee_base, prefix, unit
                    )
            return s

        result = transform(stmt)
        if isinstance(result, ast.BlockStmt):
            return result
        return ast.BlockStmt(stmts=[result])

    def _expand_call(
        self,
        call: ast.MethodCallExpr,
        instances: Dict[str, ast.InstanceDecl],
        callee_base: Optional[int],
        prefix: str,
        unit: LinkedUnit,
    ) -> ast.BlockStmt:
        inst: ast.InstanceDecl = call.resolved[1]  # type: ignore[attr-defined]
        if callee_base is None:
            raise AnalysisError(
                f"program {unit.name!r} invokes {inst.target!r} but its "
                f"parser paths extract different byte counts; callee byte-"
                f"stack offsets would not be static",
                call.loc,
            )
        callee = self.linked.resolve(inst.target)
        sig = callee.program.apply_signature()
        if len(call.args) != len(sig):
            raise LinkError(
                f"{inst.target}.apply(): expected {len(sig)} args, got "
                f"{len(call.args)}",
                call.loc,
            )
        bindings: Dict[str, ast.Expr] = {}
        for arg, param in zip(call.args[2:], sig[2:]):
            bindings[param.name] = arg
        # The instance declaration was already renamed under the caller's
        # prefix, so its name is the callee's fully qualified prefix.
        stmts = self._inline_unit(callee, callee_base, inst.name, bindings)
        return ast.BlockStmt(stmts=stmts)


# ======================================================================
# Helpers
# ======================================================================


def _find_decl(prog: ast.ProgramDecl, kind: type, name: str):
    for d in prog.decls:
        if type(d) is kind and d.name == name:
            return d
    raise AnalysisError(f"program {prog.name!r} lost its {name!r} block")


def _typed_path(name: str, ptype: Optional[ast.Type]) -> ast.PathExpr:
    expr = ast.PathExpr(name=name)
    expr.type = ptype
    return expr


def _same_named(a: ast.Type, b: ast.Type) -> bool:
    return (
        isinstance(a, (ast.StructType, ast.HeaderType))
        and isinstance(b, (ast.StructType, ast.HeaderType))
        and a.name == b.name
    )


def _extern_type_of(inst: ast.InstanceDecl) -> ast.Type:
    from repro.frontend.builtins import builtin_types

    ext = builtin_types().get(inst.target)
    if isinstance(ext, ast.ExternType):
        return ext
    raise AnalysisError(f"unknown extern instantiation {inst.target!r}", inst.loc)


def _apply_renames(decl: ast.Decl, renames: Dict[str, object]) -> None:
    """Apply expression substitutions and declaration renames in place."""
    expr_map: Dict[str, ast.Expr] = renames["exprs"]  # type: ignore[assignment]
    name_map: Dict[str, str] = renames["names"]  # type: ignore[assignment]

    def repl(e: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(e, ast.PathExpr):
            if e.name in expr_map:
                return expr_map[e.name].clone()
            if e.name in name_map:
                renamed = ast.PathExpr(name=name_map[e.name])
                renamed.type = e.type
                renamed.decl = e.decl
                return renamed
        return None

    rewrite_expressions(decl, repl)

    # Rename declarations themselves and intra-table action references.
    targets = []
    if isinstance(decl, (ast.ControlDecl, ast.ParserDecl)):
        targets = decl.locals
    for local in targets:
        if local.name in name_map:
            local.original_name = local.name  # type: ignore[attr-defined]
            local.name = name_map[local.name]
        if isinstance(local, ast.TableDecl):
            local.actions = [name_map.get(a, a) for a in local.actions]
            if local.default_action is not None:
                local.default_action = name_map.get(
                    local.default_action, local.default_action
                )
            for entry in local.const_entries:
                entry.action_name = name_map.get(entry.action_name, entry.action_name)
    if isinstance(decl, (ast.ControlDecl,)):
        for node in walk(decl.apply_body):
            if isinstance(node, ast.VarDeclStmt) and node.name in name_map:
                node.name = name_map[node.name]


# ======================================================================
# Public API
# ======================================================================


def compose(
    linked: LinkedProgram,
    analyzer: Optional[Analyzer] = None,
    tracer: Optional[Tracer] = None,
) -> ComposedPipeline:
    """Compose a linked µP4 program into a flat MAT-only pipeline."""
    return Composer(linked, analyzer=analyzer, tracer=tracer).compose()


def compose_monolithic(
    linked: LinkedProgram, analyzer: Optional[Analyzer] = None
) -> ComposedPipeline:
    """Lower a monolithic P4 program without homogenization.

    The native parser and deparser are kept; only renaming to the
    composed namespace is performed.  Used as the baseline for the
    paper's resource-overhead comparisons (Tables 2 and 3).
    """
    if any(linked.main.program.instances):
        raise LinkError(
            f"program {linked.main.name!r} instantiates modules; it is not "
            f"monolithic"
        )
    analyzer = analyzer if analyzer is not None else Analyzer(linked)
    region = analyzer.analyze()
    info = linked.main.program
    prog = info.decl.clone()
    parser = _find_decl(prog, ast.ParserDecl, info.parser.name) if info.parser else None
    control = _find_decl(prog, ast.ControlDecl, info.control.name)
    deparser = (
        _find_decl(prog, ast.ControlDecl, info.deparser.name)
        if info.deparser
        else None
    )
    pipeline = ComposedPipeline(
        name=linked.main.name, mode="monolithic", region=region, byte_stack=None
    )
    composer = Composer.__new__(Composer)
    composer.linked = linked
    composer.pipeline = pipeline
    renames = composer._build_renames(
        info, parser, control, deparser, "main", {}
    )
    for decl in (parser, control, deparser):
        if decl is not None:
            _apply_renames(decl, renames)
    stmts: List[ast.Stmt] = []
    for local in control.locals:
        composer._register_local(local, "main", {}, stmts)
    if parser is not None:
        for local in parser.locals:
            composer._register_local(local, "main", {}, stmts)
    stmts.extend(control.apply_body.stmts)
    pipeline.statements = stmts
    pipeline.native_parser = parser
    if deparser is not None:
        from repro.midend.deparser_to_mat import _emit_sequence

        pipeline.native_emits = _emit_sequence(deparser)
    return pipeline
