"""Operational-region static analysis (paper §5.2, Eqs. 1–4).

For each µP4 program ψ in a linked composition this pass computes:

* ``extract_length`` — El(ψ) = Elp(ψ) + Elc(ψ): the maximum number of
  packet bytes the composed program touches,
* ``max_increase`` — ∆(ψ): the largest possible growth in packet size
  (Eq. 1 over control paths),
* ``max_decrease`` — δ(ψ): the largest possible shrink (Eq. 2, including
  headers extracted but never emitted),
* ``byte_stack_size`` — Bs(ψ) = El(ψ) + ∆(ψ) (Eq. 4),
* ``min_packet_size`` — the smallest packet the program can accept.

Control-path extract lengths follow Eq. 3: a callee parses the packet
region left by its predecessors, so each predecessor's possible shrink
widens the region the byte-stack must cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import ProgramInfo
from repro.ir.cfg import ControlPath, enumerate_control_paths
from repro.ir.parse_graph import ParseGraph, build_parse_graph
from repro.ir.visitor import walk
from repro.midend.linker import LinkedProgram, LinkedUnit
from repro.obs.metrics import METRICS


@dataclass(frozen=True)
class OperationalRegion:
    """The paper's operational region for one program (all byte units)."""

    extract_length: int  # El(ψ)
    parser_extract_length: int  # Elp(ψ)
    control_extract_length: int  # Elc(ψ)
    max_increase: int  # ∆(ψ)
    max_decrease: int  # δ(ψ)
    min_packet_size: int

    @property
    def byte_stack_size(self) -> int:
        """Bs(ψ) = El(ψ) + ∆(ψ) (Eq. 4)."""
        return self.extract_length + self.max_increase


class Analyzer:
    """Recursive operational-region analysis over a linked composition."""

    def __init__(self, linked: LinkedProgram) -> None:
        self.linked = linked
        self._cache: Dict[str, OperationalRegion] = {}

    # ------------------------------------------------------------------
    def analyze(self, unit: Optional[LinkedUnit] = None) -> OperationalRegion:
        unit = unit or self.linked.main
        cached = self._cache.get(unit.name)
        if cached is not None:
            return cached
        region = self._analyze_unit(unit)
        self._cache[unit.name] = region
        METRICS.inc("analysis.units_analyzed")
        if unit.name == self.linked.main.name:
            METRICS.set_gauge("analysis.extract_length_bytes", region.extract_length)
            METRICS.set_gauge("analysis.byte_stack_bytes", region.byte_stack_size)
            METRICS.set_gauge("analysis.min_packet_bytes", region.min_packet_size)
        return region

    # ------------------------------------------------------------------
    def _analyze_unit(self, unit: LinkedUnit) -> OperationalRegion:
        info = unit.program
        if info.parser is not None:
            graph = build_parse_graph(info.parser)
            elp = graph.extract_length
            min_parse = graph.min_extract_length
            unemitted = self._unemitted_extract_size(info, graph)
        else:
            elp = 0
            min_parse = 0
            unemitted = 0

        assert info.control is not None
        paths = enumerate_control_paths(info.control)
        elc = 0
        delta = 0  # ∆(ψ)
        shrink = 0  # δ(ψ)
        min_callee_extra = None  # for min-packet-size
        for path in paths:
            callee_regions = self._callee_regions(unit, path)
            elc = max(elc, self._path_extract_length(callee_regions))
            inc, dec = self._path_size_change(path, callee_regions)
            delta = max(delta, inc)
            shrink = max(shrink, dec + unemitted)
            extra = sum(r.min_packet_size for r in callee_regions)
            if min_callee_extra is None or extra < min_callee_extra:
                min_callee_extra = extra
        if min_callee_extra is None:
            min_callee_extra = 0
        # A path with no callees and no header ops contributes 0 to
        # ∆/δ, but the unemitted-header shrink applies on every path.
        if not paths:
            shrink = unemitted

        return OperationalRegion(
            extract_length=elp + elc,
            parser_extract_length=elp,
            control_extract_length=elc,
            max_increase=delta,
            max_decrease=shrink,
            min_packet_size=min_parse + min_callee_extra,
        )

    # ------------------------------------------------------------------
    def _callee_regions(
        self, unit: LinkedUnit, path: ControlPath
    ) -> List[OperationalRegion]:
        regions: List[OperationalRegion] = []
        for call in path.module_applies():
            inst: ast.InstanceDecl = call.resolved[1]  # type: ignore[attr-defined]
            callee = self.linked.resolve(inst.target)
            regions.append(self.analyze(callee))
        return regions

    @staticmethod
    def _path_extract_length(callee_regions: List[OperationalRegion]) -> int:
        """Eq. 3: max over callees of (Σ predecessors' δ) + El(callee)."""
        best = 0
        shrink_before = 0
        for region in callee_regions:
            best = max(best, shrink_before + region.extract_length)
            shrink_before += region.max_decrease
        return best

    @staticmethod
    def _path_size_change(
        path: ControlPath, callee_regions: List[OperationalRegion]
    ) -> tuple:
        """Eqs. 1 and 2: (iψ(x), dψ(x)) for one control path."""
        valid: Set[str] = set()
        invalid: Set[str] = set()
        inc = 0
        dec = 0
        for op, htype, lvalue in path.header_ops():
            if not isinstance(htype, ast.HeaderType):
                raise AnalysisError("setValid on a non-header value", lvalue.loc)
            key = _lvalue_key(lvalue)
            if op == "setValid" and key not in valid:
                valid.add(key)
                inc += htype.byte_width
            elif op == "setInvalid" and key not in invalid:
                invalid.add(key)
                dec += htype.byte_width
        inc += sum(r.max_increase for r in callee_regions)
        dec += sum(r.max_decrease for r in callee_regions)
        return inc, dec

    # ------------------------------------------------------------------
    def _unemitted_extract_size(self, info: ProgramInfo, graph: ParseGraph) -> int:
        """Bytes of headers the parser may extract but the deparser never
        emits — these shorten the packet on every path (§5.2)."""
        emitted = self._emitted_headers(info)
        best = 0
        for path in graph.paths():
            total = 0
            for op in path.extracts:
                if _normalize_header(op.lvalue, info, role="parser") not in emitted:
                    total += op.size
            best = max(best, total)
        return best

    def _emitted_headers(self, info: ProgramInfo) -> Set[str]:
        emitted: Set[str] = set()
        if info.deparser is None:
            return emitted
        for node in walk(info.deparser.apply_body):
            if isinstance(node, ast.MethodCallExpr):
                resolved = getattr(node, "resolved", None)
                if resolved is not None and resolved[:2] == ("extern", "emitter"):
                    emitted.add(
                        _normalize_header(node.args[1], info, role="deparser")
                    )
        return emitted


def _lvalue_key(expr: ast.Expr) -> str:
    if isinstance(expr, ast.PathExpr):
        return expr.name
    if isinstance(expr, ast.MemberExpr):
        return f"{_lvalue_key(expr.base)}.{expr.member}"
    if isinstance(expr, ast.IndexExpr):
        idx = expr.index.value if isinstance(expr.index, ast.IntLit) else "?"
        return f"{_lvalue_key(expr.base)}[{idx}]"
    return "<expr>"


def _normalize_header(expr: ast.Expr, info: ProgramInfo, role: str) -> str:
    """Key a header lvalue so parser and deparser names line up.

    The parser's ``out hdr_t h`` and the deparser's ``in hdr_t h`` may use
    different parameter names; both roots are rewritten to ``<hdr>``.
    """
    key = _lvalue_key(expr)
    root = key.split(".", 1)[0]
    params = (
        info.parser.params
        if role == "parser" and info.parser is not None
        else (info.deparser.params if info.deparser is not None else [])
    )
    for p in params:
        if p.name == root and isinstance(
            p.param_type, (ast.StructType, ast.HeaderType)
        ):
            return key.replace(root, "<hdr>", 1)
    return key


def analyze(linked: LinkedProgram) -> OperationalRegion:
    """Analyze the main program of a linked composition."""
    return Analyzer(linked).analyze()


def analyze_all(linked: LinkedProgram) -> Dict[str, OperationalRegion]:
    """Analyze every reachable unit; keys are program names."""
    analyzer = Analyzer(linked)
    return {unit.name: analyzer.analyze(unit) for unit in linked.units()}
