"""Packet slices and the packet-processing schedule (§5.4, Appendix C).

For programs that process several packet instances at once (compile-time
replication via ``pkt.copy_from``), µP4C:

1. computes a *packet slice* per instance — the executable subset of
   the PDG affecting that instance's value in its access range (a
   backward traversal from the instance's exit points that follows
   scalar data and control dependences but does not cross into other
   instances' packet lineage),
2. extracts a *thread* per instance by dropping method calls that
   process other instances (their results arrive through inter-thread
   dependences),
3. classifies statements shared by several slices as *CPS nodes*,
4. builds the Packet-Processing Schedule (PPS) graph and checks it is
   serializable: a strongly connected component may contain at most one
   thread (a directed cycle through two threads means the target would
   have to process two copies of the packet simultaneously — rejected,
   exactly as the appendix prescribes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.midend.pdg import Pdg, PdgNode, build_pdg


@dataclass
class PacketSlice:
    """Executable PDG subset affecting one pkt instance."""

    instance: str
    node_ids: Set[int] = field(default_factory=set)


@dataclass
class Thread:
    """Per-instance processing thread (PPS node)."""

    instance: str
    node_ids: Set[int] = field(default_factory=set)


@dataclass
class PpsGraph:
    """The packet-processing schedule."""

    threads: Dict[str, Thread] = field(default_factory=dict)
    cps_nodes: Set[int] = field(default_factory=set)
    # (src thread-or-"cps:<id>", dst ...) dependency edges.
    edges: List[tuple] = field(default_factory=list)

    def thread_order(self) -> List[str]:
        """A topological order of threads (serial execution schedule)."""
        names = list(self.threads)
        deps: Dict[str, Set[str]] = {n: set() for n in names}
        for src, dst in self.edges:
            if src in deps and dst in deps and src != dst:
                deps[dst].add(src)
        order: List[str] = []
        remaining = set(names)
        while remaining:
            ready = sorted(
                n for n in remaining if not (deps[n] & remaining)
            )
            if not ready:
                raise AnalysisError("PPS has an unresolvable thread cycle")
            # Preserve program order among simultaneously ready threads.
            ready.sort(key=names.index)
            current = ready[0]
            order.append(current)
            remaining.discard(current)
        return order


# ----------------------------------------------------------------------
# Slices
# ----------------------------------------------------------------------


def compute_slices(pdg: Pdg, instances: List[str]) -> Dict[str, PacketSlice]:
    """One packet slice per pkt instance (Fig. 13)."""
    slices: Dict[str, PacketSlice] = {}
    for instance in instances:
        slices[instance] = _slice_for(pdg, instance, set(instances))
    return slices


def _slice_for(pdg: Pdg, instance: str, all_instances: Set[str]) -> PacketSlice:
    other_instances = all_instances - {instance}
    # Seeds: exit points of this instance plus every node touching it.
    seeds = [
        n.id
        for n in pdg.nodes
        if (n.is_exit and n.exit_instance == instance)
        or instance in (n.pkt_uses | n.pkt_defs)
    ]
    visited: Set[int] = set()
    work = list(seeds)
    while work:
        node_id = work.pop()
        if node_id in visited:
            continue
        visited.add(node_id)
        for edge in pdg.predecessors(node_id):
            if edge.var in other_instances:
                # Do not cross into another instance's packet lineage —
                # that's an inter-thread dependency, not part of this
                # slice (Fig. 13: slice 1 includes test.apply but not
                # pt.copy_from).
                continue
            work.append(edge.src)
    return PacketSlice(instance=instance, node_ids=visited)


# ----------------------------------------------------------------------
# Threads + PPS
# ----------------------------------------------------------------------


def build_pps(pdg: Pdg, slices: Dict[str, PacketSlice]) -> PpsGraph:
    """Extract threads, classify CPS nodes, build and check the PPS."""
    pps = PpsGraph()
    membership: Dict[int, List[str]] = {}
    for instance, pslice in slices.items():
        for node_id in pslice.node_ids:
            membership.setdefault(node_id, []).append(instance)

    owner: Dict[int, str] = {}  # node -> thread name or "" for CPS
    for node in pdg.nodes:
        owners = membership.get(node.id, [])
        touched = node.pkt_uses | node.pkt_defs
        if touched:
            # A method call processing instance X belongs to X's thread
            # even if other slices include it.
            if len(touched) == 1:
                owner[node.id] = next(iter(touched))
            else:
                # e.g. pm.copy_from(p): the *defined* instance owns it.
                defs = node.pkt_defs
                owner[node.id] = next(iter(defs)) if defs else sorted(touched)[0]
        elif len(owners) == 1:
            owner[node.id] = owners[0]
        elif len(owners) > 1:
            owner[node.id] = ""  # CPS: shared computation
        else:
            owner[node.id] = ""  # unrelated statement: schedule freely

    for instance in slices:
        pps.threads[instance] = Thread(instance=instance)
    for node_id, name in owner.items():
        if name:
            pps.threads.setdefault(name, Thread(instance=name))
            pps.threads[name].node_ids.add(node_id)
        else:
            pps.cps_nodes.add(node_id)

    # Dependency edges between PPS nodes.
    def pps_name(node_id: int) -> str:
        name = owner.get(node_id, "")
        return name if name else f"cps:{node_id}"

    seen: Set[tuple] = set()
    for edge in pdg.edges:
        src, dst = pps_name(edge.src), pps_name(edge.dst)
        if src != dst and (src, dst) not in seen:
            seen.add((src, dst))
            pps.edges.append((src, dst))

    _check_serializable(pps)
    return pps


def _check_serializable(pps: PpsGraph) -> None:
    """Reject PPS graphs whose SCCs contain more than one thread."""
    names = list(pps.threads) + [f"cps:{i}" for i in pps.cps_nodes]
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    adjacency: Dict[str, List[str]] = {n: [] for n in names}
    for src, dst in pps.edges:
        if src in adjacency and dst in adjacency:
            adjacency[src].append(dst)

    sccs: List[List[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack[v] = True
        for w in adjacency[v]:
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif on_stack.get(w):
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component: List[str] = []
            while True:
                w = stack.pop()
                on_stack[w] = False
                component.append(w)
                if w == v:
                    break
            sccs.append(component)

    for name in names:
        if name not in index:
            strongconnect(name)

    for component in sccs:
        thread_members = [n for n in component if not n.startswith("cps:")]
        if len(thread_members) > 1:
            raise AnalysisError(
                "PPS is not serializable: packet threads "
                f"{thread_members} form a dependency cycle; the target "
                "cannot process multiple copies of a packet simultaneously"
            )


# ----------------------------------------------------------------------
# Public entry
# ----------------------------------------------------------------------


@dataclass
class ReplicationPlan:
    """Everything §5.4 computes for one orchestration control."""

    pdg: Pdg
    slices: Dict[str, PacketSlice]
    pps: PpsGraph

    def schedule(self) -> List[str]:
        return self.pps.thread_order()


def plan_replication(control: ast.ControlDecl) -> ReplicationPlan:
    """Compute slices, threads and the PPS for an orchestration control."""
    pdg = build_pdg(control)
    pkt_instances = sorted(
        {n for node in pdg.nodes for n in (node.pkt_uses | node.pkt_defs)}
    )
    slices = compute_slices(pdg, pkt_instances)
    pps = build_pps(pdg, slices)
    return ReplicationPlan(pdg=pdg, slices=slices, pps=pps)
