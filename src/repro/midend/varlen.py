"""Variable-length header lowering (paper Appendix C).

µP4 constrains ``varbit`` fields to a whole number of bytes at runtime.
µP4C splits a header with fixed and variable parts into multiple types
and converts each two-argument ``extract`` into a sub-parser whose
select enumerates every possible byte count up to the maximum — "if a
variable-length field has maximum size of 40 bytes, µP4C creates 40
states extracting different number of bytes".

Concretely, for ``header opt_h { bit<8> len; varbit<320> options; }``:

* ``opt_h`` is rewritten to hold only the fixed fields,
* variant headers ``opt_h_var1 .. opt_h_var40`` are synthesized (one
  per possible byte count, each a single ``bit<8k>`` field),
* the struct instance ``h.opt`` gains siblings ``h.opt_var1``…,
* ``ex.extract(p, h.opt, size)`` becomes: extract the fixed part, then
  ``select (size)`` into one synthesized state per byte count, each
  extracting its variant and continuing to the original transition,
* deparser ``emit(p, h.opt)`` additionally emits every variant (only
  the valid one lands on the wire).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Module, TypeChecker

MAX_VARLEN_BYTES = 64


def _variant_name(type_name: str, nbytes: int) -> str:
    return f"{type_name}_var{nbytes}"


def _find_varlen_types(source: ast.SourceProgram) -> Dict[str, int]:
    """header type name -> max varbit bytes, for headers with varbits."""
    out: Dict[str, int] = {}
    for decl in source.decls:
        if isinstance(decl, ast.HeaderDecl):
            varbits = [
                (i, f)
                for i, (_, f) in enumerate(decl.fields)
                if isinstance(f, ast.VarBitType)
            ]
            if not varbits:
                continue
            if len(varbits) > 1:
                raise AnalysisError(
                    f"header {decl.name!r} has multiple varbit fields", decl.loc
                )
            index, vtype = varbits[0]
            if index != len(decl.fields) - 1:
                raise AnalysisError(
                    f"varbit field of {decl.name!r} must be last", decl.loc
                )
            nbytes = vtype.max_width // 8
            if nbytes > MAX_VARLEN_BYTES:
                raise AnalysisError(
                    f"varbit of {decl.name!r} enumerates {nbytes} byte counts; "
                    f"limit is {MAX_VARLEN_BYTES}",
                    decl.loc,
                )
            out[decl.name] = nbytes
    return out


def has_varlen_headers(source: ast.SourceProgram) -> bool:
    return bool(_find_varlen_types(source))


def lower_varlen_headers(module: Module) -> Module:
    """Lower all varbit headers; returns a freshly checked module."""
    varlen = _find_varlen_types(module.source)
    if not varlen:
        return module
    source = module.source.clone()

    # 1. Rewrite the header declarations and synthesize variants.
    new_decls: List[ast.Decl] = []
    for decl in source.decls:
        if isinstance(decl, ast.HeaderDecl) and decl.name in varlen:
            fixed = [
                (n, t) for n, t in decl.fields if not isinstance(t, ast.VarBitType)
            ]
            if fixed:
                decl.fields = fixed
                new_decls.append(decl)
            else:
                # Pure-varbit header: keep a 0-field marker out of the
                # program; variants carry everything.
                decl.fields = []
                new_decls.append(decl)
            for k in range(1, varlen[decl.name] + 1):
                new_decls.append(
                    ast.HeaderDecl(
                        name=_variant_name(decl.name, k),
                        fields=[("data", ast.BitType(width=8 * k))],
                    )
                )
        else:
            new_decls.append(decl)
    source.decls = new_decls

    # 2. Add variant fields to structs holding varlen headers.
    instances: Dict[str, Tuple[str, int]] = {}  # struct field -> (type, n)
    for decl in source.decls:
        if isinstance(decl, ast.StructDecl):
            out_fields: List[Tuple[str, ast.Type]] = []
            for fname, ftype in decl.fields:
                out_fields.append((fname, ftype))
                tname = getattr(ftype, "name", None)
                if tname in varlen:
                    instances[fname] = (tname, varlen[tname])
                    for k in range(1, varlen[tname] + 1):
                        out_fields.append(
                            (
                                f"{fname}_var{k}",
                                ast.TypeName(name=_variant_name(tname, k)),
                            )
                        )
            decl.fields = out_fields

    # 3. Rewrite parsers and deparsers.
    for decl in source.decls:
        _rewrite_decl(decl, instances)

    return TypeChecker(source, module.name).check()


def _rewrite_decl(decl: ast.Decl, instances: Dict[str, Tuple[str, int]]) -> None:
    if isinstance(decl, ast.ProgramDecl):
        for inner in decl.decls:
            _rewrite_decl(inner, instances)
    elif isinstance(decl, ast.ParserDecl):
        _rewrite_parser(decl, instances)
    elif isinstance(decl, ast.ControlDecl):
        _rewrite_emits(decl, instances)


def _varlen_extract(stmt: ast.Stmt, instances) -> Optional[Tuple[ast.MethodCallStmt, str, int, ast.Expr]]:
    if not isinstance(stmt, ast.MethodCallStmt):
        return None
    call = stmt.call
    if not (
        isinstance(call.target, ast.MemberExpr)
        and call.target.member == "extract"
        and len(call.args) == 3
    ):
        return None
    lvalue = call.args[1]
    if isinstance(lvalue, ast.MemberExpr) and lvalue.member in instances:
        tname, nbytes = instances[lvalue.member]
        return stmt, lvalue.member, nbytes, call.args[2]
    return None


def _rewrite_parser(parser: ast.ParserDecl, instances) -> None:
    new_states: List[ast.ParserState] = []
    for state in parser.states:
        hit = None
        for index, stmt in enumerate(state.stmts):
            hit = _varlen_extract(stmt, instances)
            if hit is not None:
                break
        if hit is None:
            new_states.append(state)
            continue
        stmt, fname, nbytes, size_expr = hit
        if index != len(state.stmts) - 1:
            raise AnalysisError(
                "variable-length extract must be the state's last statement",
                stmt.loc,
            )
        base = stmt.call.args[1].base  # the struct instance expr
        extractor = stmt.call.target.base  # the extractor instance

        # Head state: fixed part + select on the size expression.
        head = ast.ParserState(loc=state.loc, name=state.name)
        head.stmts = list(state.stmts[:index])
        head.stmts.append(_extract_stmt(extractor, stmt.call.args[0], base, fname))
        cont_name = f"{state.name}_varlen_done"
        cases: List[Tuple[List[ast.Expr], str]] = [
            ([ast.IntLit(value=0)], cont_name)
        ]
        for k in range(1, nbytes + 1):
            var_state = f"{state.name}_var{k}"
            cases.append(([ast.IntLit(value=8 * k)], var_state))
            vs = ast.ParserState(name=var_state)
            vs.stmts = [
                _extract_stmt(
                    extractor, stmt.call.args[0], base, f"{fname}_var{k}"
                )
            ]
            vs.direct_next = cont_name
            new_states.append(vs)
        head.select_exprs = [size_expr]
        head.select_cases = cases
        new_states.insert(len(new_states) - nbytes, head)

        # Continuation state: the original transition.
        cont = ast.ParserState(name=cont_name)
        cont.direct_next = state.direct_next
        cont.select_exprs = state.select_exprs
        cont.select_cases = state.select_cases
        new_states.append(cont)
    parser.states = new_states


def _extract_stmt(extractor: ast.Expr, pkt: ast.Expr, base: ast.Expr, member: str) -> ast.Stmt:
    call = ast.MethodCallExpr(
        target=ast.MemberExpr(base=extractor.clone(), member="extract"),
        args=[pkt.clone(), ast.MemberExpr(base=base.clone(), member=member)],
    )
    return ast.MethodCallStmt(call=call)


def _rewrite_emits(control: ast.ControlDecl, instances) -> None:
    """Expand ``emit(p, h.X)`` to emit the fixed part plus variants."""
    new_stmts: List[ast.Stmt] = []
    for stmt in control.apply_body.stmts:
        new_stmts.append(stmt)
        if not isinstance(stmt, ast.MethodCallStmt):
            continue
        call = stmt.call
        if not (
            isinstance(call.target, ast.MemberExpr) and call.target.member == "emit"
        ):
            continue
        if len(call.args) != 2:
            continue
        lvalue = call.args[1]
        if isinstance(lvalue, ast.MemberExpr) and lvalue.member in instances:
            _, nbytes = instances[lvalue.member]
            for k in range(1, nbytes + 1):
                new_stmts.append(
                    ast.MethodCallStmt(
                        call=ast.MethodCallExpr(
                            target=call.target.clone(),
                            args=[
                                call.args[0].clone(),
                                ast.MemberExpr(
                                    base=lvalue.base.clone(),
                                    member=f"{lvalue.member}_var{k}",
                                ),
                            ],
                        )
                    )
                )
    control.apply_body.stmts = new_stmts
