"""µP4C midend: linking, static analysis, homogenization, slicing.

The midend is target-agnostic (paper §5.1).  Its passes, in pipeline
order:

1. :mod:`~repro.midend.hdr_stack` / :mod:`~repro.midend.varlen` —
   lower header stacks and variable-length headers (Appendix C).
2. :mod:`~repro.midend.linker` — resolve module instantiations across
   compiled modules and reject recursive composition.
3. :mod:`~repro.midend.analysis` — operational-region static analysis
   (extract-length, ∆/δ, byte-stack size, min-packet-size; §5.2).
4. :mod:`~repro.midend.parser_to_mat` / :mod:`~repro.midend.deparser_to_mat`
   — homogenize (de)parsers into MAT control blocks (§5.3).
5. :mod:`~repro.midend.inline` — compose: inline callee pipelines into
   the caller at each ``apply()`` site.
6. :mod:`~repro.midend.pdg` / :mod:`~repro.midend.slicing` — packet
   slices and the packet-processing schedule for replication (§5.4).
"""

from repro.midend.linker import LinkedProgram, link_modules
from repro.midend.analysis import OperationalRegion, analyze

__all__ = ["LinkedProgram", "link_modules", "OperationalRegion", "analyze"]
