"""Parser → MAT homogenization (paper §5.3, Fig. 10).

Each parser is transformed into one match-action table over the byte
stack:

* **static analysis** enumerates the start→accept paths (Fig. 10b),
* each path's select conditions are rewritten so header-field subjects
  become byte-stack reads at their evaluated offsets (``b[12]++b[13]``),
* the table key is the union of per-path subjects (ternary) plus a
  packet-length guard over ``upa_bs_len`` (range match) standing in for
  the paper's last-byte validity test,
* one action per path copies the stack bytes into the user's header
  fields, marks those headers valid, records which path matched in a
  per-module ``<prefix>_path`` register, and replays the path's forward-
  substituted assignments,
* the default action flags a parser error (``set_parser_error``).

Entries are installed in DFS path order, which matches P4's first-match
select semantics for overlapping keysets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.ir.parse_graph import ParsePath, build_parse_graph
from repro.ir.printer import expr_text
from repro.ir.visitor import rewrite_expressions
from repro.midend.bytestack import BS_LEN_WIDTH, PARSER_ERR_VAR, ByteStack

PATH_VAR_WIDTH = 8
PATH_ERROR_ID = 0  # <prefix>_path value when no path matched


@dataclass
class MatParser:
    """The synthesized parser MAT for one module instance."""

    table: ast.TableDecl
    actions: Dict[str, ast.ActionDecl]
    path_var: str
    paths: List[ParsePath]
    base_offset: int
    prefix: str

    @property
    def const_extract_len(self) -> Optional[int]:
        """Extract length if identical on every path, else ``None``."""
        lengths = {p.extract_len for p in self.paths}
        if len(lengths) == 1:
            return lengths.pop()
        return None

    def apply_stmt(self) -> ast.MethodCallStmt:
        target = ast.MemberExpr(
            base=ast.PathExpr(name=self.table.name), member="apply"
        )
        call = ast.MethodCallExpr(target=target)
        call.resolved = ("table", self.table)  # type: ignore[attr-defined]
        return ast.MethodCallStmt(call=call)


def _int_lit(value: int, width: int) -> ast.IntLit:
    lit = ast.IntLit(value=value, width=width)
    lit.type = ast.BitType(width=width)
    return lit


def _setvalid_stmt(hdr_lvalue: ast.Expr) -> ast.MethodCallStmt:
    target = ast.MemberExpr(base=hdr_lvalue.clone(), member="setValid")
    call = ast.MethodCallExpr(target=target)
    call.resolved = ("header_op", "setValid")  # type: ignore[attr-defined]
    return ast.MethodCallStmt(call=call)


def _map_subject_to_stack(
    subject: ast.Expr,
    path: ParsePath,
    base_offset: int,
    bs: ByteStack,
) -> ast.Expr:
    """Rewrite extracted-header field references to byte-stack reads."""
    extract_offsets: Dict[str, Tuple[int, ast.HeaderType]] = {}
    for op in path.extracts:
        extract_offsets[expr_text(op.lvalue)] = (op.offset, op.header_type)

    def repl(e: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(e, ast.MemberExpr):
            base_text = expr_text(e.base)
            hit = extract_offsets.get(base_text)
            if hit is not None:
                offset, htype = hit
                if htype.field_type(e.member) is None:
                    return None
                return bs.read_field(base_offset + offset, htype, e.member)
        return None

    return rewrite_expressions(subject.clone(), repl)  # type: ignore[return-value]


def parser_to_mat(
    parser: ast.ParserDecl,
    base_offset: int,
    bs: ByteStack,
    prefix: str,
) -> MatParser:
    """Transform ``parser`` into a MAT reading the byte stack.

    ``base_offset`` is the stack position of the module's packet view
    (the bytes consumed by its callers); ``prefix`` namespaces the
    synthesized table, actions and path register.
    """
    graph = build_parse_graph(parser)
    paths = graph.paths()
    if not paths:
        raise AnalysisError(
            f"parser {parser.name!r} has no accepting path", parser.loc
        )
    path_var = f"{prefix}_path"

    # ------------------------------------------------------------------
    # Key synthesis: the bs_len guard plus the union of mapped subjects.
    # ------------------------------------------------------------------
    key_order: List[str] = []
    key_exprs: Dict[str, ast.Expr] = {}
    per_path_keysets: List[Dict[str, ast.Expr]] = []
    for path in paths:
        keysets: Dict[str, ast.Expr] = {}
        for cond in path.conditions:
            mapped = _map_subject_to_stack(cond.subject, path, base_offset, bs)
            text = expr_text(mapped)
            if text not in key_exprs:
                key_exprs[text] = mapped
                key_order.append(text)
            if text in keysets:
                # Same subject constrained twice on one path: keep the
                # later (more specific) constraint.
                pass
            keysets[text] = cond.keyset
        per_path_keysets.append(keysets)

    keys: List[ast.KeyElement] = [
        ast.KeyElement(expr=bs.len_expr(), match_kind="range")
    ]
    for text in key_order:
        keys.append(ast.KeyElement(expr=key_exprs[text], match_kind="ternary"))

    # ------------------------------------------------------------------
    # One action + one entry per path.
    # ------------------------------------------------------------------
    actions: Dict[str, ast.ActionDecl] = {}
    entries: List[ast.TableEntry] = []
    for index, path in enumerate(paths):
        action_name = f"cp_{prefix}_{path.name()}_{index + 1}"
        stmts: List[ast.Stmt] = [
            ast.AssignStmt(
                lhs=_path_lvalue(path_var),
                rhs=_int_lit(index + 1, PATH_VAR_WIDTH),
            )
        ]
        for op in path.extracts:
            stmts.append(_setvalid_stmt(op.lvalue))
            stmts.extend(
                bs.extract_assigns(
                    base_offset + op.offset, op.header_type, op.lvalue
                )
            )
        stmts.extend(a.clone() for a in path.assigns)
        actions[action_name] = ast.ActionDecl(
            name=action_name, body=ast.BlockStmt(stmts=stmts)
        )

        need = base_offset + path.extract_len
        length_keyset = ast.RangeExpr(
            lo=_int_lit(need, BS_LEN_WIDTH),
            hi=_int_lit((1 << BS_LEN_WIDTH) - 1, BS_LEN_WIDTH),
        )
        keysets: List[ast.Expr] = [length_keyset]
        path_map = per_path_keysets[index]
        for text in key_order:
            keysets.append(path_map.get(text, ast.DefaultExpr()).clone())
        entries.append(
            ast.TableEntry(
                keysets=keysets, action_name=action_name, action_args=[]
            )
        )

    # ------------------------------------------------------------------
    # Default action: set_parser_error.
    # ------------------------------------------------------------------
    err_name = f"set_parser_error_{prefix}"
    err_var = ast.PathExpr(name=PARSER_ERR_VAR)
    err_var.type = ast.BitType(width=8)
    actions[err_name] = ast.ActionDecl(
        name=err_name,
        body=ast.BlockStmt(
            stmts=[
                ast.AssignStmt(lhs=err_var, rhs=_int_lit(1, 8)),
                ast.AssignStmt(
                    lhs=_path_lvalue(path_var),
                    rhs=_int_lit(PATH_ERROR_ID, PATH_VAR_WIDTH),
                ),
            ]
        ),
    )

    table = ast.TableDecl(
        name=f"{prefix}_parser_tbl",
        keys=keys,
        actions=list(actions),
        default_action=err_name,
        const_entries=entries,
    )
    return MatParser(
        table=table,
        actions=actions,
        path_var=path_var,
        paths=paths,
        base_offset=base_offset,
        prefix=prefix,
    )


def _path_lvalue(path_var: str) -> ast.Expr:
    expr = ast.PathExpr(name=path_var)
    expr.type = ast.BitType(width=PATH_VAR_WIDTH)
    return expr
