"""The composition catalog: Table 1 of the paper.

Each composed program P1–P7 is built from the Ethernet main module plus
an L3 dispatch variant and the leaf modules it invokes.  The paper's
Table 1 marks which of the nine library modules participate in each
program; :data:`MODULE_MATRIX` reproduces that matrix and
:func:`composition_matrix` renders it.

``build_pipeline`` compiles and composes the µP4 version;
``build_monolithic`` compiles the hand-written monolithic equivalent
from ``monolithic/<name>.p4`` (the baseline of Tables 2 and 3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CompileError
from repro.lib.loader import compile_library_module
from repro.midend.inline import ComposedPipeline, compose, compose_monolithic
from repro.midend.linker import LinkedProgram, link_modules

# Composition recipes: main module first, then libraries.
COMPOSITIONS: Dict[str, List[str]] = {
    "P1": ["eth", "l3_acl", "acl", "ipv4", "ipv6"],
    "P2": ["eth", "l3_mpls", "mpls", "ipv4", "ipv6"],
    "P3": ["eth", "l3_nat", "nat", "ipv4", "ipv6"],
    "P4": ["eth", "l3_v4v6", "ipv4", "ipv6"],
    "P5": ["eth", "l3_nptv6", "nptv6", "ipv4", "ipv6"],
    "P6": ["eth", "l3_srv4", "srv4", "ipv4", "ipv6"],
    "P7": ["eth", "l3_srv6", "srv6", "ipv4", "ipv6"],
}

PROGRAMS = sorted(COMPOSITIONS)

# Extension compositions beyond the paper's Table 1 (same machinery,
# not part of the reproduced tables).
EXTRA_COMPOSITIONS: Dict[str, List[str]] = {
    "P8": ["eth", "l3_vlan", "vlan", "ipv4", "ipv6"],
}

# Table 1: which library modules each composed program uses.
_FEATURES: Dict[str, List[str]] = {
    "P1": ["ACL", "Eth", "IPv4", "IPv6"],
    "P2": ["Eth", "IPv4", "IPv6", "MPLS"],
    "P3": ["Eth", "IPv4", "IPv6", "NAT"],
    "P4": ["Eth", "IPv4", "IPv6"],
    "P5": ["Eth", "IPv4", "IPv6", "NPTv6"],
    "P6": ["Eth", "IPv4", "IPv6", "SRv4"],
    "P7": ["Eth", "IPv4", "IPv6", "SRv6"],
}

MODULES = ["ACL", "Eth", "IPv4", "IPv6", "MPLS", "NAT", "NPTv6", "SRv4", "SRv6"]

MODULE_MATRIX: Dict[str, Dict[str, bool]] = {
    module: {prog: module in _FEATURES[prog] for prog in PROGRAMS}
    for module in MODULES
}


def link_composition(name: str) -> LinkedProgram:
    """Link the modules of composition ``name`` (P1–P7, extensions)."""
    recipe = COMPOSITIONS.get(name) or EXTRA_COMPOSITIONS.get(name)
    if recipe is None:
        known = ", ".join([*PROGRAMS, *sorted(EXTRA_COMPOSITIONS)])
        raise CompileError(f"unknown composition {name!r}; known: {known}")
    main = compile_library_module(recipe[0])
    libs = [compile_library_module(m) for m in recipe[1:]]
    return link_modules(main, libs)


def build_pipeline(
    name: str, optimize: bool = False, tracer=None
) -> ComposedPipeline:
    """Compose the µP4 version of program ``name``.

    ``optimize`` applies the §8.1 trivial-MAT elision pass; ``tracer``
    (a :class:`repro.obs.Tracer`) records inlining spans when enabled.
    """
    composed = compose(link_composition(name), tracer=tracer)
    if optimize:
        from repro.midend.optimize import elide_trivial_mats

        elide_trivial_mats(composed)
    return composed


def build_monolithic(name: str) -> ComposedPipeline:
    """Compile the monolithic P4 equivalent of program ``name``."""
    if name not in COMPOSITIONS and name not in EXTRA_COMPOSITIONS:
        raise CompileError(
            f"unknown composition {name!r}; known: {', '.join(PROGRAMS)}"
        )
    module = compile_library_module(name.lower(), kind="monolithic")
    return compose_monolithic(link_modules(module, []))


def composition_matrix() -> str:
    """Render Table 1 as text."""
    width = max(len(m) for m in MODULES) + 2
    header = " " * width + "  ".join(PROGRAMS)
    lines = [header]
    for module in MODULES:
        row = module.ljust(width)
        row += "  ".join(
            "✓ " if MODULE_MATRIX[module][prog] else ". " for prog in PROGRAMS
        )
        lines.append(row)
    return "\n".join(lines)
