"""The µP4 module library and composed programs (paper Table 1).

* ``modules/*.up4`` — the nine packet-processing modules (ACL, Eth,
  IPv4, IPv6, MPLS, NAT, NPTv6, SRv4, SRv6) plus the L3 dispatch
  variants that glue them together per composition.
* ``monolithic/*.p4`` — equivalent monolithic programs, the baselines
  for the paper's resource comparisons (Tables 2 and 3).
* :mod:`~repro.lib.loader` — source loading and per-module compilation.
* :mod:`~repro.lib.catalog` — the P1–P7 composition matrix and builders.
"""

from repro.lib.catalog import (
    COMPOSITIONS,
    MODULE_MATRIX,
    PROGRAMS,
    build_monolithic,
    build_pipeline,
    composition_matrix,
)
from repro.lib.loader import load_module_source, compile_library_module

__all__ = [
    "COMPOSITIONS",
    "MODULE_MATRIX",
    "PROGRAMS",
    "build_pipeline",
    "build_monolithic",
    "composition_matrix",
    "load_module_source",
    "compile_library_module",
]
