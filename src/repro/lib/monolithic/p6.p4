// Monolithic equivalent of composition P6: Ethernet + IPv4 + IPv6 +
// SRv4 (IP-in-IP segment routing).
//
// Without the byte-stack re-parse that the modular version gets for
// free, the monolithic program must shuffle headers explicitly: encap
// copies the current IPv4 header into the inner slot and overwrites
// the outer-facing slot; decap copies the inner header up.  This is
// exactly the entanglement the paper's §2 complains about.

header eth_h  { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header ipv4_h {
  bit<4>  version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8>  ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
header ipv6_h {
  bit<4>   version; bit<8> trafficClass; bit<20> flowLabel;
  bit<16>  payloadLen; bit<8> nextHdr; bit<8> hopLimit;
  bit<128> srcAddr; bit<128> dstAddr;
}

struct hdr_t {
  eth_h  eth;
  ipv4_h ipv4;
  ipv4_h inner;
  ipv6_h ipv6;
}

program P6Mono : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800 : parse_ipv4;
        0x86DD : parse_ipv6;
        default : accept;
      }
    }
    state parse_ipv4 {
      ex.extract(p, h.ipv4);
      transition select(h.ipv4.protocol) {
        0x04 : parse_inner;
        default : accept;
      }
    }
    state parse_inner { ex.extract(p, h.inner); transition accept; }
    state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
  }

  control C(pkt p, inout hdr_t h, im_t im) {
    bit<16> nh;
    action drop_pkt() { im.drop(); }
    action encap(bit<32> segment_src, bit<32> segment_dst) {
      h.inner.setValid();
      h.inner.version = h.ipv4.version;
      h.inner.ihl = h.ipv4.ihl;
      h.inner.diffserv = h.ipv4.diffserv;
      h.inner.totalLen = h.ipv4.totalLen;
      h.inner.identification = h.ipv4.identification;
      h.inner.flags = h.ipv4.flags;
      h.inner.fragOffset = h.ipv4.fragOffset;
      h.inner.ttl = h.ipv4.ttl;
      h.inner.protocol = h.ipv4.protocol;
      h.inner.hdrChecksum = h.ipv4.hdrChecksum;
      h.inner.srcAddr = h.ipv4.srcAddr;
      h.inner.dstAddr = h.ipv4.dstAddr;
      h.ipv4.totalLen = h.inner.totalLen + 20;
      h.ipv4.identification = 0;
      h.ipv4.flags = 0;
      h.ipv4.fragOffset = 0;
      h.ipv4.ttl = 64;
      h.ipv4.protocol = 0x04;
      h.ipv4.hdrChecksum = 0;
      h.ipv4.diffserv = h.inner.diffserv;
      h.ipv4.srcAddr = segment_src;
      h.ipv4.dstAddr = segment_dst;
    }
    action decap() {
      h.ipv4.version = h.inner.version;
      h.ipv4.ihl = h.inner.ihl;
      h.ipv4.diffserv = h.inner.diffserv;
      h.ipv4.totalLen = h.inner.totalLen;
      h.ipv4.identification = h.inner.identification;
      h.ipv4.flags = h.inner.flags;
      h.ipv4.fragOffset = h.inner.fragOffset;
      h.ipv4.ttl = h.inner.ttl;
      h.ipv4.protocol = h.inner.protocol;
      h.ipv4.hdrChecksum = h.inner.hdrChecksum;
      h.ipv4.srcAddr = h.inner.srcAddr;
      h.ipv4.dstAddr = h.inner.dstAddr;
      h.inner.setInvalid();
    }
    action pass() { }
    action process_v4(bit<16> next_hop) {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      nh = next_hop;
    }
    action process_v6(bit<16> next_hop) {
      h.ipv6.hopLimit = h.ipv6.hopLimit - 1;
      nh = next_hop;
    }
    action forward(bit<48> dmac, bit<48> smac, bit<8> port) {
      h.eth.dstMac = dmac;
      h.eth.srcMac = smac;
      im.set_out_port(port);
    }
    table srv4_tbl {
      key = { h.ipv4.dstAddr : exact; }
      actions = { encap; decap; pass; }
      default_action = pass();
      size = 256;
    }
    table ipv4_lpm_tbl {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { process_v4; drop_pkt; }
      default_action = drop_pkt();
      size = 1024;
    }
    table ipv6_lpm_tbl {
      key = { h.ipv6.dstAddr : lpm; }
      actions = { process_v6; drop_pkt; }
      default_action = drop_pkt();
      size = 1024;
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_pkt; }
      default_action = drop_pkt();
      size = 64;
    }
    apply {
      nh = 0;
      if (h.ipv4.isValid()) {
        srv4_tbl.apply();
        if (h.ipv4.ttl == 0) { drop_pkt(); } else { ipv4_lpm_tbl.apply(); }
      } else if (h.ipv6.isValid()) {
        if (h.ipv6.hopLimit == 0) { drop_pkt(); } else { ipv6_lpm_tbl.apply(); }
      }
      forward_tbl.apply();
    }
  }

  control D(emitter em, pkt p, in hdr_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.ipv4);
      em.emit(p, h.inner);
      em.emit(p, h.ipv6);
    }
  }
}

P6Mono(P, C, D) main;
