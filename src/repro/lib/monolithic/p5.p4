// Monolithic equivalent of composition P5: Ethernet + IPv4 + IPv6 +
// NPTv6 (IPv6 prefix translation before routing).

header eth_h  { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header ipv4_h {
  bit<4>  version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8>  ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
header ipv6_h {
  bit<4>   version; bit<8> trafficClass; bit<20> flowLabel;
  bit<16>  payloadLen; bit<8> nextHdr; bit<8> hopLimit;
  bit<128> srcAddr; bit<128> dstAddr;
}

struct hdr_t {
  eth_h  eth;
  ipv4_h ipv4;
  ipv6_h ipv6;
}

program P5Mono : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800 : parse_ipv4;
        0x86DD : parse_ipv6;
        default : accept;
      }
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
    state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
  }

  control C(pkt p, inout hdr_t h, im_t im) {
    bit<16> nh;
    action drop_pkt() { im.drop(); }
    action translate_src(bit<64> new_prefix) {
      h.ipv6.srcAddr = new_prefix ++ h.ipv6.srcAddr[63:0];
    }
    action translate_dst(bit<64> new_prefix) {
      h.ipv6.dstAddr = new_prefix ++ h.ipv6.dstAddr[63:0];
    }
    action pass() { }
    action process_v4(bit<16> next_hop) {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      nh = next_hop;
    }
    action process_v6(bit<16> next_hop) {
      h.ipv6.hopLimit = h.ipv6.hopLimit - 1;
      nh = next_hop;
    }
    action forward(bit<48> dmac, bit<48> smac, bit<8> port) {
      h.eth.dstMac = dmac;
      h.eth.srcMac = smac;
      im.set_out_port(port);
    }
    table npt_tbl {
      key = { h.ipv6.srcAddr : lpm; }
      actions = { translate_src; translate_dst; pass; }
      default_action = pass();
      size = 128;
    }
    table ipv4_lpm_tbl {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { process_v4; drop_pkt; }
      default_action = drop_pkt();
      size = 1024;
    }
    table ipv6_lpm_tbl {
      key = { h.ipv6.dstAddr : lpm; }
      actions = { process_v6; drop_pkt; }
      default_action = drop_pkt();
      size = 1024;
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_pkt; }
      default_action = drop_pkt();
      size = 64;
    }
    apply {
      nh = 0;
      if (h.ipv4.isValid()) {
        if (h.ipv4.ttl == 0) { drop_pkt(); } else { ipv4_lpm_tbl.apply(); }
      } else if (h.ipv6.isValid()) {
        npt_tbl.apply();
        if (h.ipv6.hopLimit == 0) { drop_pkt(); } else { ipv6_lpm_tbl.apply(); }
      }
      forward_tbl.apply();
    }
  }

  control D(emitter em, pkt p, in hdr_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.ipv4);
      em.emit(p, h.ipv6);
    }
  }
}

P5Mono(P, C, D) main;
