"""Loading and compiling library module sources.

Module sources ship as package data (``modules/*.up4`` and
``monolithic/*.p4``).  Compilation results are cached per (kind, name):
the frontend is deterministic, and the midend clones every declaration
it transforms, so sharing checked modules is safe.
"""

from __future__ import annotations

import importlib.resources
from functools import lru_cache
from typing import List

from repro.errors import CompileError
from repro.frontend.typecheck import Module, check_program


def _resource_dir(kind: str):
    base = importlib.resources.files("repro.lib")
    return base / kind


def list_sources(kind: str = "modules") -> List[str]:
    """Names (without extension) of available sources of ``kind``."""
    suffix = ".up4" if kind == "modules" else ".p4"
    out = []
    for entry in _resource_dir(kind).iterdir():
        if entry.name.endswith(suffix):
            out.append(entry.name[: -len(suffix)])
    return sorted(out)


def load_module_source(name: str, kind: str = "modules") -> str:
    """Raw source text of a library module."""
    suffix = ".up4" if kind == "modules" else ".p4"
    path = _resource_dir(kind) / f"{name}{suffix}"
    try:
        return path.read_text()
    except FileNotFoundError:
        available = ", ".join(list_sources(kind))
        raise CompileError(
            f"no library source {name!r} of kind {kind!r}; "
            f"available: {available}"
        ) from None


@lru_cache(maxsize=None)
def compile_library_module(name: str, kind: str = "modules") -> Module:
    """Compile (and cache) one library module to µP4-IR."""
    source = load_module_source(name, kind)
    return check_program(source, f"{name}.up4" if kind == "modules" else f"{name}.p4")
