"""Recursive-descent parser for the µP4/P4₁₆ subset.

Produces the AST defined in :mod:`repro.frontend.astnodes`.  The grammar
covers everything used by the paper's listings: header/struct/enum/const
declarations, parsers with select transitions, controls with actions,
tables (keys, actions, const entries, default_action, size), µP4
``program ... : implements Interface<...>`` packages, module signature
declarations, instantiations, and the full expression language including
``++`` concatenation, bit slices, casts, masks and ranges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import astnodes as ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind as T

# Binary operator precedence (higher binds tighter).  ``++`` follows the
# P4₁₆ spec: it sits with additive operators.
_BIN_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "++": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_TYPE_START = {T.KW_BIT, T.KW_VARBIT, T.KW_BOOL, T.KW_VOID, T.IDENT}


class Parser:
    """Parses one compilation unit from a token list."""

    def __init__(self, tokens: List[Token], filename: str = "<string>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def at(self, kind: T, ahead: int = 0) -> bool:
        return self.peek(ahead).kind is kind

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not T.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: T, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            want = what or kind.value
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.loc)
        return self.advance()

    def accept(self, kind: T) -> Optional[Token]:
        if self.at(kind):
            return self.advance()
        return None

    def expect_close_angle(self) -> None:
        """Consume ``>``, splitting a ``>>`` token for nested generics."""
        tok = self.peek()
        if tok.kind is T.RANGLE:
            self.advance()
            return
        if tok.kind is T.SHR:
            self.tokens[self.pos] = Token(T.RANGLE, ">", tok.loc)
            return
        raise ParseError(f"expected '>', found {tok.text!r}", tok.loc)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> ast.SourceProgram:
        decls: List[ast.Decl] = []
        while not self.at(T.EOF):
            decls.append(self._declaration())
        return ast.SourceProgram(decls=decls, filename=self.filename)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _declaration(self) -> ast.Decl:
        tok = self.peek()
        if tok.kind is T.KW_HEADER:
            return self._header_decl()
        if tok.kind is T.KW_STRUCT:
            return self._struct_decl()
        if tok.kind is T.KW_ENUM:
            return self._enum_decl()
        if tok.kind is T.KW_TYPEDEF:
            return self._typedef_decl()
        if tok.kind is T.KW_CONST:
            return self._const_decl()
        if tok.kind is T.KW_PARSER:
            return self._parser_decl()
        if tok.kind is T.KW_CONTROL:
            return self._control_decl()
        if tok.kind is T.KW_PROGRAM:
            return self._program_decl()
        if tok.kind is T.IDENT:
            return self._ident_led_top_decl()
        raise ParseError(f"unexpected token {tok.text!r} at top level", tok.loc)

    def _ident_led_top_decl(self) -> ast.Decl:
        """Module signature ``L3(params);`` or ``Pkg(args) main;``."""
        name_tok = self.expect(T.IDENT)
        self.expect(T.LPAREN)
        # Package instantiation args are bare names; module signatures have
        # typed params.  Look ahead: a parameter starts with a direction
        # keyword or a type followed by a name.
        if self._looks_like_params():
            params = self._param_list_tail()
            self.expect(T.SEMI)
            return ast.ModuleSigDecl(
                loc=name_tok.loc, name=name_tok.value, params=params
            )
        args: List[str] = []
        if not self.at(T.RPAREN):
            args.append(self.expect(T.IDENT).value)
            while self.accept(T.COMMA):
                args.append(self.expect(T.IDENT).value)
        self.expect(T.RPAREN)
        self.expect(T.KW_MAIN, "main")
        self.expect(T.SEMI)
        return ast.PackageInstantiation(
            loc=name_tok.loc, name="main", package=name_tok.value, args=args
        )

    def _looks_like_params(self) -> bool:
        """True if the upcoming parenthesised list is a typed param list."""
        k0, k1 = self.peek(0).kind, self.peek(1).kind
        if k0 in (T.KW_IN, T.KW_OUT, T.KW_INOUT, T.KW_BIT, T.KW_VARBIT, T.KW_BOOL):
            return True
        return k0 is T.IDENT and k1 in (T.IDENT, T.LANGLE)

    def _header_decl(self) -> ast.HeaderDecl:
        loc = self.expect(T.KW_HEADER).loc
        name = self.expect(T.IDENT).value
        fields = self._field_block()
        return ast.HeaderDecl(loc=loc, name=name, fields=fields)

    def _struct_decl(self) -> ast.StructDecl:
        loc = self.expect(T.KW_STRUCT).loc
        name = self.expect(T.IDENT).value
        fields = self._field_block()
        return ast.StructDecl(loc=loc, name=name, fields=fields)

    def _field_block(self) -> List[Tuple[str, ast.Type]]:
        self.expect(T.LBRACE)
        fields: List[Tuple[str, ast.Type]] = []
        while not self.at(T.RBRACE):
            ftype = self._type()
            fname = self.expect(T.IDENT).value
            if self.accept(T.LBRACKET):
                size_tok = self.expect(T.INT)
                self.expect(T.RBRACKET)
                ftype = ast.HeaderStackType(
                    loc=ftype.loc, element=ftype, size=size_tok.value[1]
                )
            self.expect(T.SEMI)
            fields.append((fname, ftype))
        self.expect(T.RBRACE)
        return fields

    def _enum_decl(self) -> ast.EnumDecl:
        loc = self.expect(T.KW_ENUM).loc
        name = self.expect(T.IDENT).value
        self.expect(T.LBRACE)
        members = [self.expect(T.IDENT).value]
        while self.accept(T.COMMA):
            if self.at(T.RBRACE):  # tolerate trailing comma
                break
            members.append(self.expect(T.IDENT).value)
        self.expect(T.RBRACE)
        return ast.EnumDecl(loc=loc, name=name, members=members)

    def _typedef_decl(self) -> ast.TypedefDecl:
        loc = self.expect(T.KW_TYPEDEF).loc
        aliased = self._type()
        name = self.expect(T.IDENT).value
        self.expect(T.SEMI)
        return ast.TypedefDecl(loc=loc, name=name, aliased=aliased)

    def _const_decl(self) -> ast.ConstDecl:
        loc = self.expect(T.KW_CONST).loc
        ctype = self._type()
        name = self.expect(T.IDENT).value
        self.expect(T.ASSIGN)
        value = self._expression()
        self.expect(T.SEMI)
        return ast.ConstDecl(loc=loc, name=name, const_type=ctype, value=value)

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _type(self) -> ast.Type:
        tok = self.peek()
        if tok.kind is T.KW_BIT:
            self.advance()
            self.expect(T.LANGLE)
            width = self.expect(T.INT).value[1]
            self.expect_close_angle()
            return ast.BitType(loc=tok.loc, width=width)
        if tok.kind is T.KW_VARBIT:
            self.advance()
            self.expect(T.LANGLE)
            width = self.expect(T.INT).value[1]
            self.expect_close_angle()
            return ast.VarBitType(loc=tok.loc, max_width=width)
        if tok.kind is T.KW_BOOL:
            self.advance()
            return ast.BoolType(loc=tok.loc)
        if tok.kind is T.KW_VOID:
            self.advance()
            return ast.VoidType(loc=tok.loc)
        if tok.kind is T.IDENT:
            self.advance()
            args: List[ast.Type] = []
            if self.at(T.LANGLE) and self._angle_closes_as_type_args():
                self.advance()
                if not self.at(T.RANGLE):
                    args.append(self._type())
                    while self.accept(T.COMMA):
                        args.append(self._type())
                self.expect_close_angle()
            return ast.TypeName(loc=tok.loc, name=tok.value, args=args)
        raise ParseError(f"expected a type, found {tok.text!r}", tok.loc)

    def _angle_closes_as_type_args(self) -> bool:
        """Scan forward from a ``<`` to see if it closes as type arguments."""
        depth = 0
        i = self.pos
        while i < len(self.tokens):
            k = self.tokens[i].kind
            if k is T.LANGLE:
                depth += 1
            elif k is T.RANGLE:
                depth -= 1
                if depth == 0:
                    return True
            elif k is T.SHR:
                depth -= 2
                if depth <= 0:
                    return True
            elif k in (
                T.SEMI,
                T.LBRACE,
                T.RBRACE,
                T.EOF,
                T.ASSIGN,
                T.LPAREN,
            ):
                return False
            i += 1
        return False

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def _param_list(self) -> List[ast.Param]:
        self.expect(T.LPAREN)
        return self._param_list_tail()

    def _param_list_tail(self) -> List[ast.Param]:
        params: List[ast.Param] = []
        if not self.at(T.RPAREN):
            params.append(self._param())
            while self.accept(T.COMMA):
                params.append(self._param())
        self.expect(T.RPAREN)
        return params

    def _param(self) -> ast.Param:
        loc = self.peek().loc
        direction = ""
        if self.at(T.KW_IN):
            self.advance()
            direction = "in"
        elif self.at(T.KW_OUT):
            self.advance()
            direction = "out"
        elif self.at(T.KW_INOUT):
            self.advance()
            direction = "inout"
        ptype = self._type()
        name = self.expect(T.IDENT).value
        return ast.Param(loc=loc, direction=direction, param_type=ptype, name=name)

    # ------------------------------------------------------------------
    # Parser declarations
    # ------------------------------------------------------------------
    def _parser_decl(self) -> ast.ParserDecl:
        loc = self.expect(T.KW_PARSER).loc
        name = self.expect(T.IDENT).value
        params = self._param_list()
        self.expect(T.LBRACE)
        locals_: List[ast.Decl] = []
        states: List[ast.ParserState] = []
        while not self.at(T.RBRACE):
            if self.at(T.KW_STATE):
                states.append(self._parser_state())
            elif self.at(T.KW_CONST):
                locals_.append(self._const_decl())
            else:
                locals_.append(self._local_var_or_instance())
        self.expect(T.RBRACE)
        return ast.ParserDecl(
            loc=loc, name=name, params=params, locals=locals_, states=states
        )

    def _parser_state(self) -> ast.ParserState:
        loc = self.expect(T.KW_STATE).loc
        name = self.expect(T.IDENT).value
        self.expect(T.LBRACE)
        stmts: List[ast.Stmt] = []
        state = ast.ParserState(loc=loc, name=name)
        while not self.at(T.RBRACE):
            if self.at(T.KW_TRANSITION):
                self._transition(state)
                break
            stmts.append(self._statement())
        state.stmts = stmts
        self.expect(T.RBRACE)
        return state

    def _transition(self, state: ast.ParserState) -> None:
        self.expect(T.KW_TRANSITION)
        if self.at(T.KW_SELECT):
            self.advance()
            self.expect(T.LPAREN)
            exprs = [self._expression()]
            while self.accept(T.COMMA):
                exprs.append(self._expression())
            self.expect(T.RPAREN)
            self.expect(T.LBRACE)
            cases: List[Tuple[List[ast.Expr], str]] = []
            while not self.at(T.RBRACE):
                keysets = self._keyset_list()
                self.expect(T.COLON)
                target = self._state_name()
                self.expect(T.SEMI)
                cases.append((keysets, target))
            self.expect(T.RBRACE)
            state.select_exprs = exprs
            state.select_cases = cases
        else:
            state.direct_next = self._state_name()
            self.expect(T.SEMI)

    def _state_name(self) -> str:
        # accept/reject are ordinary identifiers here.
        tok = self.peek()
        if tok.kind is T.IDENT:
            self.advance()
            return tok.value
        raise ParseError(f"expected state name, found {tok.text!r}", tok.loc)

    def _keyset_list(self) -> List[ast.Expr]:
        if self.accept(T.LPAREN):
            keysets = [self._keyset()]
            while self.accept(T.COMMA):
                keysets.append(self._keyset())
            self.expect(T.RPAREN)
            return keysets
        return [self._keyset()]

    def _keyset(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is T.KW_DEFAULT or tok.kind is T.UNDERSCORE:
            self.advance()
            return ast.DefaultExpr(loc=tok.loc)
        expr = self._expression()
        if self.accept(T.MASK):
            mask = self._expression()
            return ast.MaskExpr(loc=tok.loc, value=expr, mask=mask)
        if self.accept(T.RANGE):
            hi = self._expression()
            return ast.RangeExpr(loc=tok.loc, lo=expr, hi=hi)
        return expr

    # ------------------------------------------------------------------
    # Control declarations
    # ------------------------------------------------------------------
    def _control_decl(self) -> ast.ControlDecl:
        loc = self.expect(T.KW_CONTROL).loc
        name = self.expect(T.IDENT).value
        params = self._param_list()
        self.expect(T.LBRACE)
        locals_: List[ast.Decl] = []
        apply_body: Optional[ast.BlockStmt] = None
        while not self.at(T.RBRACE):
            if self.at(T.KW_ACTION):
                locals_.append(self._action_decl())
            elif self.at(T.KW_TABLE):
                locals_.append(self._table_decl())
            elif self.at(T.KW_CONST):
                locals_.append(self._const_decl())
            elif self.at(T.KW_APPLY):
                self.advance()
                apply_body = self._block()
            else:
                locals_.append(self._local_var_or_instance())
        self.expect(T.RBRACE)
        if apply_body is None:
            raise ParseError(f"control {name!r} has no apply block", loc)
        return ast.ControlDecl(
            loc=loc, name=name, params=params, locals=locals_, apply_body=apply_body
        )

    def _local_var_or_instance(self) -> ast.Decl:
        """``hdr_t h;`` (var) or ``ipv4() ipv4_i;`` (instantiation)."""
        loc = self.peek().loc
        if self.at(T.IDENT) and self.at(T.LPAREN, 1):
            target = self.advance().value
            self.expect(T.LPAREN)
            args: List[ast.Expr] = []
            if not self.at(T.RPAREN):
                args.append(self._expression())
                while self.accept(T.COMMA):
                    args.append(self._expression())
            self.expect(T.RPAREN)
            name = self.expect(T.IDENT).value
            self.expect(T.SEMI)
            return ast.InstanceDecl(loc=loc, name=name, target=target, args=args)
        vtype = self._type()
        name = self.expect(T.IDENT).value
        init = None
        if self.accept(T.ASSIGN):
            init = self._expression()
        self.expect(T.SEMI)
        return ast.VarLocal(loc=loc, name=name, var_type=vtype, init=init)

    def _action_decl(self) -> ast.ActionDecl:
        loc = self.expect(T.KW_ACTION).loc
        name = self.expect(T.IDENT).value
        params = self._param_list()
        body = self._block()
        return ast.ActionDecl(loc=loc, name=name, params=params, body=body)

    def _table_decl(self) -> ast.TableDecl:
        loc = self.expect(T.KW_TABLE).loc
        name = self.expect(T.IDENT).value
        self.expect(T.LBRACE)
        table = ast.TableDecl(loc=loc, name=name)
        while not self.at(T.RBRACE):
            self._table_property(table)
        self.expect(T.RBRACE)
        return table

    def _table_property(self, table: ast.TableDecl) -> None:
        tok = self.peek()
        if tok.kind is T.KW_KEY:
            self.advance()
            self.expect(T.ASSIGN)
            self.expect(T.LBRACE)
            while not self.at(T.RBRACE):
                expr = self._expression()
                self.expect(T.COLON)
                kind = self.expect(T.IDENT).value
                self.expect(T.SEMI)
                table.keys.append(ast.KeyElement(loc=expr.loc, expr=expr, match_kind=kind))
            self.expect(T.RBRACE)
        elif tok.kind is T.KW_ACTIONS:
            self.advance()
            self.expect(T.ASSIGN)
            self.expect(T.LBRACE)
            while not self.at(T.RBRACE):
                table.actions.append(self.expect(T.IDENT).value)
                if self.accept(T.LPAREN):
                    self.expect(T.RPAREN)
                self.expect(T.SEMI)
            self.expect(T.RBRACE)
        elif tok.kind is T.KW_DEFAULT_ACTION:
            self.advance()
            if not self.accept(T.ASSIGN):
                self.expect(T.COLON)
            table.default_action = self.expect(T.IDENT).value
            if self.accept(T.LPAREN):
                if not self.at(T.RPAREN):
                    table.default_action_args.append(self._expression())
                    while self.accept(T.COMMA):
                        table.default_action_args.append(self._expression())
                self.expect(T.RPAREN)
            self.expect(T.SEMI)
        elif tok.kind is T.KW_CONST or tok.kind is T.KW_ENTRIES:
            self.accept(T.KW_CONST)
            self.expect(T.KW_ENTRIES)
            self.expect(T.ASSIGN)
            self.expect(T.LBRACE)
            while not self.at(T.RBRACE):
                entry_loc = self.peek().loc
                keysets = self._keyset_list()
                self.expect(T.COLON)
                act = self.expect(T.IDENT).value
                args: List[ast.Expr] = []
                if self.accept(T.LPAREN):
                    if not self.at(T.RPAREN):
                        args.append(self._expression())
                        while self.accept(T.COMMA):
                            args.append(self._expression())
                    self.expect(T.RPAREN)
                self.expect(T.SEMI)
                table.const_entries.append(
                    ast.TableEntry(
                        loc=entry_loc, keysets=keysets, action_name=act, action_args=args
                    )
                )
            self.expect(T.RBRACE)
        elif tok.kind is T.KW_SIZE:
            self.advance()
            self.expect(T.ASSIGN)
            table.size = self.expect(T.INT).value[1]
            self.expect(T.SEMI)
        else:
            raise ParseError(f"unknown table property {tok.text!r}", tok.loc)

    # ------------------------------------------------------------------
    # µP4 program packages
    # ------------------------------------------------------------------
    def _program_decl(self) -> ast.ProgramDecl:
        loc = self.expect(T.KW_PROGRAM).loc
        name = self.expect(T.IDENT).value
        self.expect(T.COLON)
        self.expect(T.KW_IMPLEMENTS)
        iface = self.expect(T.IDENT).value
        iface_args: List[ast.Type] = []
        if self.accept(T.LANGLE):
            if not self.at(T.RANGLE):
                iface_args.append(self._type())
                while self.accept(T.COMMA):
                    iface_args.append(self._type())
            self.expect_close_angle()
        self.expect(T.LBRACE)
        decls: List[ast.Decl] = []
        while not self.at(T.RBRACE):
            if self.at(T.KW_PARSER):
                decls.append(self._parser_decl())
            elif self.at(T.KW_CONTROL):
                decls.append(self._control_decl())
            elif self.at(T.KW_CONST):
                decls.append(self._const_decl())
            else:
                tok = self.peek()
                raise ParseError(
                    f"unexpected {tok.text!r} inside program body", tok.loc
                )
        self.expect(T.RBRACE)
        return ast.ProgramDecl(
            loc=loc, name=name, interface=iface, interface_args=iface_args, decls=decls
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self) -> ast.BlockStmt:
        loc = self.expect(T.LBRACE).loc
        stmts: List[ast.Stmt] = []
        while not self.at(T.RBRACE):
            stmts.append(self._statement())
        self.expect(T.RBRACE)
        return ast.BlockStmt(loc=loc, stmts=stmts)

    def _statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind is T.LBRACE:
            return self._block()
        if tok.kind is T.KW_IF:
            return self._if_stmt()
        if tok.kind is T.KW_SWITCH:
            return self._switch_stmt()
        if tok.kind is T.KW_RETURN:
            self.advance()
            self.expect(T.SEMI)
            return ast.ReturnStmt(loc=tok.loc)
        if tok.kind is T.KW_EXIT:
            self.advance()
            self.expect(T.SEMI)
            return ast.ExitStmt(loc=tok.loc)
        if tok.kind is T.SEMI:
            self.advance()
            return ast.EmptyStmt(loc=tok.loc)
        if tok.kind in (T.KW_BIT, T.KW_VARBIT, T.KW_BOOL):
            return self._var_decl_stmt()
        if tok.kind is T.IDENT and self.at(T.IDENT, 1):
            return self._var_decl_stmt()
        # Otherwise: expression statement (assignment or call).
        expr = self._expression()
        if self.accept(T.ASSIGN):
            rhs = self._expression()
            self.expect(T.SEMI)
            return ast.AssignStmt(loc=tok.loc, lhs=expr, rhs=rhs)
        self.expect(T.SEMI)
        if not isinstance(expr, ast.MethodCallExpr):
            raise ParseError("expression statement must be a call", tok.loc)
        return ast.MethodCallStmt(loc=tok.loc, call=expr)

    def _var_decl_stmt(self) -> ast.VarDeclStmt:
        loc = self.peek().loc
        vtype = self._type()
        name = self.expect(T.IDENT).value
        init = None
        if self.accept(T.ASSIGN):
            init = self._expression()
        self.expect(T.SEMI)
        return ast.VarDeclStmt(loc=loc, var_type=vtype, name=name, init=init)

    def _if_stmt(self) -> ast.IfStmt:
        loc = self.expect(T.KW_IF).loc
        self.expect(T.LPAREN)
        cond = self._expression()
        self.expect(T.RPAREN)
        then_body = self._statement()
        else_body = None
        if self.accept(T.KW_ELSE):
            else_body = self._statement()
        return ast.IfStmt(loc=loc, cond=cond, then_body=then_body, else_body=else_body)

    def _switch_stmt(self) -> ast.SwitchStmt:
        loc = self.expect(T.KW_SWITCH).loc
        self.expect(T.LPAREN)
        subject = self._expression()
        self.expect(T.RPAREN)
        self.expect(T.LBRACE)
        cases: List[ast.SwitchCase] = []
        while not self.at(T.RBRACE):
            case_loc = self.peek().loc
            keysets = [self._keyset()]
            while self.accept(T.COMMA):
                keysets.append(self._keyset())
            self.expect(T.COLON)
            body: Optional[ast.Stmt]
            if self.at(T.LBRACE):
                body = self._block()
            elif self._case_label_follows():
                body = None  # fallthrough
            else:
                body = self._statement()
            cases.append(ast.SwitchCase(loc=case_loc, keysets=keysets, body=body))
        self.expect(T.RBRACE)
        return ast.SwitchStmt(loc=loc, subject=subject, cases=cases)

    def _case_label_follows(self) -> bool:
        """Detect an immediately-following case label (fallthrough arm)."""
        k0, k1 = self.peek(0).kind, self.peek(1).kind
        if k0 in (T.KW_DEFAULT, T.UNDERSCORE) and k1 is T.COLON:
            return True
        return k0 is T.INT and k1 is T.COLON

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expression(self, min_prec: int = 0) -> ast.Expr:
        left = self._unary()
        while True:
            tok = self.peek()
            op = self._binop_text(tok)
            if op is None:
                return left
            prec = _BIN_PRECEDENCE[op]
            if prec < min_prec:
                return left
            self.advance()
            right = self._expression(prec + 1)
            left = ast.BinaryExpr(loc=tok.loc, op=op, left=left, right=right)

    def _binop_text(self, tok: Token) -> Optional[str]:
        mapping = {
            T.OR: "||",
            T.AND: "&&",
            T.EQ: "==",
            T.NEQ: "!=",
            T.LANGLE: "<",
            T.RANGLE: ">",
            T.LE: "<=",
            T.GE: ">=",
            T.BITOR: "|",
            T.BITXOR: "^",
            T.BITAND: "&",
            T.SHL: "<<",
            T.SHR: ">>",
            T.PLUS: "+",
            T.MINUS: "-",
            T.CONCAT: "++",
            T.STAR: "*",
            T.SLASH: "/",
            T.PERCENT: "%",
        }
        return mapping.get(tok.kind)

    def _unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is T.NOT:
            self.advance()
            return ast.UnaryExpr(loc=tok.loc, op="!", operand=self._unary())
        if tok.kind is T.BITNOT:
            self.advance()
            return ast.UnaryExpr(loc=tok.loc, op="~", operand=self._unary())
        if tok.kind is T.MINUS:
            self.advance()
            return ast.UnaryExpr(loc=tok.loc, op="-", operand=self._unary())
        if tok.kind is T.LPAREN and self._paren_is_cast():
            self.advance()
            target = self._type()
            self.expect(T.RPAREN)
            return ast.CastExpr(loc=tok.loc, target=target, operand=self._unary())
        return self._postfix()

    def _paren_is_cast(self) -> bool:
        """``(bit<16>) x`` — only type-keyword casts are supported."""
        return self.peek(1).kind in (T.KW_BIT, T.KW_BOOL, T.KW_VARBIT)

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            tok = self.peek()
            if tok.kind is T.DOT:
                self.advance()
                member_tok = self.peek()
                if member_tok.kind is T.IDENT:
                    self.advance()
                    member = member_tok.value
                elif member_tok.kind is T.KW_APPLY:
                    self.advance()
                    member = "apply"
                else:
                    raise ParseError(
                        f"expected member name, found {member_tok.text!r}",
                        member_tok.loc,
                    )
                expr = ast.MemberExpr(loc=tok.loc, base=expr, member=member)
            elif tok.kind is T.LPAREN:
                self.advance()
                args: List[ast.Expr] = []
                if not self.at(T.RPAREN):
                    args.append(self._expression())
                    while self.accept(T.COMMA):
                        args.append(self._expression())
                self.expect(T.RPAREN)
                expr = ast.MethodCallExpr(loc=tok.loc, target=expr, args=args)
            elif tok.kind is T.LBRACKET:
                self.advance()
                first = self._expression()
                if self.accept(T.COLON):
                    lo_expr = self._expression()
                    self.expect(T.RBRACKET)
                    expr = ast.SliceExpr(
                        loc=tok.loc,
                        base=expr,
                        hi=_const_int(first),
                        lo=_const_int(lo_expr),
                    )
                else:
                    self.expect(T.RBRACKET)
                    expr = ast.IndexExpr(loc=tok.loc, base=expr, index=first)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is T.INT:
            self.advance()
            width, value = tok.value
            return ast.IntLit(loc=tok.loc, value=value, width=width)
        if tok.kind is T.KW_TRUE:
            self.advance()
            return ast.BoolLit(loc=tok.loc, value=True)
        if tok.kind is T.KW_FALSE:
            self.advance()
            return ast.BoolLit(loc=tok.loc, value=False)
        if tok.kind is T.IDENT:
            self.advance()
            return ast.PathExpr(loc=tok.loc, name=tok.value)
        if tok.kind is T.LPAREN:
            self.advance()
            inner = self._expression()
            self.expect(T.RPAREN)
            return inner
        raise ParseError(f"expected expression, found {tok.text!r}", tok.loc)


def _const_int(expr: ast.Expr) -> int:
    if not isinstance(expr, ast.IntLit):
        raise ParseError("slice bounds must be integer literals", expr.loc)
    return expr.value


def parse_program(text: str, filename: str = "<string>") -> ast.SourceProgram:
    """Lex and parse ``text`` into a :class:`SourceProgram`."""
    return Parser(tokenize(text, filename), filename).parse()
