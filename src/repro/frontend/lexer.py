"""Hand-written lexer for the µP4/P4₁₆ subset.

Handles ``//`` and ``/* */`` comments, width-prefixed integer literals
(``8w42``, ``16w0x0800``), hex/binary/decimal integers, and the operator
set used by P4 expressions (including ``++`` concatenation and ``&&&``
ternary masks).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError
from repro.frontend.source import SourceFile, SourceLocation
from repro.frontend.tokens import KEYWORDS, Token, TokenKind
from repro.obs.metrics import METRICS

_SIMPLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    "?": TokenKind.QUESTION,
    "@": TokenKind.AT,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "^": TokenKind.BITXOR,
    "~": TokenKind.BITNOT,
    "-": TokenKind.MINUS,
}


class Lexer:
    """Streaming lexer over a :class:`SourceFile`."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0
        self.line = 1
        self.col = 1

    # ------------------------------------------------------------------
    def _loc(self) -> SourceLocation:
        return self.source.location(self.line, self.col)

    def _peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        out = self.text[self.pos : self.pos + count]
        for ch in out:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return out

    # ------------------------------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    # ------------------------------------------------------------------
    def _lex_number(self) -> Token:
        loc = self._loc()
        tok_start = self.pos
        # Look ahead for a width prefix: decimal digits followed by 'w'.
        scan = self.pos
        while scan < len(self.text) and self.text[scan].isdigit():
            scan += 1
        width = None
        if scan > self.pos and scan < len(self.text) and self.text[scan] == "w":
            width = int(self.text[self.pos : scan])
            if width <= 0:
                raise LexError("zero-width literal prefix 0w", loc)
            self._advance(scan + 1 - self.pos)
        value = self._lex_radix_digits(loc)
        text = self.text[tok_start : self.pos]
        if width is not None and value >= 1 << width:
            raise LexError(f"literal {value} does not fit in bit<{width}>", loc)
        return Token(TokenKind.INT, text, loc, (width, value))

    def _lex_radix_digits(self, loc: SourceLocation) -> int:
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            digits_start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            digits = self.text[digits_start : self.pos].replace("_", "")
            if not digits:
                raise LexError("hex literal with no digits", loc)
            try:
                return int(digits, 16)
            except ValueError:
                raise LexError(f"bad hex literal 0x{digits}", loc) from None
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "bB":
            self._advance(2)
            digits_start = self.pos
            while self._peek() and self._peek() in "01_":
                self._advance()
            digits = self.text[digits_start : self.pos].replace("_", "")
            if not digits:
                raise LexError("binary literal with no digits", loc)
            return int(digits, 2)
        start = self.pos
        while self._peek().isdigit() or self._peek() == "_":
            self._advance()
        digits = self.text[start : self.pos].replace("_", "")
        if not digits:
            raise LexError("integer literal with no digits", loc)
        return int(digits, 10)

    def _lex_ident(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.text[start : self.pos]
        if text == "_":
            return Token(TokenKind.UNDERSCORE, text, loc)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, loc, text if kind is TokenKind.IDENT else None)

    def _lex_string(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        out: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._advance()
                out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
            else:
                out.append(self._advance())
        return Token(TokenKind.STRING, "".join(out), loc, "".join(out))

    # ------------------------------------------------------------------
    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self._loc())
        loc = self._loc()
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_ident()
        if ch == '"':
            return self._lex_string()
        two = ch + self._peek(1)
        three = two + self._peek(2)
        if three == "&&&":
            self._advance(3)
            return Token(TokenKind.MASK, three, loc)
        multi = {
            "++": TokenKind.CONCAT,
            "==": TokenKind.EQ,
            "!=": TokenKind.NEQ,
            "<=": TokenKind.LE,
            ">=": TokenKind.GE,
            "<<": TokenKind.SHL,
            ">>": TokenKind.SHR,
            "&&": TokenKind.AND,
            "||": TokenKind.OR,
            "..": TokenKind.RANGE,
        }
        if two in multi:
            self._advance(2)
            return Token(multi[two], two, loc)
        single = {
            "=": TokenKind.ASSIGN,
            "+": TokenKind.PLUS,
            "<": TokenKind.LANGLE,
            ">": TokenKind.RANGLE,
            "!": TokenKind.NOT,
            "&": TokenKind.BITAND,
            "|": TokenKind.BITOR,
            ".": TokenKind.DOT,
        }
        if ch in single:
            self._advance()
            return Token(single[ch], ch, loc)
        if ch in _SIMPLE:
            self._advance()
            return Token(_SIMPLE[ch], ch, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def __iter__(self) -> Iterator[Token]:
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind is TokenKind.EOF:
                return


def tokenize(text: str, filename: str = "<string>") -> List[Token]:
    """Lex ``text`` into a token list ending with EOF."""
    tokens = list(Lexer(SourceFile(text, filename)))
    METRICS.inc("frontend.tokens", len(tokens))
    METRICS.observe("frontend.tokens_per_module", len(tokens))
    return tokens
