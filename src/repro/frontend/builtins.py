"""µPA builtin environment: logical externs, intrinsic metadata, interfaces.

This module constructs the semantic objects for the paper's Fig. 6
declarations — ``pkt``, ``extractor``, ``emitter``, ``im_t``, ``meta_t``,
``in_buf``/``out_buf``/``mc_buf``, ``mc_engine`` and ``recirculate`` — and
the µPA interface names (Fig. 11).  The type checker installs these in the
global scope of every µP4 compilation unit.
"""

from __future__ import annotations

from typing import Dict, List

from repro.frontend.astnodes import (
    BitType,
    EnumType,
    ExternType,
    MethodSignature,
    Param,
    TypeName,
    VoidType,
)

# Values of the meta_t enumerator (paper Fig. 6 lists the first four; the
# rest are the additional intrinsic fields V1Model/TNA targets expose and
# that the backend constraint FSM needs — §5.5).
META_T_MEMBERS = [
    "IN_TIMESTAMP",
    "OUT_TIMESTAMP",
    "IN_PORT",
    "PKT_LEN",
    "OUT_PORT",
    "QUEUE_DEPTH",
    "DEQ_TIMESTAMP",
    "ENQ_TIMESTAMP",
    "PKT_INSTANCE_TYPE",
    "MCAST_GRP",
]

# Ports are bit<8> in µPA (Fig. 6); DROP is the reserved "discard" port.
PORT_WIDTH = 8
DROP_PORT_VALUE = 0xFF


def _p(direction: str, ptype, name: str) -> Param:
    return Param(direction=direction, param_type=ptype, name=name)


def _sig(name: str, params: List[Param], ret=None, type_params=None) -> MethodSignature:
    return MethodSignature(
        name=name,
        params=params,
        return_type=ret if ret is not None else VoidType(),
        type_params=type_params or [],
    )


def _bit(width: int) -> BitType:
    return BitType(width=width)


def make_meta_t() -> EnumType:
    return EnumType(name="meta_t", members=list(META_T_MEMBERS))


def make_pkt() -> ExternType:
    pkt = ExternType(name="pkt")
    pkt.methods = {
        "copy_from": [_sig("copy_from", [_p("in", TypeName(name="pkt"), "pa")])],
        "get_length": [_sig("get_length", [], _bit(32))],
    }
    return pkt


def make_extractor() -> ExternType:
    ex = ExternType(name="extractor")
    ex.methods = {
        "extract": [
            _sig(
                "extract",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("out", TypeName(name="H"), "hdr"),
                ],
                type_params=["H"],
            ),
            _sig(
                "extract",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("out", TypeName(name="H"), "hdr"),
                    _p("in", _bit(32), "size"),
                ],
                type_params=["H"],
            ),
        ],
        "lookahead": [
            _sig(
                "lookahead",
                [_p("", TypeName(name="pkt"), "p")],
                TypeName(name="H"),
                type_params=["H"],
            )
        ],
    }
    return ex


def make_emitter() -> ExternType:
    em = ExternType(name="emitter")
    em.methods = {
        "emit": [
            _sig(
                "emit",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("in", TypeName(name="H"), "hdr"),
                ],
                type_params=["H"],
            )
        ]
    }
    return em


def make_im_t() -> ExternType:
    im = ExternType(name="im_t")
    im.methods = {
        "set_out_port": [_sig("set_out_port", [_p("in", _bit(PORT_WIDTH), "port")])],
        "get_out_port": [_sig("get_out_port", [], _bit(PORT_WIDTH))],
        "get_in_port": [_sig("get_in_port", [], _bit(PORT_WIDTH))],
        "get_value": [
            _sig("get_value", [_p("in", TypeName(name="meta_t"), "ft")], _bit(32))
        ],
        "copy_from": [_sig("copy_from", [_p("in", TypeName(name="im_t"), "im")])],
        "drop": [_sig("drop", [])],
    }
    return im


def make_in_buf() -> ExternType:
    buf = ExternType(name="in_buf")
    # dequeue is architecture-internal (not user callable) but declared for
    # completeness; the checker rejects user calls to it.
    buf.methods = {
        "dequeue": [
            _sig(
                "dequeue",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("", TypeName(name="im_t"), "im"),
                    _p("out", TypeName(name="I"), "args"),
                ],
                type_params=["I"],
            )
        ]
    }
    return buf


def make_out_buf() -> ExternType:
    buf = ExternType(name="out_buf")
    buf.methods = {
        "enqueue": [
            _sig(
                "enqueue",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("", TypeName(name="im_t"), "im"),
                    _p("in", TypeName(name="O"), "out_args"),
                ],
                type_params=["O"],
            ),
            # Convenience overload used when O is empty.
            _sig(
                "enqueue",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("", TypeName(name="im_t"), "im"),
                ],
            ),
        ],
        "to_in_buf": [
            _sig("to_in_buf", [_p("", TypeName(name="in_buf"), "ib")])
        ],
        "merge": [_sig("merge", [_p("", TypeName(name="out_buf"), "ob")])],
    }
    return buf


def make_mc_buf() -> ExternType:
    buf = ExternType(name="mc_buf")
    buf.methods = {
        "enqueue": [
            _sig(
                "enqueue",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("in", TypeName(name="H"), "hdr"),
                    _p("", TypeName(name="im_t"), "im"),
                    _p("in", TypeName(name="O"), "out_args"),
                ],
                type_params=["H", "O"],
            )
        ]
    }
    return buf


def make_mc_engine() -> ExternType:
    mce = ExternType(name="mc_engine")
    mce.methods = {
        "set_mc_group": [
            _sig("set_mc_group", [_p("in", TypeName(name="GroupId_t"), "gid")])
        ],
        "apply": [
            _sig(
                "apply",
                [
                    _p("", TypeName(name="im_t"), "im"),
                    _p("out", TypeName(name="PktInstId_t"), "id"),
                ],
            ),
            _sig(
                "apply",
                [
                    _p("", TypeName(name="pkt"), "p"),
                    _p("", TypeName(name="im_t"), "im"),
                    _p("out", TypeName(name="O"), "out_args"),
                ],
                type_params=["O"],
            ),
        ],
        "set_buf": [_sig("set_buf", [_p("", TypeName(name="out_buf"), "ob")])],
    }
    return mce


def make_register() -> ExternType:
    """Stateful register array (the paper's §8.2 extension: static
    variables mapped to architecture registers)."""
    reg = ExternType(name="register")
    reg.methods = {
        "read": [
            _sig(
                "read",
                [
                    _p("out", TypeName(name="T"), "value"),
                    _p("in", _bit(32), "index"),
                ],
                type_params=["T"],
            )
        ],
        "write": [
            _sig(
                "write",
                [
                    _p("in", _bit(32), "index"),
                    _p("in", TypeName(name="T"), "value"),
                ],
                type_params=["T"],
            )
        ],
    }
    return reg


def builtin_types() -> Dict[str, object]:
    """All builtin named types installed in the global scope."""
    return {
        "pkt": make_pkt(),
        "extractor": make_extractor(),
        "emitter": make_emitter(),
        "im_t": make_im_t(),
        "in_buf": make_in_buf(),
        "out_buf": make_out_buf(),
        "mc_buf": make_mc_buf(),
        "mc_engine": make_mc_engine(),
        "register": make_register(),
        "meta_t": make_meta_t(),
        "GroupId_t": _bit(16),
        "PktInstId_t": _bit(16),
    }


def builtin_consts() -> Dict[str, tuple]:
    """Builtin constants: name -> (BitType, value)."""
    return {
        "DROP": (_bit(PORT_WIDTH), DROP_PORT_VALUE),
    }


# Free-function externs (callable without an instance).
def builtin_functions() -> Dict[str, List[MethodSignature]]:
    return {
        "recirculate": [
            _sig(
                "recirculate",
                [_p("in", TypeName(name="D"), "data")],
                type_params=["D"],
            )
        ],
    }


# µPA interface names (Fig. 11).  Each maps to the roles a conforming
# program must contain; role discovery is structural (by parameter types)
# because the paper's examples elide unused parameters.
INTERFACES = {
    "Unicast": {"roles": ("parser", "control", "deparser")},
    "Multicast": {"roles": ("parser", "control", "deparser")},
    "Orchestration": {"roles": ("control",)},
}
