"""AST node definitions for the µP4/P4₁₆ subset.

The AST doubles as the µP4-IR: the type checker annotates nodes in place
(``.type`` on expressions, resolved declarations on names) and the midend
transforms copies of these nodes.  All nodes carry a source location for
diagnostics.

Type nodes (:class:`BitType` etc.) are also used as the *semantic* types
computed during checking, so a single representation flows through the
whole compiler, in the spirit of p4c's unified IR.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.frontend.source import UNKNOWN_LOC, SourceLocation


@dataclass
class Node:
    """Base AST node."""

    loc: SourceLocation = field(default=UNKNOWN_LOC, repr=False, compare=False)

    def clone(self) -> "Node":
        """Deep copy; midend passes transform clones, never originals."""
        return _copy.deepcopy(self)


# ======================================================================
# Types
# ======================================================================


@dataclass
class Type(Node):
    """Base class for type nodes."""


@dataclass
class BitType(Type):
    """``bit<W>``."""

    width: int = 0

    def __str__(self) -> str:
        return f"bit<{self.width}>"


@dataclass
class VarBitType(Type):
    """``varbit<W>`` — at most W bits, multiple of 8 at runtime."""

    max_width: int = 0

    def __str__(self) -> str:
        return f"varbit<{self.max_width}>"


@dataclass
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass
class InfIntType(Type):
    """Type of an unsized integer literal before width inference."""

    def __str__(self) -> str:
        return "int"


@dataclass
class TypeName(Type):
    """A reference to a named type, resolved by the checker."""

    name: str = ""
    args: List[Type] = field(default_factory=list)

    def __str__(self) -> str:
        if self.args:
            return f"{self.name}<{', '.join(map(str, self.args))}>"
        return self.name


@dataclass
class HeaderType(Type):
    """Declared ``header`` type (fields are bit<N> or one trailing varbit)."""

    name: str = ""
    fields: List[Tuple[str, Type]] = field(default_factory=list)

    def __str__(self) -> str:
        return self.name

    def field_type(self, fname: str) -> Optional[Type]:
        for n, t in self.fields:
            if n == fname:
                return t
        return None

    @property
    def fixed_bit_width(self) -> int:
        """Total width of the fixed-size fields, in bits."""
        return sum(t.width for _, t in self.fields if isinstance(t, BitType))

    @property
    def max_bit_width(self) -> int:
        """Width including varbit fields at their maximum, in bits."""
        total = 0
        for _, t in self.fields:
            if isinstance(t, BitType):
                total += t.width
            elif isinstance(t, VarBitType):
                total += t.max_width
        return total

    @property
    def byte_width(self) -> int:
        """Fixed width in bytes (headers are byte-aligned)."""
        return self.fixed_bit_width // 8


@dataclass
class StructType(Type):
    """Declared ``struct`` type."""

    name: str = ""
    fields: List[Tuple[str, Type]] = field(default_factory=list)

    def __str__(self) -> str:
        return self.name

    def field_type(self, fname: str) -> Optional[Type]:
        for n, t in self.fields:
            if n == fname:
                return t
        return None


@dataclass
class HeaderStackType(Type):
    """``H[n]`` header stack."""

    element: Type = field(default_factory=Type)
    size: int = 0

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


@dataclass
class EnumType(Type):
    """Declared ``enum``."""

    name: str = ""
    members: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        return self.name


@dataclass
class ExternType(Type):
    """A µPA logical extern (pkt, extractor, emitter, im_t, bufs, ...)."""

    name: str = ""
    # method name -> overload list; populated by repro.frontend.builtins.
    methods: Dict[str, List["MethodSignature"]] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.name


@dataclass
class MethodSignature(Node):
    """Signature of an extern method or action/program apply."""

    name: str = ""
    params: List["Param"] = field(default_factory=list)
    return_type: Type = field(default_factory=VoidType)
    type_params: List[str] = field(default_factory=list)


@dataclass
class ErrorTypePlaceholder(Type):
    """Type of ``error`` values (parser errors)."""

    def __str__(self) -> str:
        return "error"


# ======================================================================
# Expressions
# ======================================================================


@dataclass
class Expr(Node):
    """Base expression; ``type`` is annotated by the checker."""

    type: Optional[Type] = field(default=None, repr=False, compare=False)


@dataclass
class IntLit(Expr):
    """Integer literal, optionally width-prefixed (``16w0x800``)."""

    value: int = 0
    width: Optional[int] = None


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class PathExpr(Expr):
    """A bare name; resolution recorded in ``decl`` by the checker."""

    name: str = ""
    decl: Optional[object] = field(default=None, repr=False, compare=False)


@dataclass
class MemberExpr(Expr):
    """``expr.member`` — field access, enum member, or method selection."""

    base: Expr = field(default_factory=Expr)
    member: str = ""


@dataclass
class IndexExpr(Expr):
    """``stack[i]`` header-stack indexing."""

    base: Expr = field(default_factory=Expr)
    index: Expr = field(default_factory=Expr)


@dataclass
class SliceExpr(Expr):
    """``expr[hi:lo]`` bit slice."""

    base: Expr = field(default_factory=Expr)
    hi: int = 0
    lo: int = 0


@dataclass
class BinaryExpr(Expr):
    """Binary operator; ``op`` is the token text (``+``, ``==``, ``++``...)."""

    op: str = ""
    left: Expr = field(default_factory=Expr)
    right: Expr = field(default_factory=Expr)


@dataclass
class UnaryExpr(Expr):
    """Unary ``!``, ``~`` or ``-``."""

    op: str = ""
    operand: Expr = field(default_factory=Expr)


@dataclass
class CastExpr(Expr):
    """``(bit<W>) expr``."""

    target: Type = field(default_factory=Type)
    operand: Expr = field(default_factory=Expr)


@dataclass
class MethodCallExpr(Expr):
    """``target(args)`` — extern method, action, table.apply, instance.apply."""

    target: Expr = field(default_factory=Expr)
    type_args: List[Type] = field(default_factory=list)
    args: List[Expr] = field(default_factory=list)


@dataclass
class MaskExpr(Expr):
    """``value &&& mask`` ternary keyset."""

    value: Expr = field(default_factory=Expr)
    mask: Expr = field(default_factory=Expr)


@dataclass
class RangeExpr(Expr):
    """``lo .. hi`` range keyset."""

    lo: Expr = field(default_factory=Expr)
    hi: Expr = field(default_factory=Expr)


@dataclass
class DefaultExpr(Expr):
    """``default`` / ``_`` keyset (matches anything)."""


@dataclass
class TupleExpr(Expr):
    """Parenthesised keyset tuple in select/entries."""

    items: List[Expr] = field(default_factory=list)


# ======================================================================
# Statements
# ======================================================================


@dataclass
class Stmt(Node):
    """Base statement."""


@dataclass
class BlockStmt(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDeclStmt(Stmt):
    """Local variable declaration, optionally initialised."""

    var_type: Type = field(default_factory=Type)
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    lhs: Expr = field(default_factory=Expr)
    rhs: Expr = field(default_factory=Expr)


@dataclass
class MethodCallStmt(Stmt):
    call: MethodCallExpr = field(default_factory=MethodCallExpr)


@dataclass
class IfStmt(Stmt):
    cond: Expr = field(default_factory=Expr)
    then_body: Stmt = field(default_factory=BlockStmt)
    else_body: Optional[Stmt] = None


@dataclass
class SwitchCase(Node):
    """One ``keyset : body`` arm of a switch statement."""

    keysets: List[Expr] = field(default_factory=list)
    body: Optional[Stmt] = None  # None = fallthrough to next case


@dataclass
class SwitchStmt(Stmt):
    """``switch (expr) { ... }`` over an expression (µP4 style, Fig. 8)."""

    subject: Expr = field(default_factory=Expr)
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    pass


@dataclass
class ExitStmt(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


# ======================================================================
# Declarations
# ======================================================================


@dataclass
class Param(Node):
    """Runtime parameter with direction: in / out / inout / none."""

    direction: str = ""  # "", "in", "out", "inout"
    param_type: Type = field(default_factory=Type)
    name: str = ""


@dataclass
class Decl(Node):
    """Base declaration."""

    name: str = ""


@dataclass
class HeaderDecl(Decl):
    fields: List[Tuple[str, Type]] = field(default_factory=list)


@dataclass
class StructDecl(Decl):
    fields: List[Tuple[str, Type]] = field(default_factory=list)


@dataclass
class EnumDecl(Decl):
    members: List[str] = field(default_factory=list)


@dataclass
class TypedefDecl(Decl):
    aliased: Type = field(default_factory=Type)


@dataclass
class ConstDecl(Decl):
    const_type: Type = field(default_factory=Type)
    value: Expr = field(default_factory=Expr)


@dataclass
class InstanceDecl(Decl):
    """Instantiation inside a control: ``ipv4() ipv4_i;``."""

    target: str = ""  # program / extern type being instantiated
    type_args: List[Type] = field(default_factory=list)
    args: List[Expr] = field(default_factory=list)


@dataclass
class ActionDecl(Decl):
    params: List[Param] = field(default_factory=list)
    body: BlockStmt = field(default_factory=BlockStmt)


@dataclass
class KeyElement(Node):
    expr: Expr = field(default_factory=Expr)
    match_kind: str = "exact"


@dataclass
class TableEntry(Node):
    keysets: List[Expr] = field(default_factory=list)
    action_name: str = ""
    action_args: List[Expr] = field(default_factory=list)


@dataclass
class TableDecl(Decl):
    keys: List[KeyElement] = field(default_factory=list)
    actions: List[str] = field(default_factory=list)
    default_action: Optional[str] = None
    default_action_args: List[Expr] = field(default_factory=list)
    const_entries: List[TableEntry] = field(default_factory=list)
    size: Optional[int] = None


@dataclass
class ParserState(Node):
    name: str = ""
    stmts: List[Stmt] = field(default_factory=list)
    # Transition: either ("direct", state_name) or ("select", exprs, cases)
    select_exprs: List[Expr] = field(default_factory=list)
    select_cases: List[Tuple[List[Expr], str]] = field(default_factory=list)
    direct_next: Optional[str] = None


@dataclass
class ParserDecl(Decl):
    params: List[Param] = field(default_factory=list)
    locals: List[Decl] = field(default_factory=list)
    states: List[ParserState] = field(default_factory=list)

    def state(self, name: str) -> Optional[ParserState]:
        for st in self.states:
            if st.name == name:
                return st
        return None


@dataclass
class ControlDecl(Decl):
    params: List[Param] = field(default_factory=list)
    locals: List[Decl] = field(default_factory=list)
    apply_body: BlockStmt = field(default_factory=BlockStmt)


@dataclass
class ModuleSigDecl(Decl):
    """Forward signature of a µP4 module: ``L3(pkt p, im_t im, out ...);``"""

    params: List[Param] = field(default_factory=list)


@dataclass
class ProgramDecl(Decl):
    """µP4 package: ``program X : implements Unicast<...> { P; C; D }``."""

    interface: str = ""  # Unicast / Multicast / Orchestration
    interface_args: List[Type] = field(default_factory=list)
    decls: List[Decl] = field(default_factory=list)

    def block(self, kind: type, index: int = 0) -> Optional[Decl]:
        found = [d for d in self.decls if type(d) is kind]
        return found[index] if index < len(found) else None

    @property
    def parser(self) -> Optional[ParserDecl]:
        return self.block(ParserDecl)  # type: ignore[return-value]

    @property
    def controls(self) -> List[ControlDecl]:
        return [d for d in self.decls if isinstance(d, ControlDecl)]


@dataclass
class PackageInstantiation(Decl):
    """``ModularRouter(P, C, D) main;`` — selects the top-level program."""

    package: str = ""
    args: List[str] = field(default_factory=list)


@dataclass
class VarLocal(Decl):
    """Local variable declaration among control/parser locals."""

    var_type: Type = field(default_factory=Type)
    init: Optional[Expr] = None


@dataclass
class SourceProgram(Node):
    """A whole parsed compilation unit."""

    decls: List[Decl] = field(default_factory=list)
    filename: str = "<string>"

    def find(self, name: str) -> Optional[Decl]:
        for d in self.decls:
            if getattr(d, "name", None) == name:
                return d
        return None


LValue = Union[PathExpr, MemberExpr, IndexExpr, SliceExpr]
