"""µP4/P4₁₆ frontend: lexer, parser, AST, type checker, JSON IR.

The frontend accepts the P4₁₆ subset used throughout the paper plus the
µP4 extensions (``program X : implements Unicast<...> { ... }`` packages,
module signature declarations, logical externs).  Its output — a
type-checked :class:`~repro.frontend.typecheck.Module` — is the µP4-IR
consumed by the midend.
"""

from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_program
from repro.frontend.typecheck import Module, TypeChecker, check_program

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "Module",
    "TypeChecker",
    "check_program",
]
