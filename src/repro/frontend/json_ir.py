"""µP4-IR JSON serialization.

The paper's frontend "performs basic checks at the source level and
serializes the µP4-IR to JSON" (§5.1) so that modules can be compiled
once and linked later.  We serialize the *parsed AST* of a module; on
load the AST is reconstructed and re-checked, which both restores all
semantic annotations and re-validates the IR against the current builtin
environment (externs may evolve between compiler versions).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.errors import CompileError
from repro.frontend import astnodes as ast
from repro.frontend.source import SourceLocation
from repro.frontend.typecheck import Module, TypeChecker

IR_VERSION = 1

# Node registry: every concrete AST class addressable by name.
_NODE_CLASSES: Dict[str, type] = {
    name: obj
    for name, obj in vars(ast).items()
    if isinstance(obj, type) and issubclass(obj, ast.Node)
}


def node_to_dict(node: Any) -> Any:
    """Recursively convert an AST node tree to JSON-safe data."""
    # Named semantic types are serialized *by reference*: the checker
    # resolves TypeName nodes to shared HeaderType/StructType/... objects
    # in place, and inlining those here would duplicate (and detach) the
    # declarations they came from.
    if (
        isinstance(node, (ast.HeaderType, ast.StructType, ast.EnumType, ast.ExternType))
        and node.name
    ):
        args = [node_to_dict(a) for a in getattr(node, "type_args", [])]
        return {"!node": "TypeName", "name": node.name, "args": args}
    if isinstance(node, ast.Node):
        out: Dict[str, Any] = {"!node": type(node).__name__}
        for f in dataclasses.fields(node):
            if f.name in ("loc", "type", "decl"):
                continue  # locations/annotations are not part of the IR
            out[f.name] = node_to_dict(getattr(node, f.name))
        return out
    if isinstance(node, SourceLocation):
        return None
    if isinstance(node, (list, tuple)):
        return [node_to_dict(x) for x in node]
    if isinstance(node, dict):
        return {k: node_to_dict(v) for k, v in node.items()}
    if node is None or isinstance(node, (bool, int, str)):
        return node
    raise CompileError(f"cannot serialize {type(node).__name__} to µP4-IR JSON")


def dict_to_node(data: Any) -> Any:
    """Inverse of :func:`node_to_dict`."""
    if isinstance(data, dict) and "!node" in data:
        cls = _NODE_CLASSES.get(data["!node"])
        if cls is None:
            raise CompileError(f"unknown µP4-IR node kind {data['!node']!r}")
        kwargs = {}
        field_names = {f.name for f in dataclasses.fields(cls)}
        for key, value in data.items():
            if key == "!node" or key not in field_names:
                continue
            kwargs[key] = dict_to_node(value)
        node = cls(**kwargs)
        return node
    if isinstance(data, list):
        items = [dict_to_node(x) for x in data]
        return items
    if isinstance(data, dict):
        return {k: dict_to_node(v) for k, v in data.items()}
    return data


def _fix_tuples(node: Any) -> None:
    """Restore (name, type) tuples in header/struct field lists."""
    if isinstance(node, (ast.HeaderDecl, ast.StructDecl)):
        node.fields = [tuple(f) for f in node.fields]  # type: ignore[misc]
    if isinstance(node, ast.ParserState):
        node.select_cases = [tuple(c) for c in node.select_cases]  # type: ignore[misc]
    for child in _children(node):
        _fix_tuples(child)


def _children(node: Any):
    if isinstance(node, ast.Node):
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            yield from _children_of_value(value)


def _children_of_value(value: Any):
    if isinstance(value, ast.Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _children_of_value(item)


def dump_module(module: Module) -> str:
    """Serialize a checked module's source AST to µP4-IR JSON text."""
    payload = {
        "version": IR_VERSION,
        "name": module.name,
        "program": node_to_dict(module.source),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def load_module(text: str) -> Module:
    """Load µP4-IR JSON and re-check it into a :class:`Module`."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != IR_VERSION:
        raise CompileError(
            f"µP4-IR version mismatch: file has {version}, compiler wants "
            f"{IR_VERSION}"
        )
    source = dict_to_node(payload["program"])
    if not isinstance(source, ast.SourceProgram):
        raise CompileError("µP4-IR payload is not a SourceProgram")
    _fix_tuples(source)
    return TypeChecker(source, payload.get("name", "<ir>")).check()
