"""Token kinds for the µP4/P4₁₆ lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.frontend.source import SourceLocation


class TokenKind(enum.Enum):
    """Lexical classes.  Keywords get their own kinds for parser clarity."""

    # Literals / identifiers
    IDENT = "identifier"
    INT = "integer"
    STRING = "string"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LANGLE = "<"
    RANGLE = ">"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."
    QUESTION = "?"
    AT = "@"

    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    CONCAT = "++"
    EQ = "=="
    NEQ = "!="
    LE = "<="
    GE = ">="
    SHL = "<<"
    SHR = ">>"
    AND = "&&"
    OR = "||"
    NOT = "!"
    BITAND = "&"
    BITOR = "|"
    BITXOR = "^"
    BITNOT = "~"
    MASK = "&&&"
    RANGE = ".."
    UNDERSCORE = "_"

    # Keywords
    KW_HEADER = "header"
    KW_STRUCT = "struct"
    KW_ENUM = "enum"
    KW_TYPEDEF = "typedef"
    KW_CONST = "const"
    KW_PARSER = "parser"
    KW_CONTROL = "control"
    KW_STATE = "state"
    KW_TRANSITION = "transition"
    KW_SELECT = "select"
    KW_ACTION = "action"
    KW_TABLE = "table"
    KW_KEY = "key"
    KW_ACTIONS = "actions"
    KW_ENTRIES = "entries"
    KW_DEFAULT_ACTION = "default_action"
    KW_SIZE = "size"
    KW_APPLY = "apply"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_SWITCH = "switch"
    KW_RETURN = "return"
    KW_EXIT = "exit"
    KW_IN = "in"
    KW_OUT = "out"
    KW_INOUT = "inout"
    KW_BIT = "bit"
    KW_VARBIT = "varbit"
    KW_BOOL = "bool"
    KW_VOID = "void"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_DEFAULT = "default"
    KW_PROGRAM = "program"
    KW_IMPLEMENTS = "implements"
    KW_EXTERN = "extern"
    KW_PACKAGE = "package"
    KW_MAIN = "main"

    EOF = "<eof>"


KEYWORDS = {
    "header": TokenKind.KW_HEADER,
    "struct": TokenKind.KW_STRUCT,
    "enum": TokenKind.KW_ENUM,
    "typedef": TokenKind.KW_TYPEDEF,
    "const": TokenKind.KW_CONST,
    "parser": TokenKind.KW_PARSER,
    "control": TokenKind.KW_CONTROL,
    "state": TokenKind.KW_STATE,
    "transition": TokenKind.KW_TRANSITION,
    "select": TokenKind.KW_SELECT,
    "action": TokenKind.KW_ACTION,
    "table": TokenKind.KW_TABLE,
    "key": TokenKind.KW_KEY,
    "actions": TokenKind.KW_ACTIONS,
    "entries": TokenKind.KW_ENTRIES,
    "default_action": TokenKind.KW_DEFAULT_ACTION,
    "size": TokenKind.KW_SIZE,
    "apply": TokenKind.KW_APPLY,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "switch": TokenKind.KW_SWITCH,
    "return": TokenKind.KW_RETURN,
    "exit": TokenKind.KW_EXIT,
    "in": TokenKind.KW_IN,
    "out": TokenKind.KW_OUT,
    "inout": TokenKind.KW_INOUT,
    "bit": TokenKind.KW_BIT,
    "varbit": TokenKind.KW_VARBIT,
    "bool": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "default": TokenKind.KW_DEFAULT,
    "program": TokenKind.KW_PROGRAM,
    "implements": TokenKind.KW_IMPLEMENTS,
    "extern": TokenKind.KW_EXTERN,
    "package": TokenKind.KW_PACKAGE,
    "main": TokenKind.KW_MAIN,
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` carries the decoded payload: the identifier text, or for
    integers a tuple ``(width_or_None, int_value)`` decoded from P4's
    ``16w0x0800`` width-prefixed literal syntax.
    """

    kind: TokenKind
    text: str
    loc: SourceLocation
    value: Optional[object] = None

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"
