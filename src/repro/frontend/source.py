"""Source locations and diagnostic formatting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a source file: 1-based line and column."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOC = SourceLocation("<unknown>", 0, 0)


def format_snippet(source: str, loc: SourceLocation, message: str) -> str:
    """Render a caret-style diagnostic for ``loc`` inside ``source``.

    Returns just the message if the location is out of range.
    """
    lines = source.splitlines()
    if not (1 <= loc.line <= len(lines)):
        return f"{loc}: {message}"
    text = lines[loc.line - 1]
    caret = " " * max(loc.column - 1, 0) + "^"
    return f"{loc}: {message}\n    {text}\n    {caret}"


class SourceFile:
    """A named source text, used to attach locations to tokens."""

    def __init__(self, text: str, filename: str = "<string>") -> None:
        self.text = text
        self.filename = filename

    def location(self, line: int, column: int) -> SourceLocation:
        return SourceLocation(self.filename, line, column)

    def diagnostic(self, loc: SourceLocation, message: str) -> str:
        return format_snippet(self.text, loc, message)
