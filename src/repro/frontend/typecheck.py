"""Type checker for the µP4/P4₁₆ subset.

Performs name resolution, type resolution, expression typing, direction
(lvalue) checking, and µP4-specific structural checks: interface role
discovery inside ``program`` packages and derivation of each program's
user-level apply signature.  The annotated AST plus the symbol
information collected here constitute the µP4-IR handed to the midend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import TypeCheckError
from repro.frontend import astnodes as ast
from repro.frontend import builtins as bi
from repro.frontend.parser import parse_program


# ======================================================================
# Symbols and scopes
# ======================================================================


@dataclass
class Symbol:
    """A named entity visible in some scope."""

    name: str
    kind: str  # var | param | const | type | action | table | instance |
    #            program | module_sig | function
    type: Optional[ast.Type] = None
    decl: Optional[object] = None
    value: Optional[int] = None  # for consts


class Scope:
    """Lexical scope chain."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def define(self, sym: Symbol, loc=None) -> None:
        if sym.name in self.names:
            raise TypeCheckError(f"duplicate declaration of {sym.name!r}", loc)
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


# ======================================================================
# Module: the checker's output (µP4-IR)
# ======================================================================


@dataclass
class ProgramInfo:
    """Role assignment and derived signature for one µP4 program package."""

    decl: ast.ProgramDecl
    interface: str = ""
    parser: Optional[ast.ParserDecl] = None
    control: Optional[ast.ControlDecl] = None
    deparser: Optional[ast.ControlDecl] = None
    header_param: Optional[ast.Param] = None
    meta_param: Optional[ast.Param] = None
    user_params: List[ast.Param] = field(default_factory=list)
    instances: Dict[str, ast.InstanceDecl] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.decl.name

    def apply_signature(self) -> List[ast.Param]:
        """Full apply() parameter list: ``pkt, im_t`` then user params."""
        return [
            ast.Param(direction="", param_type=ast.TypeName(name="pkt"), name="p"),
            ast.Param(direction="", param_type=ast.TypeName(name="im_t"), name="im"),
            *self.user_params,
        ]


@dataclass
class Module:
    """A type-checked compilation unit (the µP4-IR of one source file)."""

    name: str
    source: ast.SourceProgram
    types: Dict[str, ast.Type] = field(default_factory=dict)
    consts: Dict[str, Symbol] = field(default_factory=dict)
    module_sigs: Dict[str, ast.ModuleSigDecl] = field(default_factory=dict)
    programs: Dict[str, ProgramInfo] = field(default_factory=dict)
    main: Optional[str] = None  # program selected by `Pkg(...) main;`

    def main_program(self) -> ProgramInfo:
        if self.main is not None:
            return self.programs[self.main]
        if len(self.programs) == 1:
            return next(iter(self.programs.values()))
        raise TypeCheckError(
            f"module {self.name!r} has no main package instantiation"
        )


# ======================================================================
# Checker
# ======================================================================


class TypeChecker:
    """Checks one :class:`~repro.frontend.astnodes.SourceProgram`."""

    def __init__(self, source: ast.SourceProgram, name: str = "") -> None:
        self.source = source
        self.module = Module(name=name or source.filename, source=source)
        self.globals = Scope()
        self._install_builtins()

    # ------------------------------------------------------------------
    def _install_builtins(self) -> None:
        for tname, ttype in bi.builtin_types().items():
            self.globals.define(Symbol(tname, "type", type=ttype))
            self.module.types[tname] = ttype
        for cname, (ctype, cvalue) in bi.builtin_consts().items():
            sym = Symbol(cname, "const", type=ctype, value=cvalue)
            self.globals.define(sym)
            self.module.consts[cname] = sym
        for fname, sigs in bi.builtin_functions().items():
            self.globals.define(Symbol(fname, "function", decl=sigs))

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self) -> Module:
        self._collect_types()
        self._collect_signatures()
        for decl in self.source.decls:
            if isinstance(decl, ast.ProgramDecl):
                self._check_program(decl)
            elif isinstance(decl, ast.PackageInstantiation):
                self._check_package_inst(decl)
        return self.module

    # ------------------------------------------------------------------
    # Pass 1: types and constants
    # ------------------------------------------------------------------
    def _collect_types(self) -> None:
        for decl in self.source.decls:
            if isinstance(decl, ast.HeaderDecl):
                fields = [(n, self.resolve_type(t)) for n, t in decl.fields]
                self._check_header_fields(decl, fields)
                htype = ast.HeaderType(loc=decl.loc, name=decl.name, fields=fields)
                self._define_type(decl.name, htype, decl.loc)
            elif isinstance(decl, ast.StructDecl):
                fields = [(n, self.resolve_type(t)) for n, t in decl.fields]
                stype = ast.StructType(loc=decl.loc, name=decl.name, fields=fields)
                self._define_type(decl.name, stype, decl.loc)
            elif isinstance(decl, ast.EnumDecl):
                etype = ast.EnumType(loc=decl.loc, name=decl.name, members=decl.members)
                self._define_type(decl.name, etype, decl.loc)
            elif isinstance(decl, ast.TypedefDecl):
                self._define_type(decl.name, self.resolve_type(decl.aliased), decl.loc)
            elif isinstance(decl, ast.ConstDecl):
                ctype = self.resolve_type(decl.const_type)
                value = self.const_eval(decl.value)
                sym = Symbol(decl.name, "const", type=ctype, value=value)
                self.globals.define(sym, decl.loc)
                self.module.consts[decl.name] = sym

    def _check_header_fields(
        self, decl: ast.HeaderDecl, fields: List[Tuple[str, ast.Type]]
    ) -> None:
        for i, (fname, ftype) in enumerate(fields):
            if isinstance(ftype, ast.VarBitType):
                if ftype.max_width % 8 != 0:
                    raise TypeCheckError(
                        f"varbit field {decl.name}.{fname} max width must be "
                        f"a multiple of 8",
                        decl.loc,
                    )
            elif not isinstance(ftype, ast.BitType):
                raise TypeCheckError(
                    f"header field {decl.name}.{fname} must be bit<N> or varbit",
                    decl.loc,
                )

    def _define_type(self, name: str, ttype: ast.Type, loc) -> None:
        self.globals.define(Symbol(name, "type", type=ttype), loc)
        self.module.types[name] = ttype

    # ------------------------------------------------------------------
    # Pass 2: program/module signatures
    # ------------------------------------------------------------------
    def _collect_signatures(self) -> None:
        for decl in self.source.decls:
            if isinstance(decl, ast.ModuleSigDecl):
                for p in decl.params:
                    p.param_type = self.resolve_type(p.param_type)
                self._validate_module_sig(decl)
                self.globals.define(Symbol(decl.name, "module_sig", decl=decl), decl.loc)
                self.module.module_sigs[decl.name] = decl
            elif isinstance(decl, ast.ProgramDecl):
                if decl.interface not in bi.INTERFACES:
                    raise TypeCheckError(
                        f"program {decl.name!r} implements unknown interface "
                        f"{decl.interface!r}",
                        decl.loc,
                    )
                existing = self.globals.names.get(decl.name)
                if existing is not None and existing.kind == "module_sig":
                    # A module signature may forward-declare a program of
                    # the same name; the program definition supersedes it.
                    self.globals.names[decl.name] = Symbol(
                        decl.name, "program", decl=decl
                    )
                else:
                    self.globals.define(
                        Symbol(decl.name, "program", decl=decl), decl.loc
                    )

    def _validate_module_sig(self, decl: ast.ModuleSigDecl) -> None:
        if len(decl.params) < 2:
            raise TypeCheckError(
                f"module signature {decl.name!r} must start with (pkt, im_t)",
                decl.loc,
            )
        t0, t1 = decl.params[0].param_type, decl.params[1].param_type
        if not (isinstance(t0, ast.ExternType) and t0.name == "pkt"):
            raise TypeCheckError(
                f"module signature {decl.name!r}: first parameter must be pkt",
                decl.loc,
            )
        if not (isinstance(t1, ast.ExternType) and t1.name == "im_t"):
            raise TypeCheckError(
                f"module signature {decl.name!r}: second parameter must be im_t",
                decl.loc,
            )

    # ------------------------------------------------------------------
    # Type resolution
    # ------------------------------------------------------------------
    def resolve_type(self, t: ast.Type) -> ast.Type:
        """Resolve :class:`TypeName` references to semantic types."""
        if isinstance(t, ast.TypeName):
            sym = self.globals.lookup(t.name)
            if sym is None or sym.kind != "type":
                raise TypeCheckError(f"unknown type {t.name!r}", t.loc)
            base = sym.type
            if t.args:
                resolved_args = [self.resolve_type(a) for a in t.args]
                if isinstance(base, ast.ExternType):
                    inst = ast.ExternType(
                        loc=t.loc, name=base.name, methods=base.methods
                    )
                    inst.type_args = resolved_args  # type: ignore[attr-defined]
                    return inst
                raise TypeCheckError(
                    f"type {t.name!r} does not take type arguments", t.loc
                )
            return base  # type: ignore[return-value]
        if isinstance(t, ast.HeaderStackType):
            return ast.HeaderStackType(
                loc=t.loc, element=self.resolve_type(t.element), size=t.size
            )
        if isinstance(t, (ast.HeaderType, ast.StructType, ast.EnumType)) and t.name:
            # A previous check may have resolved this reference in place;
            # re-resolve by name so midend passes that clone-and-recheck a
            # module see the *current* declaration, not a stale copy.
            sym = self.globals.lookup(t.name)
            if sym is not None and sym.kind == "type" and sym.type is not None:
                return sym.type
        return t

    # ------------------------------------------------------------------
    # Constant evaluation
    # ------------------------------------------------------------------
    def const_eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return int(expr.value)
        if isinstance(expr, ast.PathExpr):
            sym = self.globals.lookup(expr.name)
            if sym is not None and sym.kind == "const" and sym.value is not None:
                return sym.value
            raise TypeCheckError(f"{expr.name!r} is not a constant", expr.loc)
        if isinstance(expr, ast.BinaryExpr):
            left = self.const_eval(expr.left)
            right = self.const_eval(expr.right)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b,
                "%": lambda a, b: a % b,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "|": lambda a, b: a | b,
                "&": lambda a, b: a & b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op](left, right)
        raise TypeCheckError("expression is not compile-time constant", expr.loc)

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------
    def _check_program(self, decl: ast.ProgramDecl) -> None:
        info = ProgramInfo(decl=decl, interface=decl.interface)
        prog_scope = Scope(self.globals)
        for d in decl.decls:
            if isinstance(d, ast.ConstDecl):
                ctype = self.resolve_type(d.const_type)
                value = self.const_eval(d.value)
                prog_scope.define(Symbol(d.name, "const", type=ctype, value=value), d.loc)
        parsers = [d for d in decl.decls if isinstance(d, ast.ParserDecl)]
        controls = [d for d in decl.decls if isinstance(d, ast.ControlDecl)]
        if len(parsers) > 1:
            raise TypeCheckError(
                f"program {decl.name!r} has multiple parsers", decl.loc
            )
        info.parser = parsers[0] if parsers else None
        self._assign_roles(info, controls)
        if info.parser is not None:
            self._check_parser(info.parser, prog_scope, info)
        if info.control is not None:
            self._check_control(info.control, prog_scope, info)
        if info.deparser is not None:
            self._check_control(info.deparser, prog_scope, info)
        self._derive_user_params(info)
        self.module.programs[decl.name] = info

    def _assign_roles(self, info: ProgramInfo, controls: List[ast.ControlDecl]) -> None:
        """Split a program's controls into the main control and deparser.

        The deparser is the control with an ``emitter`` parameter; the main
        control is the remaining one (paper Fig. 11 roles, discovered
        structurally because examples elide unused parameters).
        """
        deparsers, mains = [], []
        for c in controls:
            types = [self.resolve_type(p.param_type) for p in c.params]
            if any(isinstance(t, ast.ExternType) and t.name == "emitter" for t in types):
                deparsers.append(c)
            else:
                mains.append(c)
        if len(deparsers) > 1 or len(mains) > 1:
            raise TypeCheckError(
                f"program {info.name!r}: ambiguous control roles", info.decl.loc
            )
        info.deparser = deparsers[0] if deparsers else None
        info.control = mains[0] if mains else None
        if info.control is None:
            raise TypeCheckError(
                f"program {info.name!r} has no main control block", info.decl.loc
            )
        roles = bi.INTERFACES[info.interface]["roles"]
        if "parser" in roles and info.parser is None and info.interface != "Orchestration":
            raise TypeCheckError(
                f"program {info.name!r} implements {info.interface} but has "
                f"no parser",
                info.decl.loc,
            )

    def _derive_user_params(self, info: ProgramInfo) -> None:
        """Compute the user-level I/O parameters of the program."""
        control = info.control
        assert control is not None
        parser_out_type: Optional[ast.Type] = None
        parser_meta_type: Optional[ast.Type] = None
        if info.parser is not None:
            for p in info.parser.params:
                rt = self.resolve_type(p.param_type)
                if p.direction == "out" and isinstance(
                    rt, (ast.StructType, ast.HeaderType)
                ):
                    parser_out_type = rt
                elif p.direction == "inout" and isinstance(rt, ast.StructType):
                    parser_meta_type = rt
        user: List[ast.Param] = []
        for p in control.params:
            rt = self.resolve_type(p.param_type)
            if isinstance(rt, ast.ExternType) and rt.name in (
                "pkt",
                "im_t",
                "mc_buf",
                "in_buf",
                "out_buf",
            ):
                continue
            if parser_out_type is not None and rt is parser_out_type:
                info.header_param = p
                continue
            if parser_meta_type is not None and rt is parser_meta_type:
                info.meta_param = p
                continue
            user.append(ast.Param(loc=p.loc, direction=p.direction, param_type=rt, name=p.name))
        info.user_params = user

    def _check_package_inst(self, decl: ast.PackageInstantiation) -> None:
        sym = self.globals.lookup(decl.package)
        if sym is None or sym.kind != "program":
            raise TypeCheckError(
                f"main instantiates unknown program {decl.package!r}", decl.loc
            )
        if self.module.main is not None:
            raise TypeCheckError("multiple main instantiations", decl.loc)
        self.module.main = decl.package

    # ------------------------------------------------------------------
    # Parsers
    # ------------------------------------------------------------------
    def _check_parser(
        self, decl: ast.ParserDecl, outer: Scope, info: ProgramInfo
    ) -> None:
        scope = Scope(outer)
        for p in decl.params:
            p.param_type = self.resolve_type(p.param_type)
            scope.define(Symbol(p.name, "param", type=p.param_type, decl=p), p.loc)
        self._check_locals(decl.locals, scope, info)
        state_names = {s.name for s in decl.states}
        state_names.update({"accept", "reject"})
        if decl.states and "start" not in {s.name for s in decl.states}:
            raise TypeCheckError(
                f"parser {decl.name!r} has no start state", decl.loc
            )
        for state in decl.states:
            st_scope = Scope(scope)
            for stmt in state.stmts:
                self._check_stmt(stmt, st_scope, info)
            if state.direct_next is not None:
                if state.direct_next not in state_names:
                    raise TypeCheckError(
                        f"transition to unknown state {state.direct_next!r}",
                        state.loc,
                    )
            elif state.select_exprs:
                subject_types = [
                    self._check_expr(e, st_scope, info) for e in state.select_exprs
                ]
                for keysets, target in state.select_cases:
                    if target not in state_names:
                        raise TypeCheckError(
                            f"select case targets unknown state {target!r}", state.loc
                        )
                    if len(keysets) != len(subject_types):
                        raise TypeCheckError(
                            "select case arity does not match select expression",
                            state.loc,
                        )
                    for ks, st in zip(keysets, subject_types):
                        self._check_keyset(ks, st, st_scope, info)

    # ------------------------------------------------------------------
    # Controls
    # ------------------------------------------------------------------
    def _check_control(
        self, decl: ast.ControlDecl, outer: Scope, info: ProgramInfo
    ) -> None:
        scope = Scope(outer)
        for p in decl.params:
            p.param_type = self.resolve_type(p.param_type)
            scope.define(Symbol(p.name, "param", type=p.param_type, decl=p), p.loc)
        self._check_locals(decl.locals, scope, info)
        self._check_stmt(decl.apply_body, Scope(scope), info)

    def _check_locals(
        self, locals_: List[ast.Decl], scope: Scope, info: ProgramInfo
    ) -> None:
        for d in locals_:
            if isinstance(d, ast.VarLocal):
                d.var_type = self.resolve_type(d.var_type)
                if d.init is not None:
                    itype = self._check_expr(d.init, scope, info)
                    self._check_assignable(d.var_type, itype, d.init)
                scope.define(Symbol(d.name, "var", type=d.var_type, decl=d), d.loc)
            elif isinstance(d, ast.ConstDecl):
                ctype = self.resolve_type(d.const_type)
                value = self.const_eval(d.value)
                scope.define(Symbol(d.name, "const", type=ctype, value=value), d.loc)
            elif isinstance(d, ast.InstanceDecl):
                self._check_instance(d, scope, info)
            elif isinstance(d, ast.ActionDecl):
                self._check_action(d, scope, info)
                scope.define(Symbol(d.name, "action", decl=d), d.loc)
            elif isinstance(d, ast.TableDecl):
                self._check_table(d, scope, info)
                scope.define(Symbol(d.name, "table", decl=d), d.loc)
            else:
                raise TypeCheckError(
                    f"unsupported local declaration {type(d).__name__}", d.loc
                )

    def _check_instance(
        self, d: ast.InstanceDecl, scope: Scope, info: ProgramInfo
    ) -> None:
        sym = self.globals.lookup(d.target)
        if sym is None:
            raise TypeCheckError(
                f"instantiation of unknown module or extern {d.target!r}", d.loc
            )
        if sym.kind in ("module_sig", "program"):
            d.kind = "module"  # type: ignore[attr-defined]
            info.instances[d.name] = d
            scope.define(Symbol(d.name, "instance", type=None, decl=d), d.loc)
        elif sym.kind == "type" and isinstance(sym.type, ast.ExternType):
            d.kind = "extern"  # type: ignore[attr-defined]
            scope.define(Symbol(d.name, "instance", type=sym.type, decl=d), d.loc)
        else:
            raise TypeCheckError(
                f"{d.target!r} cannot be instantiated", d.loc
            )

    def _check_action(
        self, d: ast.ActionDecl, scope: Scope, info: ProgramInfo
    ) -> None:
        act_scope = Scope(scope)
        for p in d.params:
            p.param_type = self.resolve_type(p.param_type)
            act_scope.define(Symbol(p.name, "param", type=p.param_type, decl=p), p.loc)
        self._check_stmt(d.body, act_scope, info)

    def _check_table(self, d: ast.TableDecl, scope: Scope, info: ProgramInfo) -> None:
        key_types: List[ast.Type] = []
        for key in d.keys:
            kt = self._check_expr(key.expr, scope, info)
            if key.match_kind not in ("exact", "lpm", "ternary", "range"):
                raise TypeCheckError(
                    f"unknown match kind {key.match_kind!r}", key.loc
                )
            key_types.append(kt)
        action_decls: Dict[str, ast.ActionDecl] = {}
        for aname in d.actions:
            asym = scope.lookup(aname)
            if aname == "NoAction":
                continue
            if asym is None or asym.kind != "action":
                raise TypeCheckError(
                    f"table {d.name!r} lists unknown action {aname!r}", d.loc
                )
            action_decls[aname] = asym.decl  # type: ignore[assignment]
        if d.default_action is not None and d.default_action != "NoAction":
            if d.default_action not in d.actions:
                # P4 allows defaults not in the action list only with care;
                # we require listing, like p4c does for const entries.
                raise TypeCheckError(
                    f"default_action {d.default_action!r} not in actions list",
                    d.loc,
                )
        for entry in d.const_entries:
            if len(entry.keysets) != len(d.keys):
                raise TypeCheckError(
                    f"entry arity {len(entry.keysets)} != key arity {len(d.keys)}",
                    entry.loc,
                )
            for ks, kt in zip(entry.keysets, key_types):
                self._check_keyset(ks, kt, scope, info)
            if entry.action_name != "NoAction" and entry.action_name not in d.actions:
                raise TypeCheckError(
                    f"entry action {entry.action_name!r} not in actions list",
                    entry.loc,
                )
            adecl = action_decls.get(entry.action_name)
            if adecl is not None:
                if len(entry.action_args) != len(adecl.params):
                    raise TypeCheckError(
                        f"entry passes {len(entry.action_args)} args to "
                        f"{entry.action_name!r} which takes {len(adecl.params)}",
                        entry.loc,
                    )
                for arg, p in zip(entry.action_args, adecl.params):
                    at = self._check_expr(arg, scope, info)
                    self._check_assignable(p.param_type, at, arg)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _check_stmt(self, stmt: ast.Stmt, scope: Scope, info: ProgramInfo) -> None:
        if isinstance(stmt, ast.BlockStmt):
            inner = Scope(scope)
            for s in stmt.stmts:
                self._check_stmt(s, inner, info)
        elif isinstance(stmt, ast.VarDeclStmt):
            stmt.var_type = self.resolve_type(stmt.var_type)
            if stmt.init is not None:
                itype = self._check_expr(stmt.init, scope, info)
                self._check_assignable(stmt.var_type, itype, stmt.init)
            scope.define(Symbol(stmt.name, "var", type=stmt.var_type, decl=stmt), stmt.loc)
        elif isinstance(stmt, ast.AssignStmt):
            lt = self._check_expr(stmt.lhs, scope, info)
            self._require_lvalue(stmt.lhs)
            rt = self._check_expr(stmt.rhs, scope, info)
            self._check_assignable(lt, rt, stmt.rhs)
        elif isinstance(stmt, ast.MethodCallStmt):
            self._check_expr(stmt.call, scope, info)
        elif isinstance(stmt, ast.IfStmt):
            ct = self._check_expr(stmt.cond, scope, info)
            if not isinstance(ct, ast.BoolType):
                raise TypeCheckError("if condition must be bool", stmt.cond.loc)
            self._check_stmt(stmt.then_body, scope, info)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, scope, info)
        elif isinstance(stmt, ast.SwitchStmt):
            st = self._check_expr(stmt.subject, scope, info)
            for case in stmt.cases:
                for ks in case.keysets:
                    self._check_keyset(ks, st, scope, info)
                if case.body is not None:
                    self._check_stmt(case.body, scope, info)
        elif isinstance(stmt, (ast.ReturnStmt, ast.ExitStmt, ast.EmptyStmt)):
            pass
        else:
            raise TypeCheckError(
                f"unsupported statement {type(stmt).__name__}", stmt.loc
            )

    # ------------------------------------------------------------------
    # Keysets
    # ------------------------------------------------------------------
    def _check_keyset(
        self, ks: ast.Expr, expected: ast.Type, scope: Scope, info: ProgramInfo
    ) -> None:
        if isinstance(ks, ast.DefaultExpr):
            ks.type = expected
            return
        if isinstance(ks, ast.MaskExpr):
            self._check_keyset(ks.value, expected, scope, info)
            self._check_keyset(ks.mask, expected, scope, info)
            ks.type = expected
            return
        if isinstance(ks, ast.RangeExpr):
            self._check_keyset(ks.lo, expected, scope, info)
            self._check_keyset(ks.hi, expected, scope, info)
            ks.type = expected
            return
        actual = self._check_expr(ks, scope, info)
        self._check_assignable(expected, actual, ks)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _check_expr(self, expr: ast.Expr, scope: Scope, info: ProgramInfo) -> ast.Type:
        t = self._expr_type(expr, scope, info)
        expr.type = t
        return t

    def _expr_type(self, expr: ast.Expr, scope: Scope, info: ProgramInfo) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            if expr.width is not None:
                return ast.BitType(width=expr.width)
            return ast.InfIntType()
        if isinstance(expr, ast.BoolLit):
            return ast.BoolType()
        if isinstance(expr, ast.PathExpr):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise TypeCheckError(f"unknown name {expr.name!r}", expr.loc)
            expr.decl = sym
            if sym.kind in ("var", "param", "instance"):
                return sym.type if sym.type is not None else ast.Type()
            if sym.kind == "const":
                return sym.type or ast.InfIntType()
            if sym.kind == "type":
                return sym.type  # enum name in member access position
            if sym.kind in ("action", "table", "function", "module_sig", "program"):
                return ast.Type()  # only meaningful as a call target
            raise TypeCheckError(f"cannot use {expr.name!r} here", expr.loc)
        if isinstance(expr, ast.MemberExpr):
            return self._member_type(expr, scope, info)
        if isinstance(expr, ast.IndexExpr):
            base_t = self._check_expr(expr.base, scope, info)
            if not isinstance(base_t, ast.HeaderStackType):
                raise TypeCheckError("indexing a non-header-stack", expr.loc)
            self._check_expr(expr.index, scope, info)
            return base_t.element
        if isinstance(expr, ast.SliceExpr):
            base_t = self._check_expr(expr.base, scope, info)
            if not isinstance(base_t, ast.BitType):
                raise TypeCheckError("slicing a non-bit value", expr.loc)
            if not (0 <= expr.lo <= expr.hi < base_t.width):
                raise TypeCheckError(
                    f"slice [{expr.hi}:{expr.lo}] out of range for {base_t}",
                    expr.loc,
                )
            return ast.BitType(width=expr.hi - expr.lo + 1)
        if isinstance(expr, ast.UnaryExpr):
            ot = self._check_expr(expr.operand, scope, info)
            if expr.op == "!":
                if not isinstance(ot, ast.BoolType):
                    raise TypeCheckError("'!' needs a bool operand", expr.loc)
                return ast.BoolType()
            if not isinstance(ot, (ast.BitType, ast.InfIntType)):
                raise TypeCheckError(f"{expr.op!r} needs a bit operand", expr.loc)
            return ot
        if isinstance(expr, ast.CastExpr):
            expr.target = self.resolve_type(expr.target)
            self._check_expr(expr.operand, scope, info)
            return expr.target
        if isinstance(expr, ast.BinaryExpr):
            return self._binary_type(expr, scope, info)
        if isinstance(expr, ast.MethodCallExpr):
            return self._call_type(expr, scope, info)
        if isinstance(expr, ast.DefaultExpr):
            return ast.Type()
        raise TypeCheckError(
            f"unsupported expression {type(expr).__name__}", expr.loc
        )

    def _member_type(
        self, expr: ast.MemberExpr, scope: Scope, info: ProgramInfo
    ) -> ast.Type:
        # Enum member access: meta_t.IN_PORT
        if isinstance(expr.base, ast.PathExpr):
            sym = scope.lookup(expr.base.name)
            if sym is not None and sym.kind == "type" and isinstance(sym.type, ast.EnumType):
                if expr.member not in sym.type.members:
                    raise TypeCheckError(
                        f"enum {sym.name!r} has no member {expr.member!r}", expr.loc
                    )
                expr.base.type = sym.type
                expr.base.decl = sym
                return sym.type
        base_t = self._check_expr(expr.base, scope, info)
        if isinstance(base_t, (ast.StructType, ast.HeaderType)):
            ft = base_t.field_type(expr.member)
            if ft is not None:
                return ft
            if isinstance(base_t, ast.HeaderType) and expr.member in (
                "isValid",
                "setValid",
                "setInvalid",
                "minSizeInBytes",
            ):
                return ast.Type()  # typed at the call
            raise TypeCheckError(
                f"{base_t} has no field {expr.member!r}", expr.loc
            )
        if isinstance(base_t, ast.ExternType):
            if expr.member in base_t.methods:
                return ast.Type()  # typed at the call
            raise TypeCheckError(
                f"extern {base_t.name!r} has no method {expr.member!r}", expr.loc
            )
        if isinstance(base_t, ast.HeaderStackType):
            if expr.member in ("next", "last", "lastIndex"):
                return (
                    ast.BitType(width=32)
                    if expr.member == "lastIndex"
                    else base_t.element
                )
            if expr.member in ("push_front", "pop_front"):
                return ast.Type()
            raise TypeCheckError(
                f"header stack has no member {expr.member!r}", expr.loc
            )
        # Instance apply: l3_i.apply — typed at the call site.
        if isinstance(expr.base, ast.PathExpr) and expr.base.decl is not None:
            sym = expr.base.decl
            if isinstance(sym, Symbol) and sym.kind == "instance":
                if expr.member == "apply":
                    return ast.Type()
        raise TypeCheckError(
            f"cannot access member {expr.member!r} of {base_t}", expr.loc
        )

    def _binary_type(
        self, expr: ast.BinaryExpr, scope: Scope, info: ProgramInfo
    ) -> ast.Type:
        lt = self._check_expr(expr.left, scope, info)
        rt = self._check_expr(expr.right, scope, info)
        op = expr.op
        if op in ("&&", "||"):
            if not (isinstance(lt, ast.BoolType) and isinstance(rt, ast.BoolType)):
                raise TypeCheckError(f"{op!r} needs bool operands", expr.loc)
            return ast.BoolType()
        if op in ("==", "!="):
            self._unify_operands(expr, lt, rt)
            return ast.BoolType()
        if op in ("<", ">", "<=", ">="):
            self._unify_operands(expr, lt, rt)
            return ast.BoolType()
        if op == "++":
            lw = self._bit_width_of(lt, expr.left)
            rw = self._bit_width_of(rt, expr.right)
            return ast.BitType(width=lw + rw)
        if op in ("<<", ">>"):
            if isinstance(lt, ast.InfIntType):
                raise TypeCheckError("shift of unsized literal", expr.loc)
            return lt
        # Arithmetic / bitwise: unify widths.
        unified = self._unify_operands(expr, lt, rt)
        return unified

    def _unify_operands(
        self, expr: ast.BinaryExpr, lt: ast.Type, rt: ast.Type
    ) -> ast.Type:
        if isinstance(lt, ast.InfIntType) and isinstance(rt, ast.InfIntType):
            return ast.InfIntType()
        if isinstance(lt, ast.InfIntType) and isinstance(rt, ast.BitType):
            expr.left.type = rt
            self._check_literal_fits(expr.left, rt)
            return rt
        if isinstance(rt, ast.InfIntType) and isinstance(lt, ast.BitType):
            expr.right.type = lt
            self._check_literal_fits(expr.right, lt)
            return lt
        if isinstance(lt, ast.BitType) and isinstance(rt, ast.BitType):
            if lt.width != rt.width:
                raise TypeCheckError(
                    f"width mismatch: {lt} vs {rt}", expr.loc
                )
            return lt
        if isinstance(lt, ast.EnumType) and isinstance(rt, ast.EnumType):
            if lt.name == rt.name:
                return lt
        if isinstance(lt, ast.BoolType) and isinstance(rt, ast.BoolType):
            return lt
        raise TypeCheckError(f"cannot combine {lt} and {rt}", expr.loc)

    def _bit_width_of(self, t: ast.Type, expr: ast.Expr) -> int:
        if isinstance(t, ast.BitType):
            return t.width
        raise TypeCheckError("operand needs a known bit width", expr.loc)

    def _check_literal_fits(self, expr: ast.Expr, t: ast.BitType) -> None:
        if isinstance(expr, ast.IntLit) and expr.value >= 1 << t.width:
            raise TypeCheckError(
                f"literal {expr.value} does not fit in {t}", expr.loc
            )

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _call_type(
        self, call: ast.MethodCallExpr, scope: Scope, info: ProgramInfo
    ) -> ast.Type:
        target = call.target
        # Bare function call: action, or builtin function like recirculate.
        if isinstance(target, ast.PathExpr):
            sym = scope.lookup(target.name)
            if sym is None:
                raise TypeCheckError(f"unknown callee {target.name!r}", target.loc)
            target.decl = sym
            if sym.kind == "action":
                return self._check_action_call(call, sym.decl, scope, info)
            if sym.kind == "function":
                call.resolved = ("builtin", target.name)  # type: ignore[attr-defined]
                return self._check_overloads(call, sym.decl, scope, info, target.name)
            raise TypeCheckError(
                f"{target.name!r} is not callable", target.loc
            )
        if not isinstance(target, ast.MemberExpr):
            raise TypeCheckError("unsupported call target", call.loc)
        # Header validity ops.
        base_t = self._check_expr(target.base, scope, info)
        if isinstance(base_t, ast.HeaderType):
            return self._check_header_op(call, target, base_t, scope, info)
        if isinstance(base_t, ast.HeaderStackType):
            return self._check_stack_op(call, target, base_t, scope, info)
        if isinstance(base_t, ast.ExternType):
            overloads = base_t.methods.get(target.member)
            if overloads is None:
                raise TypeCheckError(
                    f"extern {base_t.name!r} has no method {target.member!r}",
                    target.loc,
                )
            call.resolved = ("extern", base_t.name, target.member)  # type: ignore[attr-defined]
            return self._check_overloads(
                call, overloads, scope, info, f"{base_t.name}.{target.member}"
            )
        # Table apply or module-instance apply.
        if isinstance(target.base, ast.PathExpr) and isinstance(
            target.base.decl, Symbol
        ):
            sym = target.base.decl
            if sym.kind == "table" and target.member == "apply":
                call.resolved = ("table", sym.decl)  # type: ignore[attr-defined]
                if call.args:
                    raise TypeCheckError("table.apply() takes no arguments", call.loc)
                return ast.VoidType()
            if sym.kind == "instance" and target.member == "apply":
                return self._check_module_apply(call, sym, scope, info)
        raise TypeCheckError("cannot resolve method call", call.loc)

    def _check_header_op(
        self,
        call: ast.MethodCallExpr,
        target: ast.MemberExpr,
        base_t: ast.HeaderType,
        scope: Scope,
        info: ProgramInfo,
    ) -> ast.Type:
        op = target.member
        if op == "isValid":
            if call.args:
                raise TypeCheckError("isValid() takes no arguments", call.loc)
            call.resolved = ("header_op", "isValid")  # type: ignore[attr-defined]
            return ast.BoolType()
        if op in ("setValid", "setInvalid"):
            if call.args:
                raise TypeCheckError(f"{op}() takes no arguments", call.loc)
            self._require_lvalue(target.base)
            call.resolved = ("header_op", op)  # type: ignore[attr-defined]
            return ast.VoidType()
        if op == "minSizeInBytes":
            call.resolved = ("header_op", op)  # type: ignore[attr-defined]
            return ast.BitType(width=32)
        raise TypeCheckError(f"header has no method {op!r}", call.loc)

    def _check_stack_op(
        self,
        call: ast.MethodCallExpr,
        target: ast.MemberExpr,
        base_t: ast.HeaderStackType,
        scope: Scope,
        info: ProgramInfo,
    ) -> ast.Type:
        op = target.member
        if op in ("push_front", "pop_front"):
            if len(call.args) != 1:
                raise TypeCheckError(f"{op}() takes one argument", call.loc)
            self._check_expr(call.args[0], scope, info)
            call.resolved = ("stack_op", op)  # type: ignore[attr-defined]
            return ast.VoidType()
        raise TypeCheckError(f"header stack has no method {op!r}", call.loc)

    def _check_action_call(
        self,
        call: ast.MethodCallExpr,
        decl: ast.ActionDecl,
        scope: Scope,
        info: ProgramInfo,
    ) -> ast.Type:
        # Direct action invocations supply all parameters.
        if len(call.args) != len(decl.params):
            raise TypeCheckError(
                f"action {decl.name!r} takes {len(decl.params)} args, got "
                f"{len(call.args)}",
                call.loc,
            )
        for arg, p in zip(call.args, decl.params):
            at = self._check_expr(arg, scope, info)
            self._check_assignable(p.param_type, at, arg)
        call.resolved = ("action", decl)  # type: ignore[attr-defined]
        return ast.VoidType()

    def _check_module_apply(
        self, call: ast.MethodCallExpr, sym: Symbol, scope: Scope, info: ProgramInfo
    ) -> ast.Type:
        inst: ast.InstanceDecl = sym.decl  # type: ignore[assignment]
        target_sym = self.globals.lookup(inst.target)
        assert target_sym is not None
        if target_sym.kind == "module_sig":
            params = target_sym.decl.params  # type: ignore[union-attr]
        else:  # program declared in this file
            prog_info = self.module.programs.get(inst.target)
            if prog_info is not None:
                params = prog_info.apply_signature()
            elif inst.target in self.module.module_sigs:
                # Forward-declared by a module signature (e.g. recursive
                # composition, rejected later by the linker).
                params = self.module.module_sigs[inst.target].params
            else:
                raise TypeCheckError(
                    f"program {inst.target!r} must be declared before use",
                    call.loc,
                )
        if len(call.args) != len(params):
            raise TypeCheckError(
                f"{inst.target}.apply() takes {len(params)} args, got "
                f"{len(call.args)}",
                call.loc,
            )
        for arg, p in zip(call.args, params):
            at = self._check_expr(arg, scope, info)
            ptype = self.resolve_type(p.param_type)
            self._check_arg(ptype, p.direction, at, arg)
        call.resolved = ("module", inst)  # type: ignore[attr-defined]
        return ast.VoidType()

    def _check_overloads(
        self,
        call: ast.MethodCallExpr,
        overloads: List[ast.MethodSignature],
        scope: Scope,
        info: ProgramInfo,
        what: str,
    ) -> ast.Type:
        matching = [s for s in overloads if len(s.params) == len(call.args)]
        if not matching:
            raise TypeCheckError(
                f"no overload of {what} takes {len(call.args)} arguments",
                call.loc,
            )
        errors: List[str] = []
        for sig in matching:
            try:
                return self._check_call_against(call, sig, scope, info)
            except TypeCheckError as exc:
                errors.append(str(exc))
        raise TypeCheckError(
            f"no overload of {what} matches: " + "; ".join(errors), call.loc
        )

    def _check_call_against(
        self,
        call: ast.MethodCallExpr,
        sig: ast.MethodSignature,
        scope: Scope,
        info: ProgramInfo,
    ) -> ast.Type:
        bindings: Dict[str, ast.Type] = {}
        for arg, p in zip(call.args, sig.params):
            at = self._check_expr(arg, scope, info)
            ptype = p.param_type
            if isinstance(ptype, ast.TypeName) and ptype.name in sig.type_params:
                bound = bindings.get(ptype.name)
                if bound is None:
                    bindings[ptype.name] = at
                elif not self._types_match(bound, at):
                    raise TypeCheckError(
                        f"inconsistent binding for type parameter {ptype.name}",
                        arg.loc,
                    )
                if p.direction in ("out", "inout"):
                    self._require_lvalue(arg)
                continue
            if isinstance(ptype, ast.TypeName):
                ptype = self.resolve_type(ptype)
            self._check_arg(ptype, p.direction, at, arg)
        call.sig = sig  # type: ignore[attr-defined]
        call.type_bindings = bindings  # type: ignore[attr-defined]
        ret = sig.return_type
        if isinstance(ret, ast.TypeName) and ret.name in bindings:
            return bindings[ret.name]
        if isinstance(ret, ast.TypeName):
            return self.resolve_type(ret)
        return ret

    def _check_arg(
        self, ptype: ast.Type, direction: str, at: ast.Type, arg: ast.Expr
    ) -> None:
        if direction in ("out", "inout"):
            self._require_lvalue(arg)
        self._check_assignable(ptype, at, arg)

    # ------------------------------------------------------------------
    # Compatibility and lvalues
    # ------------------------------------------------------------------
    def _types_match(self, a: ast.Type, b: ast.Type) -> bool:
        if isinstance(a, ast.BitType) and isinstance(b, ast.BitType):
            return a.width == b.width
        if isinstance(a, (ast.StructType, ast.HeaderType, ast.EnumType)) and isinstance(
            b, (ast.StructType, ast.HeaderType, ast.EnumType)
        ):
            return type(a) is type(b) and a.name == b.name
        if isinstance(a, ast.ExternType) and isinstance(b, ast.ExternType):
            return a.name == b.name
        return type(a) is type(b)

    def _check_assignable(self, target: ast.Type, source: ast.Type, expr: ast.Expr) -> None:
        if isinstance(source, ast.InfIntType):
            if isinstance(target, ast.BitType):
                expr.type = target
                self._check_literal_fits(expr, target)
                return
            raise TypeCheckError(
                f"cannot use integer literal where {target} expected", expr.loc
            )
        if not self._types_match(target, source):
            raise TypeCheckError(
                f"type mismatch: expected {target}, got {source}", expr.loc
            )

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.PathExpr):
            sym = expr.decl
            if isinstance(sym, Symbol) and sym.kind == "const":
                raise TypeCheckError(
                    f"constant {expr.name!r} is not assignable", expr.loc
                )
            return
        if isinstance(expr, (ast.MemberExpr, ast.IndexExpr, ast.SliceExpr)):
            base = expr.base
            self._require_lvalue(base)
            return
        raise TypeCheckError("expression is not an lvalue", expr.loc)


# ======================================================================
# Convenience API
# ======================================================================


def check_program(text: str, name: str = "<string>") -> Module:
    """Parse and type-check ``text``, returning the µP4-IR Module."""
    from repro.obs.metrics import METRICS

    source = parse_program(text, name)
    module = TypeChecker(source, name).check()
    METRICS.inc("frontend.modules_checked")
    METRICS.inc("frontend.programs_checked", len(module.programs))
    return module
