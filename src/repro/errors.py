"""Shared exception hierarchy for the µP4 reproduction.

All compiler-facing errors derive from :class:`CompileError` so that tools
(and tests) can distinguish "the user's program is wrong" from internal
bugs.  Each stage refines the base class.

Every class carries two machine-readable attributes:

* ``code`` — a stable string identifying the error family (shown by the
  CLI as ``error[<code>]: ...`` and usable by scripts), and
* ``exit_code`` — the process exit status the CLI maps the class to:
  ``2`` for compile errors, ``3`` for target resource exhaustion, ``4``
  for behavioral-target runtime errors, ``1`` for other package errors.
  Unexpected (non-:class:`ReproError`) exceptions exit ``70`` (EX_SOFTWARE).

Instances may override ``code`` by assignment when a more specific
diagnostic tag is useful.
"""

from __future__ import annotations

from typing import Dict, Optional

#: CLI exit statuses (documented in ``python -m repro --help``).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_COMPILE_ERROR = 2
EXIT_RESOURCE_ERROR = 3
EXIT_TARGET_ERROR = 4
EXIT_INTERNAL_ERROR = 70
EXIT_INTERRUPTED = 130


class ReproError(Exception):
    """Base class for every error raised by this package."""

    code: str = "error"
    exit_code: int = EXIT_ERROR

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for ``--json`` CLI failure output.

        Always carries ``error``/``code``/``exit_code``; adds ``loc``
        (source location), ``reason`` and ``site`` (fault containment)
        when the concrete class defines them.
        """
        out: Dict[str, object] = {
            "error": str(self),
            "code": self.code,
            "exit_code": self.exit_code,
        }
        loc = getattr(self, "loc", None)
        if loc is not None:
            out["loc"] = str(loc)
        for extra in ("reason", "site"):
            value = getattr(self, extra, None)
            if value is not None:
                out[extra] = value
        return out


class CompileError(ReproError):
    """A µP4/P4 source program failed to compile.

    Parameters
    ----------
    message:
        Human-readable description.
    loc:
        Optional :class:`~repro.frontend.source.SourceLocation`.
    """

    code = "compile-error"
    exit_code = EXIT_COMPILE_ERROR

    def __init__(self, message: str, loc: Optional[object] = None) -> None:
        self.message = message
        self.loc = loc
        super().__init__(self._format())

    def _format(self) -> str:
        if self.loc is not None:
            return f"{self.loc}: {self.message}"
        return self.message


class LexError(CompileError):
    """Invalid character sequence in source text."""

    code = "lex-error"


class ParseError(CompileError):
    """Syntactically invalid source text."""

    code = "parse-error"


class TypeCheckError(CompileError):
    """Semantically invalid program (name/type/direction errors)."""

    code = "type-error"


class LinkError(CompileError):
    """Module composition failed (missing modules, cycles, arity)."""

    code = "link-error"


class AnalysisError(CompileError):
    """Static analysis could not bound the operational region."""

    code = "analysis-error"


class BackendError(CompileError):
    """Target code generation or resource allocation failed."""

    code = "backend-error"


class ResourceError(BackendError):
    """The target's hardware resources cannot fit the program.

    This mirrors ``bf-p4c`` rejecting a program (paper §6.3, Table 2's
    "Monolithic failed to compile" row).
    """

    code = "resource-error"
    exit_code = EXIT_RESOURCE_ERROR


class TargetError(ReproError):
    """Runtime error inside the behavioral target (bad entry, bad packet)."""

    code = "target-error"
    exit_code = EXIT_TARGET_ERROR


def exit_code_for(exc: BaseException) -> int:
    """CLI exit status for an exception (70 for non-package errors)."""
    if isinstance(exc, ReproError):
        return exc.exit_code
    return EXIT_INTERNAL_ERROR
