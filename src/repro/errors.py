"""Shared exception hierarchy for the µP4 reproduction.

All compiler-facing errors derive from :class:`CompileError` so that tools
(and tests) can distinguish "the user's program is wrong" from internal
bugs.  Each stage refines the base class.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CompileError(ReproError):
    """A µP4/P4 source program failed to compile.

    Parameters
    ----------
    message:
        Human-readable description.
    loc:
        Optional :class:`~repro.frontend.source.SourceLocation`.
    """

    def __init__(self, message: str, loc: Optional[object] = None) -> None:
        self.message = message
        self.loc = loc
        super().__init__(self._format())

    def _format(self) -> str:
        if self.loc is not None:
            return f"{self.loc}: {self.message}"
        return self.message


class LexError(CompileError):
    """Invalid character sequence in source text."""


class ParseError(CompileError):
    """Syntactically invalid source text."""


class TypeCheckError(CompileError):
    """Semantically invalid program (name/type/direction errors)."""


class LinkError(CompileError):
    """Module composition failed (missing modules, cycles, arity)."""


class AnalysisError(CompileError):
    """Static analysis could not bound the operational region."""


class BackendError(CompileError):
    """Target code generation or resource allocation failed."""


class ResourceError(BackendError):
    """The target's hardware resources cannot fit the program.

    This mirrors ``bf-p4c`` rejecting a program (paper §6.3, Table 2's
    "Monolithic failed to compile" row).
    """


class TargetError(ReproError):
    """Runtime error inside the behavioral target (bad entry, bad packet)."""
