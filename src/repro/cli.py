"""µP4C command-line interface.

Mirrors the paper's Fig. 4 usage of the compiler:

    # Stage 1: compile a module to µP4-IR JSON
    python -m repro compile l3.up4 -o l3.ir.json

    # Stage 2: link modules and build for a target
    python -m repro build main.up4 l3.up4 ipv4.up4 --target v1model -o main.p4
    python -m repro build main.up4 l3.up4 ipv4.up4 --target tna --report

    # Inspect the logical architecture or the library
    python -m repro arch
    python -m repro library

    # Regenerate the evaluation tables
    python -m repro eval

    # Profile the compiler passes over a library composition
    python -m repro profile P4

    # Soak the behavioral switch with randomized + injected faults
    python -m repro soak --programs P4,P7 --packets 50000 --fault-rate 0.1

    # Same stream fanned over 4 switch replicas (sharded engine)
    python -m repro soak --programs P4 --workers 4 --shard-policy flow-hash

    # Long run with a live /stats.json + /metrics endpoint and a final
    # JSON telemetry artifact
    python -m repro soak --workers 2 --stats-port 9200 --metrics-out final.json

    # Read a running endpoint (URL, host:port, bare port, or a file)
    python -m repro stats 9200
    python -m repro stats http://127.0.0.1:9200 --json

    # Stream per-packet traces as JSON lines
    python -m repro soak --packets 2000 --trace-out traces.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from contextlib import nullcontext as _nullcontext
from pathlib import Path
from typing import List, Optional

from repro.core.arch import describe_architecture
from repro.core.driver import CompilerOptions, Up4Compiler
from repro.errors import EXIT_INTERNAL_ERROR, EXIT_INTERRUPTED, ReproError
from repro.frontend.json_ir import load_module
from repro.obs.metrics import METRICS, collecting
from repro.obs.trace import Tracer
from repro.targets.backends import DEFAULT_EXEC_BACKEND, EXEC_BACKENDS

_EPILOG = """\
exit codes:
  0   success
  1   generic error
  2   compile error (lex / parse / typecheck / link / analysis / backend)
  3   target resource exhaustion (PHV, stages, ALU sources)
  4   behavioral-target error
  70  internal error (unexpected exception — please report)
  130 interrupted (SIGINT / Ctrl-C)

errors print as `error[<code>]: <message>` on stderr, where <code> is a
stable machine-readable slug (e.g. parse-error, resource-error).
"""


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _read_modules(paths: List[Path], compiler: Up4Compiler):
    """Compile .up4 sources (through the compiler, so spans and metrics
    are recorded) or load .json µP4-IR files."""
    modules = []
    for path in paths:
        text = path.read_text()
        if path.suffix == ".json":
            modules.append(load_module(text))
        else:
            modules.append(compiler.frontend(text, path.name))
    return modules


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record per-pass timing spans and print them when done",
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        metavar="FILE",
        help="collect compiler metrics; write the JSON snapshot to FILE "
        "(default: stdout)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON object instead of text",
    )


def _add_live_flags(parser: argparse.ArgumentParser) -> None:
    """Shared live-telemetry export flags (soak and profile)."""
    parser.add_argument(
        "--stats-port", type=int, default=None, metavar="PORT",
        help="serve the rolling merged telemetry snapshot over HTTP on "
        "127.0.0.1:PORT while the run is live (/stats.json, /metrics; "
        "0 binds an ephemeral port, printed to stderr)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the final merged telemetry snapshot as JSON to FILE",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="stream one schema-versioned JSON line of pkttrace events "
        "per packet to FILE (single-process runs only)",
    )


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    return Tracer(enabled=True) if getattr(args, "trace", False) else None


def _emit_observability(
    args: argparse.Namespace,
    tracer: Optional[Tracer],
    payload: Optional[dict] = None,
) -> None:
    """Print/write the trace table and metrics snapshot per CLI flags.

    In ``--json`` mode the spans and (stdout-destined) metrics are folded
    into ``payload`` instead of printed as text.
    """
    json_mode = payload is not None
    if tracer is not None:
        if json_mode:
            payload["trace"] = tracer.to_dicts()
        else:
            print()
            print(tracer.render_table())
    if args.metrics is not None:
        if args.metrics == "-":
            if json_mode:
                payload["metrics"] = METRICS.snapshot()
            else:
                print()
                print(METRICS.to_json())
        else:
            Path(args.metrics).write_text(METRICS.to_json() + "\n")
            if not json_mode:
                print(f"wrote {len(METRICS)} metrics to {args.metrics}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.api import save_ir

    compiler = Up4Compiler()
    module = _read_modules([Path(args.module)], compiler)[0]
    ir = save_ir(module)
    if args.output:
        Path(args.output).write_text(ir)
        print(f"wrote µP4-IR to {args.output}")
    else:
        print(ir)
    return 0


def _tna_report_text(report, verbose: bool) -> str:
    lines = [report.summary()]
    if verbose:
        lines.append("")
        lines.append("stage placement:")
        for stage, use in enumerate(report.schedule.stages):
            lines.append(f"  stage {stage:2d}: {', '.join(use.tables)}")
        counts = report.container_counts
        lines.append("")
        lines.append(
            f"PHV: 8b={counts[8]} 16b={counts[16]} 32b={counts[32]} "
            f"({report.bits_allocated} bits allocated)"
        )
        if report.split.violations:
            lines.append(
                f"split-pass fixes: {len(report.split.extra_depth)} tables"
            )
    return "\n".join(lines)


def cmd_build(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.modules]
    options = CompilerOptions(
        target=args.target,
        monolithic=args.monolithic,
        optimize_mats=args.optimize,
        align_fields=not args.no_align,
        split_assignments=not args.no_split,
    )
    tracer = _make_tracer(args)
    compiler = Up4Compiler(options, tracer=tracer)

    with collecting() if args.metrics is not None else _nullcontext():
        modules = _read_modules(paths, compiler)
        result = compiler.compile_modules(modules[0], modules[1:])

    region = result.region
    payload: Optional[dict] = None
    if args.json:
        payload = {
            "name": result.composed.name,
            "mode": result.composed.mode,
            "region": {
                "extract_length": region.extract_length,
                "byte_stack": region.byte_stack_size,
                "min_packet": region.min_packet_size,
            },
            "tables": len(result.composed.tables),
            "target": args.target,
        }
    else:
        print(
            f"composed {result.composed.name!r} [{result.composed.mode}]: "
            f"El={region.extract_length}B Bs={region.byte_stack_size}B "
            f"minpkt={region.min_packet_size}B, "
            f"{len(result.composed.tables)} MATs"
        )

    if args.target == "v1model":
        text = result.target_output.source_text
        if payload is not None:
            payload["source_lines"] = len(text.splitlines())
            if not args.output:
                payload["source_text"] = text
        if args.output:
            Path(args.output).write_text(text)
            if payload is None:
                print(f"wrote generated V1Model program to {args.output}")
            else:
                payload["output"] = args.output
        elif payload is None:
            print(text)
    else:
        report = result.target_output
        text = _tna_report_text(report, args.report or bool(args.output))
        if payload is not None:
            payload["report"] = report.to_dict()
        if args.output:
            Path(args.output).write_text(text + "\n")
            if payload is None:
                print(f"wrote TNA resource report to {args.output}")
            else:
                payload["output"] = args.output
        elif payload is None:
            print(text)

    _emit_observability(args, tracer, payload)
    if payload is not None:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_arch(args: argparse.Namespace) -> int:
    print(describe_architecture())
    return 0


def cmd_library(args: argparse.Namespace) -> int:
    from repro.lib.catalog import COMPOSITIONS, composition_matrix
    from repro.lib.loader import list_sources

    print("library modules (src/repro/lib/modules):")
    for name in list_sources("modules"):
        print(f"  {name}")
    print("\nmonolithic baselines (src/repro/lib/monolithic):")
    for name in list_sources("monolithic"):
        print(f"  {name}")
    print("\ncompositions:")
    for prog, recipe in COMPOSITIONS.items():
        print(f"  {prog}: {' + '.join(recipe)}")
    print()
    print(composition_matrix())
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.backend.tna import TnaBackend
    from repro.backend.tna.report import overhead_row
    from repro.errors import ResourceError
    from repro.lib.catalog import PROGRAMS, build_monolithic, build_pipeline

    backend = TnaBackend()
    tracer = _make_tracer(args)
    rows = []
    with collecting() if args.metrics is not None else _nullcontext():
        for name in PROGRAMS:
            span = tracer.span(f"eval.{name}") if tracer else _nullcontext()
            with span:
                micro = backend.compile(build_pipeline(name, tracer=tracer))
                try:
                    mono = backend.compile(build_monolithic(name))
                except ResourceError:
                    mono = None
            rows.append(overhead_row(name, micro, mono))

    payload: Optional[dict] = None
    if args.json:
        payload = {"rows": [row.to_dict() for row in rows]}
    else:
        print("Table 2/3 — µP4 vs monolithic on the modeled Tofino")
        print(
            f"{'prog':4s} {'8b%':>8s} {'16b%':>8s} {'32b%':>8s} "
            f"{'bits%':>8s}   stages"
        )
        for row in rows:
            print(row.render())

    _emit_observability(args, tracer, payload)
    if payload is not None:
        print(json.dumps(payload, indent=2))
    return 0


def _profile_mix() -> List[bytes]:
    """The profile run's 3-packet template mix (ipv4 / ipv6 / unknown)."""
    from repro.net.build import PacketBuilder

    def _eth(ethertype: int):
        return PacketBuilder().ethernet(
            "02:00:00:00:00:01", "02:00:00:00:00:02", ethertype
        )

    return [
        _eth(0x0800)
        .ipv4("192.168.0.1", "10.0.0.5", 6)
        .payload(b"profile")
        .build()
        .tobytes(),
        _eth(0x86DD)
        .ipv6("fd00::1", "2001:db8::5", 59, payload_len=7)
        .payload(b"profile")
        .build()
        .tobytes(),
        _eth(0x9999).payload(b"profile").build().tobytes(),
    ]


def _table_strategies(composed) -> dict:
    from repro.targets.pipeline import PipelineInstance
    from repro.targets.runtime_api import RuntimeAPI

    strategies: dict = {}
    for info in RuntimeAPI(PipelineInstance(composed)).lookup_info().values():
        name = str(info["strategy"])
        strategies[name] = strategies.get(name, 0) + 1
    return strategies


def _run_profile_packets(
    composed,
    count: int,
    exec_backend: str = "interp",
    telemetry=None,
    trace_writer=None,
) -> dict:
    """Push ``count`` synthetic packets through the behavioral target so
    the ``interp.*``/``compiled.*`` lookup counters have something to
    report."""
    import time

    from repro.net.packet import Packet
    from repro.targets.backends import make_pipeline

    mix = _profile_mix()
    instance = make_pipeline(composed, exec_backend=exec_backend)
    program = str(getattr(composed, "name", "profile"))
    epoch = 0
    next_publish = time.monotonic() + 0.5
    outputs = 0
    start = time.perf_counter()
    for i in range(count):
        if trace_writer is not None:
            from repro.obs.pkttrace import PacketTrace

            trace = PacketTrace()
            outputs += len(instance.process(Packet(mix[i % len(mix)]), 1, trace))
            trace_writer.write(trace, i, program=program)
        else:
            outputs += len(instance.process(Packet(mix[i % len(mix)]), 1))
        if telemetry is not None and time.monotonic() >= next_publish:
            epoch += 1
            telemetry.publish(
                program, 0, epoch, METRICS.snapshot(),
                ledger={"in": i + 1, "out": outputs},
            )
            next_publish = time.monotonic() + 0.5
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        telemetry.publish(
            program, 0, epoch + 1, METRICS.snapshot(),
            ledger={"in": count, "out": outputs}, final=True,
        )
    return {
        "packets": count,
        "outputs": outputs,
        "exec": exec_backend,
        "elapsed_ms": round(elapsed * 1000, 3),
        "pkts_per_sec": round(count / elapsed, 1) if elapsed > 0 else None,
        "lookups": {
            # TableRuntime counts lookups under interp.lookup.* for both
            # backends (it is runtime-layer state, not backend code);
            # hit/miss counters are per-backend.
            "indexed": METRICS.counter("interp.lookup.indexed"),
            "scan": METRICS.counter("interp.lookup.scan"),
            "hits": METRICS.counter(f"{exec_backend}.table_hits"),
            "misses": METRICS.counter(f"{exec_backend}.table_misses"),
        },
        "table_strategies": _table_strategies(composed),
    }


def _run_profile_sharded(
    composed, count: int, workers: int, policy: str,
    exec_backend: str = "interp",
    telemetry=None,
) -> dict:
    """Fan the synthetic profile push over engine worker processes."""
    from repro.targets.engine import EngineConfig, run_profile_shards

    engine = EngineConfig(
        workers=workers,
        shard_policy=policy,
        publish_interval_s=0.5 if telemetry is not None else 0.0,
    )
    behavior = run_profile_shards(
        composed, _profile_mix(), count, engine, exec_backend=exec_backend,
        telemetry=telemetry,
    )
    behavior["table_strategies"] = _table_strategies(composed)
    return behavior


def _setup_telemetry(args: argparse.Namespace):
    """Build (telemetry, server, trace_writer) from the shared live-export
    flags; server (when requested) is already started and announced."""
    telemetry = server = trace_writer = None
    if args.stats_port is not None or args.metrics_out:
        from repro.obs.telemetry import LiveTelemetry, StatsServer

        telemetry = LiveTelemetry()
        if args.stats_port is not None:
            try:
                server = StatsServer(telemetry, port=args.stats_port).start()
            except OSError as exc:
                # Busy or privileged port: surface a reason-coded CLI
                # error (exit 4, --json aware) instead of a traceback.
                from repro.errors import TargetError

                err = TargetError(
                    f"cannot serve --stats-port {args.stats_port}: "
                    f"{exc.strerror or exc}"
                )
                err.code = "stats-port-unavailable"
                raise err from exc
            print(
                f"stats: {server.url}/stats.json (Prometheus: /metrics)",
                file=sys.stderr,
            )
    if args.trace_out:
        from repro.obs.telemetry import TraceWriter

        trace_writer = TraceWriter(args.trace_out)
    return telemetry, server, trace_writer


def _finish_telemetry(
    args: argparse.Namespace, telemetry, server, trace_writer,
    announce: bool = True,
) -> None:
    if trace_writer is not None:
        trace_writer.close()
        if announce:
            print(
                f"wrote {trace_writer.lines} trace lines to {args.trace_out}",
                file=sys.stderr,
            )
    if server is not None:
        server.close()
    if args.metrics_out and telemetry is not None:
        Path(args.metrics_out).write_text(telemetry.to_json() + "\n")
        if announce:
            print(
                f"wrote telemetry snapshot to {args.metrics_out}",
                file=sys.stderr,
            )


def cmd_soak(args: argparse.Namespace) -> int:
    """Soak/fuzz the behavioral switch under randomized + injected faults."""
    from repro.targets.soak import SoakConfig, render_summary, run_soak

    fault_spec = None
    if args.fault_spec:
        fault_spec = json.loads(Path(args.fault_spec).read_text())
    config = SoakConfig(
        programs=[p.strip() for p in args.programs.split(",") if p.strip()],
        packets=args.packets,
        seed=args.seed,
        fault_rate=args.fault_rate,
        fault_spec=fault_spec,
        mode=args.mode,
        strict=args.strict,
        traffic=args.traffic,
        exec_backend=args.exec,
        flight_recorder=args.flight_recorder,
        batch_lanes=args.batch_lanes,
    )
    telemetry, server, trace_writer = _setup_telemetry(args)
    engine = None
    if args.workers:
        from repro.targets.engine import EngineConfig
        from repro.targets.faults import ChaosPlan
        from repro.targets.supervision import RestartPolicy

        if args.ingest == "replay":
            import warnings

            warnings.warn(
                "--ingest replay is deprecated (kept for benchmark "
                "comparison only); use --ingest dispatch",
                DeprecationWarning,
                stacklevel=2,
            )
            if not args.json:
                print(
                    "note: --ingest replay is deprecated; "
                    "use --ingest dispatch",
                    file=sys.stderr,
                )

        restart = None
        if (
            args.max_restarts is not None
            or args.restart_budget is not None
            or args.restart_backoff is not None
        ):
            defaults = RestartPolicy()
            restart = RestartPolicy(
                max_restarts_per_shard=(
                    args.max_restarts
                    if args.max_restarts is not None
                    else defaults.max_restarts_per_shard
                ),
                restart_budget=(
                    args.restart_budget
                    if args.restart_budget is not None
                    else defaults.restart_budget
                ),
                backoff_base_s=(
                    args.restart_backoff
                    if args.restart_backoff is not None
                    else defaults.backoff_base_s
                ),
            )
        engine = EngineConfig(
            workers=args.workers,
            shard_policy=args.shard_policy,
            ingest=args.ingest,
            publish_interval_s=(
                args.publish_interval if telemetry is not None else 0.0
            ),
            restart=restart,
            chaos=ChaosPlan.from_specs(args.chaos) if args.chaos else None,
        )
    elif args.chaos:
        from repro.errors import TargetError

        raise TargetError(
            "--chaos injects process-level faults into pool workers; "
            "it requires --workers N (sharded dispatch mode)"
        )
    try:
        # Single-process runs need the parent registry live for the
        # published snapshots; sharded workers enable their own.
        live_local = telemetry is not None and engine is None
        with collecting() if live_local else _nullcontext():
            summary = run_soak(
                config,
                engine=engine,
                telemetry=telemetry,
                trace_writer=trace_writer,
            )
    finally:
        _finish_telemetry(
            args, telemetry, server, trace_writer, announce=not args.json
        )
    text = json.dumps(summary, indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n")
    if args.json:
        print(text)
    else:
        print(render_summary(summary))
        if args.out:
            print(f"wrote JSON summary to {args.out}")
    return 0 if summary["ok"] else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Read a live ``/stats.json`` endpoint or a saved snapshot file."""
    from repro.obs.telemetry import fetch_snapshot, render_stats

    try:
        snapshot = fetch_snapshot(args.source, timeout=args.timeout)
    except OSError as exc:
        print(f"error[stats-unreachable]: {args.source}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_stats(snapshot))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Compile with tracing always on and print the per-pass table."""
    from repro.lib.catalog import COMPOSITIONS, EXTRA_COMPOSITIONS
    from repro.lib.loader import load_module_source

    tracer = Tracer(enabled=True)
    options = CompilerOptions(
        target=args.target, optimize_mats=args.optimize
    )
    compiler = Up4Compiler(options, tracer=tracer)

    with collecting():
        if len(args.modules) == 1 and not Path(args.modules[0]).suffix:
            name = args.modules[0]
            recipe = COMPOSITIONS.get(name) or EXTRA_COMPOSITIONS.get(name)
            if recipe is None:
                from repro.errors import CompileError

                known = ", ".join(sorted({*COMPOSITIONS, *EXTRA_COMPOSITIONS}))
                raise CompileError(
                    f"unknown composition {name!r}; known: {known} "
                    f"(or pass .up4 module files, main first)"
                )
            modules = [
                compiler.frontend(load_module_source(m), f"{m}.up4")
                for m in recipe
            ]
        else:
            modules = _read_modules([Path(p) for p in args.modules], compiler)
        result = compiler.compile_modules(modules[0], modules[1:])
        behavior = None
        if args.trace_out and args.workers:
            from repro.errors import TargetError

            raise TargetError(
                "--trace-out requires a single-process run (no --workers)"
            )
        telemetry, server, trace_writer = _setup_telemetry(args)
        try:
            if args.packets:
                if args.workers:
                    behavior = _run_profile_sharded(
                        result.composed, args.packets,
                        args.workers, args.shard_policy,
                        exec_backend=args.exec,
                        telemetry=telemetry,
                    )
                else:
                    behavior = _run_profile_packets(
                        result.composed, args.packets, exec_backend=args.exec,
                        telemetry=telemetry, trace_writer=trace_writer,
                    )
        finally:
            _finish_telemetry(
                args, telemetry, server, trace_writer,
                announce=not args.json,
            )

    if args.json:
        payload = {
            "name": result.composed.name,
            "target": args.target,
            "trace": tracer.to_dicts(),
            "total_ms": tracer.total_ms(),
        }
        if behavior is not None:
            payload["behavior"] = behavior
        if args.metrics is not None and args.metrics != "-":
            Path(args.metrics).write_text(METRICS.to_json() + "\n")
            payload["metrics_file"] = args.metrics
        else:
            payload["metrics"] = METRICS.snapshot()
        print(json.dumps(payload, indent=2))
        return 0

    print(f"profile of {result.composed.name!r} --target {args.target}")
    print()
    print(tracer.render_table())
    if behavior is not None:
        lookups = behavior["lookups"]
        strategies = ", ".join(
            f"{n} {s}" for s, n in sorted(behavior["table_strategies"].items())
        )
        print()
        print(
            f"behavioral run: {behavior['packets']} packets -> "
            f"{behavior['outputs']} outputs "
            f"({behavior['pkts_per_sec']:.0f} pkt/s)"
        )
        if "workers" in behavior:
            print(
                f"  workers: {behavior['workers']} "
                f"({behavior['shard_policy']}), aggregate "
                f"{behavior['aggregate_pkts_per_sec']:.0f} pkt/s"
            )
        print(
            f"  table lookups: indexed={lookups['indexed']} "
            f"scan={lookups['scan']} hits={lookups['hits']} "
            f"misses={lookups['misses']}"
        )
        print(f"  lookup strategies: {strategies}")
    if args.metrics is not None:
        if args.metrics == "-":
            print()
            print(METRICS.to_json())
        else:
            Path(args.metrics).write_text(METRICS.to_json() + "\n")
            print(f"\nwrote {len(METRICS)} metrics to {args.metrics}")
    return 0


# ----------------------------------------------------------------------
# Parser and entry point
# ----------------------------------------------------------------------
def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="µP4C — the µP4 compiler (SIGCOMM 2020 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile one µP4 module to µP4-IR JSON (Fig. 4a)"
    )
    p_compile.add_argument("module", help=".up4 source file")
    p_compile.add_argument("-o", "--output", help="write IR here")
    p_compile.set_defaults(func=cmd_compile)

    p_build = sub.add_parser(
        "build", help="link modules and build for a target (Fig. 4b)"
    )
    p_build.add_argument(
        "modules", nargs="+", help="main module first, then libraries "
        "(.up4 source or .json µP4-IR)"
    )
    p_build.add_argument("--target", choices=("v1model", "tna"), default="v1model")
    p_build.add_argument("--monolithic", action="store_true")
    p_build.add_argument("--optimize", action="store_true",
                         help="elide trivial synthesized MATs (§8.1)")
    p_build.add_argument("--no-align", action="store_true",
                         help="disable the TNA field-alignment pass (§6.3)")
    p_build.add_argument("--no-split", action="store_true",
                         help="disable the assignment-split pass (§6.3)")
    p_build.add_argument("--report", action="store_true",
                         help="print the TNA resource report")
    p_build.add_argument("-o", "--output",
                         help="write generated code (v1model) or the "
                         "resource report (tna) here")
    _add_obs_flags(p_build)
    p_build.set_defaults(func=cmd_build)

    p_arch = sub.add_parser("arch", help="describe the µPA logical architecture")
    p_arch.set_defaults(func=cmd_arch)

    p_lib = sub.add_parser("library", help="list library modules and compositions")
    p_lib.set_defaults(func=cmd_library)

    p_eval = sub.add_parser("eval", help="regenerate the evaluation tables")
    _add_obs_flags(p_eval)
    p_eval.set_defaults(func=cmd_eval)

    p_profile = sub.add_parser(
        "profile",
        help="compile with pass tracing on and print a per-pass "
        "time/size table",
    )
    p_profile.add_argument(
        "modules",
        nargs="+",
        help="a catalog composition name (P1–P8) or module files "
        "(main first, then libraries)",
    )
    p_profile.add_argument(
        "--target", choices=("v1model", "tna"), default="tna"
    )
    p_profile.add_argument("--optimize", action="store_true",
                           help="elide trivial synthesized MATs (§8.1)")
    p_profile.add_argument(
        "--packets", type=int, default=0, metavar="N",
        help="also push N synthetic packets through the behavioral "
        "target and report table-lookup counters (indexed vs. scan)",
    )
    p_profile.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="shard the --packets push over N worker processes "
        "(pipeline replicas) and merge the lookup counters",
    )
    p_profile.add_argument(
        "--shard-policy", choices=("flow-hash", "round-robin"),
        default="flow-hash",
        help="how --workers assigns packets to shards (default: flow-hash)",
    )
    p_profile.add_argument(
        "--exec", choices=EXEC_BACKENDS, default=DEFAULT_EXEC_BACKEND,
        help="execution backend for the --packets push: tree-walking "
        "interpreter (default), the closure-compiled pipeline, or the "
        "source-codegen pipeline",
    )
    p_profile.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        metavar="FILE",
        help="also print (or write to FILE) the metrics JSON snapshot",
    )
    p_profile.add_argument("--json", action="store_true",
                           help="emit spans and metrics as one JSON object")
    _add_live_flags(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_soak = sub.add_parser(
        "soak",
        help="push randomized + fault-injected packets through compiled "
        "compositions, asserting containment and exact drop accounting",
    )
    p_soak.add_argument(
        "--programs", default="P4,P7", metavar="LIST",
        help="comma-separated catalog compositions (default: P4,P7)",
    )
    p_soak.add_argument("--packets", type=int, default=50_000, metavar="N",
                        help="packets per program (default: 50000)")
    p_soak.add_argument("--seed", type=int, default=1234,
                        help="RNG seed for packets and fault injection")
    p_soak.add_argument(
        "--fault-rate", type=float, default=0.1, metavar="R",
        help="base injected-fault rate in [0,1] (default: 0.1; 0 disables)",
    )
    p_soak.add_argument(
        "--fault-spec", metavar="FILE",
        help="JSON FaultPlan spec {\"seed\": ..., \"sites\": {site: rate}} "
        "overriding --fault-rate (sites: corrupt, truncate, table[:name], "
        "extern[:name], buffer)",
    )
    p_soak.add_argument("--mode", choices=("micro", "mono"), default="micro")
    p_soak.add_argument(
        "--traffic", choices=("mixed", "routable"), default="mixed",
        help="packet mix: hostile fuzz corpus (mixed, default) or "
        "well-formed fast-path traffic (routable)",
    )
    p_soak.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan each program's stream over N worker processes "
        "(switch replicas); the merged digest is a pure function of "
        "(seed, workers, shard-policy)",
    )
    p_soak.add_argument(
        "--shard-policy", choices=("flow-hash", "round-robin"),
        default="flow-hash",
        help="how --workers assigns packets to shards (default: flow-hash)",
    )
    p_soak.add_argument(
        "--ingest", choices=("replay", "dispatch"), default="dispatch",
        help="how packets reach the workers: the parent generates the "
        "stream once and dispatches over shared-memory rings to a "
        "resident pool (dispatch, default), or every worker replays the "
        "full stream and filters to its shard (replay, deprecated); "
        "the digest is identical either way",
    )
    p_soak.add_argument(
        "--exec", choices=EXEC_BACKENDS, default=DEFAULT_EXEC_BACKEND,
        help="execution backend (interp default); the verdict-stream "
        "digest is backend-independent by construction",
    )
    p_soak.add_argument(
        "--strict", action="store_true",
        help="disable containment: re-raise the first per-packet fault",
    )
    p_soak.add_argument("--out", metavar="FILE",
                        help="also write the JSON summary to FILE")
    p_soak.add_argument("--json", action="store_true",
                        help="print the JSON summary instead of text")
    _add_live_flags(p_soak)
    p_soak.add_argument(
        "--publish-interval", type=float, default=0.5, metavar="S",
        help="seconds between live telemetry publishes from each worker "
        "(default: 0.5; only active with --stats-port/--metrics-out)",
    )
    p_soak.add_argument(
        "--flight-recorder", type=int, default=64, metavar="N",
        help="keep the last N verdicts per shard for post-mortem dumps "
        "on uncaught escapes or ledger mismatch (default: 64; 0 disables)",
    )
    p_soak.add_argument(
        "--batch-lanes", type=int, default=256, metavar="N",
        help="lanes per SoA batch handed to the switch (default: 256); "
        "verdicts are batch-boundary-independent so this tunes "
        "throughput without moving the digest",
    )
    p_soak.add_argument(
        "--chaos", action="append", default=[], metavar="SPEC",
        help="inject a process-level fault into a pool worker (repeatable; "
        "requires --workers): kill:shard=K@pkt=N (SIGKILL at dispatch "
        "position N), stop:shard=K@pkt=N[@resume=S] (SIGSTOP, SIGCONT "
        "after S seconds), stall:shard=K@pkt=N[@for=S][@attempt=A] "
        "(worker sleeps S seconds before packet N); the supervised pool "
        "must still reproduce the undisturbed digest",
    )
    p_soak.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="supervised restarts allowed per shard per run before the "
        "shard is abandoned (default: 2; 0 restores fail-fast)",
    )
    p_soak.add_argument(
        "--restart-budget", type=int, default=None, metavar="N",
        help="total supervised restarts allowed across all shards per "
        "run (default: 8)",
    )
    p_soak.add_argument(
        "--restart-backoff", type=float, default=None, metavar="S",
        help="base backoff before the first restart of a shard; doubles "
        "per restart, deterministically jittered from the seed "
        "(default: 0.1)",
    )
    p_soak.set_defaults(func=cmd_soak)

    p_stats = sub.add_parser(
        "stats",
        help="read a live telemetry endpoint (/stats.json) or a saved "
        "snapshot file and render it",
    )
    p_stats.add_argument(
        "source",
        help="URL, host:port, bare port (assumes 127.0.0.1), or a "
        "JSON snapshot file written by --metrics-out",
    )
    p_stats.add_argument("--timeout", type=float, default=5.0, metavar="S",
                         help="HTTP timeout in seconds (default: 5)")
    p_stats.add_argument("--json", action="store_true",
                         help="print the raw snapshot JSON instead of text")
    p_stats.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    json_mode = bool(getattr(args, "json", False))
    try:
        return args.func(args)
    except KeyboardInterrupt:
        if json_mode:
            print(
                json.dumps(
                    {
                        "ok": False,
                        "error": "interrupted",
                        "code": "interrupted",
                        "exit_code": EXIT_INTERRUPTED,
                    },
                    indent=2,
                )
            )
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        if json_mode:
            print(json.dumps({"ok": False, **exc.to_dict()}, indent=2))
        print(f"error[{exc.code}]: {exc}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        print(f"error[io-error]: {exc}", file=sys.stderr)
        return 1
    except Exception:  # noqa: BLE001 — last-resort diagnostics
        traceback.print_exc()
        print(
            "error[internal]: unexpected exception (this is a bug)",
            file=sys.stderr,
        )
        return EXIT_INTERNAL_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
