"""µP4C command-line interface.

Mirrors the paper's Fig. 4 usage of the compiler:

    # Stage 1: compile a module to µP4-IR JSON
    python -m repro compile l3.up4 -o l3.ir.json

    # Stage 2: link modules and build for a target
    python -m repro build main.up4 l3.up4 ipv4.up4 --target v1model -o main.p4
    python -m repro build main.up4 l3.up4 ipv4.up4 --target tna --report

    # Inspect the logical architecture or the library
    python -m repro arch
    python -m repro library

    # Regenerate the evaluation tables
    python -m repro eval
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.api import compile_module, save_ir
from repro.core.arch import describe_architecture
from repro.core.driver import CompilerOptions, Up4Compiler
from repro.errors import ReproError
from repro.frontend.json_ir import load_module


def _read_module(path: Path):
    text = path.read_text()
    if path.suffix == ".json":
        return load_module(text)
    return compile_module(text, path.name)


def cmd_compile(args: argparse.Namespace) -> int:
    module = _read_module(Path(args.module))
    ir = save_ir(module)
    if args.output:
        Path(args.output).write_text(ir)
        print(f"wrote µP4-IR to {args.output}")
    else:
        print(ir)
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.modules]
    main = _read_module(paths[0])
    libs = [_read_module(p) for p in paths[1:]]
    options = CompilerOptions(
        target=args.target,
        monolithic=args.monolithic,
        optimize_mats=args.optimize,
        align_fields=not args.no_align,
        split_assignments=not args.no_split,
    )
    result = Up4Compiler(options).compile_modules(main, libs)
    region = result.region
    print(
        f"composed {result.composed.name!r} [{result.composed.mode}]: "
        f"El={region.extract_length}B Bs={region.byte_stack_size}B "
        f"minpkt={region.min_packet_size}B, "
        f"{len(result.composed.tables)} MATs"
    )
    if args.target == "v1model":
        text = result.target_output.source_text
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote generated V1Model program to {args.output}")
        else:
            print(text)
    else:
        report = result.target_output
        print(report.summary())
        if args.report:
            print("\nstage placement:")
            for stage, use in enumerate(report.schedule.stages):
                print(f"  stage {stage:2d}: {', '.join(use.tables)}")
            counts = report.container_counts
            print(
                f"\nPHV: 8b={counts[8]} 16b={counts[16]} 32b={counts[32]} "
                f"({report.bits_allocated} bits allocated)"
            )
            if report.split.violations:
                print(f"split-pass fixes: {len(report.split.extra_depth)} tables")
    return 0


def cmd_arch(args: argparse.Namespace) -> int:
    print(describe_architecture())
    return 0


def cmd_library(args: argparse.Namespace) -> int:
    from repro.lib.catalog import COMPOSITIONS, composition_matrix
    from repro.lib.loader import list_sources

    print("library modules (src/repro/lib/modules):")
    for name in list_sources("modules"):
        print(f"  {name}")
    print("\nmonolithic baselines (src/repro/lib/monolithic):")
    for name in list_sources("monolithic"):
        print(f"  {name}")
    print("\ncompositions:")
    for prog, recipe in COMPOSITIONS.items():
        print(f"  {prog}: {' + '.join(recipe)}")
    print()
    print(composition_matrix())
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.backend.tna import TnaBackend
    from repro.backend.tna.report import overhead_row
    from repro.errors import ResourceError
    from repro.lib.catalog import PROGRAMS, build_monolithic, build_pipeline

    backend = TnaBackend()
    print("Table 2/3 — µP4 vs monolithic on the modeled Tofino")
    print(f"{'prog':4s} {'8b%':>8s} {'16b%':>8s} {'32b%':>8s} {'bits%':>8s}   stages")
    for name in PROGRAMS:
        micro = backend.compile(build_pipeline(name))
        try:
            mono = backend.compile(build_monolithic(name))
        except ResourceError:
            mono = None
        print(overhead_row(name, micro, mono).render())
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="µP4C — the µP4 compiler (SIGCOMM 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile one µP4 module to µP4-IR JSON (Fig. 4a)"
    )
    p_compile.add_argument("module", help=".up4 source file")
    p_compile.add_argument("-o", "--output", help="write IR here")
    p_compile.set_defaults(func=cmd_compile)

    p_build = sub.add_parser(
        "build", help="link modules and build for a target (Fig. 4b)"
    )
    p_build.add_argument(
        "modules", nargs="+", help="main module first, then libraries "
        "(.up4 source or .json µP4-IR)"
    )
    p_build.add_argument("--target", choices=("v1model", "tna"), default="v1model")
    p_build.add_argument("--monolithic", action="store_true")
    p_build.add_argument("--optimize", action="store_true",
                         help="elide trivial synthesized MATs (§8.1)")
    p_build.add_argument("--no-align", action="store_true",
                         help="disable the TNA field-alignment pass (§6.3)")
    p_build.add_argument("--no-split", action="store_true",
                         help="disable the assignment-split pass (§6.3)")
    p_build.add_argument("--report", action="store_true",
                         help="print the TNA resource report")
    p_build.add_argument("-o", "--output", help="write generated code here")
    p_build.set_defaults(func=cmd_build)

    p_arch = sub.add_parser("arch", help="describe the µPA logical architecture")
    p_arch.set_defaults(func=cmd_arch)

    p_lib = sub.add_parser("library", help="list library modules and compositions")
    p_lib.set_defaults(func=cmd_library)

    p_eval = sub.add_parser("eval", help="regenerate the evaluation tables")
    p_eval.set_defaults(func=cmd_eval)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
