"""Declarative bit-field header layouts.

A :class:`HeaderCodec` describes a protocol header as an ordered list of
:class:`Field` entries with bit widths.  Headers pack MSB-first (network
order), so a codec is a faithful model of the wire layout used by P4
``header`` types.  Total width must be a whole number of bytes, matching
P4's byte-aligned header constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple


class FieldError(Exception):
    """Raised for malformed layouts or out-of-range field values."""


@dataclass(frozen=True)
class Field:
    """One header field: a name and a width in bits."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise FieldError(f"field {self.name!r} has non-positive width")

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1


class HeaderCodec:
    """Pack/unpack a fixed-layout header to and from bytes.

    Parameters
    ----------
    name:
        Header type name (e.g. ``"ipv4_t"``).
    fields:
        Ordered ``(name, bit_width)`` pairs or :class:`Field` objects.
    """

    def __init__(self, name: str, fields: Iterable) -> None:
        self.name = name
        self.fields: List[Field] = [
            f if isinstance(f, Field) else Field(*f) for f in fields
        ]
        if not self.fields:
            raise FieldError(f"header {name!r} has no fields")
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise FieldError(f"duplicate field {f.name!r} in {name!r}")
            seen.add(f.name)
        self.bit_width = sum(f.width for f in self.fields)
        if self.bit_width % 8 != 0:
            raise FieldError(
                f"header {name!r} is {self.bit_width} bits; must be byte-aligned"
            )
        self.byte_width = self.bit_width // 8
        # Precompute (field -> (msb_offset, width)) for slicing.
        self._offsets: Dict[str, Tuple[int, int]] = {}
        pos = 0
        for f in self.fields:
            self._offsets[f.name] = (pos, f.width)
            pos += f.width

    # ------------------------------------------------------------------
    def field_names(self) -> List[str]:
        return [f.name for f in self.fields]

    def width_of(self, field: str) -> int:
        return self._offsets[field][1]

    def bit_offset_of(self, field: str) -> int:
        """Offset of the field's MSB from the start of the header."""
        return self._offsets[field][0]

    def byte_range_of(self, field: str) -> Tuple[int, int]:
        """``(first_byte, last_byte_exclusive)`` covering the field."""
        off, width = self._offsets[field]
        return off // 8, (off + width + 7) // 8

    # ------------------------------------------------------------------
    def encode(self, values: Mapping[str, int]) -> bytes:
        """Pack a field-value mapping into header bytes.

        Missing fields default to zero; unknown fields are an error.
        """
        unknown = set(values) - set(self._offsets)
        if unknown:
            raise FieldError(f"unknown fields for {self.name!r}: {sorted(unknown)}")
        acc = 0
        for f in self.fields:
            v = int(values.get(f.name, 0))
            if v < 0 or v > f.max_value:
                raise FieldError(
                    f"{self.name}.{f.name}={v} out of range for bit<{f.width}>"
                )
            acc = (acc << f.width) | v
        return acc.to_bytes(self.byte_width, "big")

    def decode(self, data: bytes) -> Dict[str, int]:
        """Unpack header bytes into a field-value dict."""
        if len(data) < self.byte_width:
            raise FieldError(
                f"{self.name!r} needs {self.byte_width} bytes, got {len(data)}"
            )
        acc = int.from_bytes(data[: self.byte_width], "big")
        out: Dict[str, int] = {}
        pos = self.bit_width
        for f in self.fields:
            pos -= f.width
            out[f.name] = (acc >> pos) & f.max_value
        return out

    # ------------------------------------------------------------------
    def get(self, data: bytes, field: str) -> int:
        """Extract a single field value from header bytes."""
        off, width = self._offsets[field]
        acc = int.from_bytes(data[: self.byte_width], "big")
        shift = self.bit_width - off - width
        return (acc >> shift) & ((1 << width) - 1)

    def set(self, data: bytes, field: str, value: int) -> bytes:
        """Return header bytes with one field replaced."""
        off, width = self._offsets[field]
        if value < 0 or value >= 1 << width:
            raise FieldError(f"{self.name}.{field}={value} out of range")
        acc = int.from_bytes(data[: self.byte_width], "big")
        shift = self.bit_width - off - width
        mask = ((1 << width) - 1) << shift
        acc = (acc & ~mask) | (value << shift)
        return acc.to_bytes(self.byte_width, "big") + data[self.byte_width :]

    def __repr__(self) -> str:
        return f"HeaderCodec({self.name!r}, {self.byte_width}B)"
