"""IPv6 Segment Routing Header (SRH, RFC 8754).

The SRH has a fixed 8-byte base followed by a list of 128-bit segments.
For the dataplane model we expose the base codec plus helpers that build
the full variable-length header; the µP4 ``srv6`` library module models a
bounded segment list (as hardware dataplanes do) with per-segment header
instances.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.fields import HeaderCodec
from repro.net.ipv6 import ip6

ROUTING_TYPE_SRH = 4

SRH_BASE = HeaderCodec(
    "srh_t",
    [
        ("nextHdr", 8),
        ("hdrExtLen", 8),
        ("routingType", 8),
        ("segmentsLeft", 8),
        ("lastEntry", 8),
        ("flags", 8),
        ("tag", 16),
    ],
)

SRH_SEGMENT = HeaderCodec("srh_segment_t", [("sid", 128)])


def srh(
    segments: List[str],
    next_hdr: int,
    segments_left: int,
    tag: int = 0,
) -> Tuple[Dict[str, int], List[Dict[str, int]]]:
    """Build ``(base_fields, segment_field_dicts)`` for an SRH.

    ``hdrExtLen`` is in 8-byte units not counting the first 8 bytes, so it
    equals ``2 * len(segments)``.
    """
    if not segments:
        raise ValueError("SRH needs at least one segment")
    if segments_left > len(segments) - 1:
        raise ValueError("segmentsLeft exceeds lastEntry")
    base = {
        "nextHdr": next_hdr,
        "hdrExtLen": 2 * len(segments),
        "routingType": ROUTING_TYPE_SRH,
        "segmentsLeft": segments_left,
        "lastEntry": len(segments) - 1,
        "flags": 0,
        "tag": tag,
    }
    return base, [{"sid": ip6(s)} for s in segments]


def srh_bytes(
    segments: List[str], next_hdr: int, segments_left: int, tag: int = 0
) -> bytes:
    """Encode a complete SRH (base + segment list) to bytes."""
    base, segs = srh(segments, next_hdr, segments_left, tag)
    out = SRH_BASE.encode(base)
    for seg in segs:
        out += SRH_SEGMENT.encode(seg)
    return out
