"""GRE header codec (RFC 2784 base header, no optional fields)."""

from __future__ import annotations

from typing import Dict

from repro.net.fields import HeaderCodec

GRE = HeaderCodec(
    "gre_t",
    [
        ("checksumPresent", 1),
        ("reserved0", 12),
        ("version", 3),
        ("protocol", 16),
    ],
)


def gre(protocol: int) -> Dict[str, int]:
    """Field dict for a base GRE header carrying ``protocol``."""
    return {"checksumPresent": 0, "reserved0": 0, "version": 0, "protocol": protocol}
