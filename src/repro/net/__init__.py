"""Packet machinery: byte-level packets and standard protocol header codecs.

This subpackage is the networking substrate for the µP4 reproduction.  It
provides:

* :class:`~repro.net.packet.Packet` — a mutable byte-array packet with
  insert/remove primitives matching what a dataplane does when it adds or
  strips headers.
* :class:`~repro.net.fields.HeaderCodec` — declarative bit-field header
  layouts with pack/unpack.
* One module per protocol (Ethernet, VLAN, MPLS, IPv4, IPv6, SRv6-SRH,
  TCP, UDP, GRE, ICMP) exposing a codec plus convenience builders.
* :mod:`~repro.net.build` — layered packet construction and dissection.
"""

from repro.net.packet import Packet
from repro.net.fields import Field, HeaderCodec
from repro.net.checksum import internet_checksum, ipv4_header_checksum
from repro.net.build import PacketBuilder, dissect

__all__ = [
    "Packet",
    "Field",
    "HeaderCodec",
    "internet_checksum",
    "ipv4_header_checksum",
    "PacketBuilder",
    "dissect",
]
