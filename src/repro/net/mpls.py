"""MPLS label-stack entry codec (RFC 3032)."""

from __future__ import annotations

from typing import Dict, List

from repro.net.fields import HeaderCodec

MPLS = HeaderCodec(
    "mpls_t",
    [("label", 20), ("tc", 3), ("bos", 1), ("ttl", 8)],
)


def mpls(label: int, ttl: int = 64, tc: int = 0, bos: int = 0) -> Dict[str, int]:
    """Field dict for one MPLS label-stack entry."""
    return {"label": label, "tc": tc, "bos": bos, "ttl": ttl}


def label_stack(labels: List[int], ttl: int = 64) -> List[Dict[str, int]]:
    """Field dicts for a label stack; the last entry gets bottom-of-stack."""
    out = [mpls(lbl, ttl=ttl) for lbl in labels]
    if out:
        out[-1]["bos"] = 1
    return out
