"""Internet checksum (RFC 1071) helpers.

Used by the IPv4 codec, the NAT module's checksum fix-up emulation, and by
tests that validate packets emerging from the behavioral target.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ipv4_header_checksum(header: bytes) -> int:
    """Checksum an IPv4 header with its checksum field zeroed first."""
    if len(header) < 20:
        raise ValueError("IPv4 header must be at least 20 bytes")
    zeroed = header[:10] + b"\x00\x00" + header[12:]
    return internet_checksum(zeroed)


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 incremental checksum update for a single 16-bit word.

    This mirrors how a NAT dataplane patches L3/L4 checksums after
    rewriting an address without touching the payload.
    """
    csum = (~old_checksum) & 0xFFFF
    csum += ((~old_word) & 0xFFFF) + (new_word & 0xFFFF)
    while csum >> 16:
        csum = (csum & 0xFFFF) + (csum >> 16)
    return (~csum) & 0xFFFF


def pseudo_header_v4(src: int, dst: int, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header bytes for TCP/UDP checksums."""
    return (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + bytes([0, proto])
        + length.to_bytes(2, "big")
    )


def pseudo_header_v6(src: int, dst: int, proto: int, length: int) -> bytes:
    """IPv6 pseudo-header bytes for TCP/UDP checksums."""
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + length.to_bytes(4, "big")
        + bytes([0, 0, 0, proto])
    )
