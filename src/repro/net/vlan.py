"""IEEE 802.1Q VLAN tag codec."""

from __future__ import annotations

from typing import Dict

from repro.net.fields import HeaderCodec

VLAN = HeaderCodec(
    "vlan_t",
    [("pcp", 3), ("dei", 1), ("vid", 12), ("etherType", 16)],
)


def vlan(vid: int, ether_type: int, pcp: int = 0, dei: int = 0) -> Dict[str, int]:
    """Field dict for a VLAN tag."""
    return {"pcp": pcp, "dei": dei, "vid": vid, "etherType": ether_type}
