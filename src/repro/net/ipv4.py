"""IPv4 header codec (fixed 20-byte header, no options)."""

from __future__ import annotations

from typing import Dict

from repro.net.checksum import ipv4_header_checksum
from repro.net.fields import HeaderCodec

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47
PROTO_IPV4 = 4  # IP-in-IP, used by SRv4 encapsulation
PROTO_SRV4_DEMO = 200  # experimental segment-routing-over-IPv4 shim

IPV4 = HeaderCodec(
    "ipv4_t",
    [
        ("version", 4),
        ("ihl", 4),
        ("diffserv", 8),
        ("totalLen", 16),
        ("identification", 16),
        ("flags", 3),
        ("fragOffset", 13),
        ("ttl", 8),
        ("protocol", 8),
        ("hdrChecksum", 16),
        ("srcAddr", 32),
        ("dstAddr", 32),
    ],
)


def ip4(text: str) -> int:
    """Parse dotted-quad ``a.b.c.d`` into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    return int.from_bytes(bytes(int(p) for p in parts), "big")


def ip4_str(value: int) -> str:
    """Format a 32-bit integer as dotted-quad."""
    return ".".join(str(b) for b in value.to_bytes(4, "big"))


def ipv4(
    src: str,
    dst: str,
    protocol: int,
    payload_len: int = 0,
    ttl: int = 64,
    identification: int = 0,
    diffserv: int = 0,
) -> Dict[str, int]:
    """Field dict for an IPv4 header with a correct checksum."""
    fields = {
        "version": 4,
        "ihl": 5,
        "diffserv": diffserv,
        "totalLen": 20 + payload_len,
        "identification": identification,
        "flags": 0,
        "fragOffset": 0,
        "ttl": ttl,
        "protocol": protocol,
        "hdrChecksum": 0,
        "srcAddr": ip4(src),
        "dstAddr": ip4(dst),
    }
    fields["hdrChecksum"] = ipv4_header_checksum(IPV4.encode(fields))
    return fields
