"""TCP header codec (fixed 20-byte header, no options)."""

from __future__ import annotations

from typing import Dict

from repro.net.fields import HeaderCodec

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

TCP = HeaderCodec(
    "tcp_t",
    [
        ("srcPort", 16),
        ("dstPort", 16),
        ("seqNo", 32),
        ("ackNo", 32),
        ("dataOffset", 4),
        ("reserved", 4),
        ("flags", 8),
        ("window", 16),
        ("checksum", 16),
        ("urgentPtr", 16),
    ],
)


def tcp(
    src_port: int,
    dst_port: int,
    seq: int = 0,
    ack: int = 0,
    flags: int = FLAG_SYN,
    window: int = 65535,
) -> Dict[str, int]:
    """Field dict for a TCP header (checksum left zero; see checksum.py)."""
    return {
        "srcPort": src_port,
        "dstPort": dst_port,
        "seqNo": seq,
        "ackNo": ack,
        "dataOffset": 5,
        "reserved": 0,
        "flags": flags,
        "window": window,
        "checksum": 0,
        "urgentPtr": 0,
    }
