"""IPv6 header codec (RFC 8200 fixed header)."""

from __future__ import annotations

import ipaddress
from typing import Dict

from repro.net.fields import HeaderCodec

NEXT_HDR_TCP = 6
NEXT_HDR_UDP = 17
NEXT_HDR_ROUTING = 43  # SRH lives here
NEXT_HDR_ICMPV6 = 58
NEXT_HDR_NONE = 59

IPV6 = HeaderCodec(
    "ipv6_t",
    [
        ("version", 4),
        ("trafficClass", 8),
        ("flowLabel", 20),
        ("payloadLen", 16),
        ("nextHdr", 8),
        ("hopLimit", 8),
        ("srcAddr", 128),
        ("dstAddr", 128),
    ],
)


def ip6(text: str) -> int:
    """Parse an IPv6 address string into a 128-bit integer."""
    return int(ipaddress.IPv6Address(text))


def ip6_str(value: int) -> str:
    """Format a 128-bit integer as a compressed IPv6 address string."""
    return str(ipaddress.IPv6Address(value))


def ipv6(
    src: str,
    dst: str,
    next_hdr: int,
    payload_len: int = 0,
    hop_limit: int = 64,
    traffic_class: int = 0,
    flow_label: int = 0,
) -> Dict[str, int]:
    """Field dict for an IPv6 header."""
    return {
        "version": 6,
        "trafficClass": traffic_class,
        "flowLabel": flow_label,
        "payloadLen": payload_len,
        "nextHdr": next_hdr,
        "hopLimit": hop_limit,
        "srcAddr": ip6(src),
        "dstAddr": ip6(dst),
    }
