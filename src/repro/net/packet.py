"""Mutable byte-array packets.

A :class:`Packet` models the packet byte-stream that flows through a µP4
pipeline (the ``pkt`` logical extern of the paper's Fig. 6).  It supports
the operations a dataplane performs:

* reading and writing a contiguous byte range,
* inserting bytes (``setValid`` on a header grows the packet),
* removing bytes (``setInvalid`` shrinks it; following bytes shift up),
* cloning (``copy_from``).

Offsets are byte offsets from the start of the *current view*.  A view is
a zero-copy-in-spirit window used when a caller passes a *partial* packet
(e.g. ``ModularRouter`` hands L3 the bytes after the Ethernet header).
Mutations through a view are reflected in the parent packet.
"""

from __future__ import annotations

from typing import List, Optional


class PacketError(Exception):
    """Raised on out-of-range packet access."""


class Packet:
    """A mutable packet byte-stream.

    Parameters
    ----------
    data:
        Initial packet bytes.
    """

    def __init__(self, data: bytes = b"") -> None:
        self._buf = bytearray(data)
        self._parent: Optional[Packet] = None
        self._parent_offset = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def length(self) -> int:
        """Packet length in bytes (mirrors the ``pkt.length`` field)."""
        return len(self._buf)

    def tobytes(self) -> bytes:
        return bytes(self._buf)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Packet):
            return self._buf == other._buf
        if isinstance(other, (bytes, bytearray)):
            return self._buf == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - packets are mutable
        raise TypeError("Packet is mutable and unhashable")

    def __repr__(self) -> str:
        head = self._buf[:16].hex()
        suffix = "..." if len(self._buf) > 16 else ""
        return f"Packet({len(self._buf)}B {head}{suffix})"

    # ------------------------------------------------------------------
    # Reading / writing
    # ------------------------------------------------------------------
    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self._buf):
            raise PacketError(
                f"range [{offset}, {offset + nbytes}) out of bounds for "
                f"{len(self._buf)}-byte packet"
            )

    def read(self, offset: int, nbytes: int) -> bytes:
        """Return ``nbytes`` bytes starting at ``offset``."""
        self._check_range(offset, nbytes)
        return bytes(self._buf[offset : offset + nbytes])

    def write(self, offset: int, data: bytes) -> None:
        """Overwrite bytes starting at ``offset`` (no resize)."""
        self._check_range(offset, len(data))
        self._buf[offset : offset + len(data)] = data
        self._propagate()

    def read_int(self, offset: int, nbytes: int) -> int:
        """Read ``nbytes`` bytes as a big-endian unsigned integer."""
        return int.from_bytes(self.read(offset, nbytes), "big")

    def write_int(self, offset: int, nbytes: int, value: int) -> None:
        """Write ``value`` as ``nbytes`` big-endian bytes at ``offset``."""
        if value < 0 or value >= 1 << (8 * nbytes):
            raise PacketError(f"value {value} does not fit in {nbytes} bytes")
        self.write(offset, value.to_bytes(nbytes, "big"))

    # ------------------------------------------------------------------
    # Resizing: header insertion / removal
    # ------------------------------------------------------------------
    def insert(self, offset: int, data: bytes) -> None:
        """Insert ``data`` at ``offset``, shifting following bytes down."""
        if offset < 0 or offset > len(self._buf):
            raise PacketError(f"insert offset {offset} out of bounds")
        self._buf[offset:offset] = data
        self._propagate(resize=True)

    def remove(self, offset: int, nbytes: int) -> bytes:
        """Remove ``nbytes`` at ``offset``; following bytes shift up.

        Returns the removed bytes.
        """
        self._check_range(offset, nbytes)
        removed = bytes(self._buf[offset : offset + nbytes])
        del self._buf[offset : offset + nbytes]
        self._propagate(resize=True)
        return removed

    def append(self, data: bytes) -> None:
        """Append ``data`` at the end of the packet."""
        self._buf.extend(data)
        self._propagate(resize=True)

    def truncate(self, length: int) -> None:
        """Drop all bytes past ``length``."""
        if length < 0 or length > len(self._buf):
            raise PacketError(f"truncate length {length} out of bounds")
        del self._buf[length:]
        self._propagate(resize=True)

    # ------------------------------------------------------------------
    # Cloning and views
    # ------------------------------------------------------------------
    def copy(self) -> "Packet":
        """Deep copy (the ``pkt.copy_from`` logical extern)."""
        return Packet(bytes(self._buf))

    def copy_from(self, other: "Packet") -> None:
        """Replace this packet's contents with a copy of ``other``'s."""
        self._buf = bytearray(other._buf)
        self._propagate(resize=True)

    def view(self, offset: int, nbytes: Optional[int] = None) -> "Packet":
        """A sub-packet window; mutations are written back to the parent.

        Used to pass *partial* packets to callee modules: the callee sees a
        packet starting at ``offset``.  The write-back is performed eagerly
        on every mutation, which keeps the semantics simple (one writer at
        a time, matching the paper's sequential invocation model).
        """
        if nbytes is None:
            nbytes = len(self._buf) - offset
        self._check_range(offset, nbytes)
        sub = Packet(bytes(self._buf[offset : offset + nbytes]))
        sub._parent = self
        sub._parent_offset = offset
        return sub

    def _propagate(self, resize: bool = False) -> None:
        """Write this view's bytes back into its parent, if any."""
        parent = self._parent
        if parent is None:
            return
        start = self._parent_offset
        if resize:
            # Replace the old window with the new bytes.  The window always
            # extends to the end of the parent for partial-packet handoff.
            del parent._buf[start:]
            parent._buf.extend(self._buf)
        else:
            parent._buf[start : start + len(self._buf)] = self._buf
        parent._propagate(resize=resize)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def hex(self) -> str:
        return self._buf.hex()

    @classmethod
    def from_hex(cls, text: str) -> "Packet":
        return cls(bytes.fromhex(text.replace(" ", "").replace("\n", "")))

    def split(self, offset: int) -> "List[bytes]":
        """Split into ``[head, tail]`` byte strings at ``offset``."""
        self._check_range(offset, 0)
        return [bytes(self._buf[:offset]), bytes(self._buf[offset:])]
