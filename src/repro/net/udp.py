"""UDP header codec."""

from __future__ import annotations

from typing import Dict

from repro.net.fields import HeaderCodec

UDP = HeaderCodec(
    "udp_t",
    [("srcPort", 16), ("dstPort", 16), ("length", 16), ("checksum", 16)],
)


def udp(src_port: int, dst_port: int, payload_len: int = 0) -> Dict[str, int]:
    """Field dict for a UDP header (checksum left zero)."""
    return {
        "srcPort": src_port,
        "dstPort": dst_port,
        "length": 8 + payload_len,
        "checksum": 0,
    }
