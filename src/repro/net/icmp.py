"""ICMP header codec (echo-style 8-byte header)."""

from __future__ import annotations

from typing import Dict

from repro.net.fields import HeaderCodec

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

ICMP = HeaderCodec(
    "icmp_t",
    [
        ("type", 8),
        ("code", 8),
        ("checksum", 16),
        ("identifier", 16),
        ("sequence", 16),
    ],
)


def icmp_echo(identifier: int, sequence: int, request: bool = True) -> Dict[str, int]:
    """Field dict for an ICMP echo request/reply header."""
    return {
        "type": TYPE_ECHO_REQUEST if request else TYPE_ECHO_REPLY,
        "code": 0,
        "checksum": 0,
        "identifier": identifier,
        "sequence": sequence,
    }
