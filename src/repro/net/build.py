"""Layered packet construction and dissection.

:class:`PacketBuilder` stacks headers in order and produces a
:class:`~repro.net.packet.Packet`; :func:`dissect` walks a packet back
into a list of ``(name, field_dict)`` layers by following etherType /
protocol / nextHdr chaining.  The dissector is what the test-suite uses
to check packets emitted by the behavioral target.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.net import ethernet as eth_mod
from repro.net import ipv4 as ipv4_mod
from repro.net import ipv6 as ipv6_mod
from repro.net.ethernet import ETHERNET
from repro.net.fields import HeaderCodec
from repro.net.gre import GRE
from repro.net.icmp import ICMP
from repro.net.ipv4 import IPV4
from repro.net.ipv6 import IPV6
from repro.net.mpls import MPLS
from repro.net.packet import Packet
from repro.net.srv6 import SRH_BASE, SRH_SEGMENT
from repro.net.tcp import TCP
from repro.net.udp import UDP
from repro.net.vlan import VLAN

Layer = Tuple[str, Dict[str, int]]

_CODECS: Dict[str, HeaderCodec] = {
    "ethernet": ETHERNET,
    "vlan": VLAN,
    "mpls": MPLS,
    "ipv4": IPV4,
    "ipv6": IPV6,
    "srh": SRH_BASE,
    "srh_segment": SRH_SEGMENT,
    "tcp": TCP,
    "udp": UDP,
    "gre": GRE,
    "icmp": ICMP,
}


def codec_for(layer: str) -> HeaderCodec:
    """Look up the codec for a layer name."""
    try:
        return _CODECS[layer]
    except KeyError:
        raise KeyError(f"unknown layer {layer!r}; known: {sorted(_CODECS)}") from None


class PacketBuilder:
    """Fluent builder for layered packets.

    Example::

        pkt = (PacketBuilder()
               .ethernet("02::01", "02::02", 0x0800)
               .ipv4("10.0.0.1", "10.0.0.2", 6)
               .tcp(1234, 80)
               .payload(b"hello")
               .build())
    """

    def __init__(self) -> None:
        self._layers: List[Layer] = []
        self._payload = b""

    def layer(self, name: str, fields: Mapping[str, int]) -> "PacketBuilder":
        codec_for(name)  # validate early
        self._layers.append((name, dict(fields)))
        return self

    def ethernet(self, dst: str, src: str, ether_type: int) -> "PacketBuilder":
        return self.layer("ethernet", eth_mod.ethernet(dst, src, ether_type))

    def ipv4(self, src: str, dst: str, protocol: int, **kw) -> "PacketBuilder":
        return self.layer("ipv4", ipv4_mod.ipv4(src, dst, protocol, **kw))

    def ipv6(self, src: str, dst: str, next_hdr: int, **kw) -> "PacketBuilder":
        return self.layer("ipv6", ipv6_mod.ipv6(src, dst, next_hdr, **kw))

    def tcp(self, src_port: int, dst_port: int, **kw) -> "PacketBuilder":
        from repro.net.tcp import tcp

        return self.layer("tcp", tcp(src_port, dst_port, **kw))

    def udp(self, src_port: int, dst_port: int, **kw) -> "PacketBuilder":
        from repro.net.udp import udp

        return self.layer("udp", udp(src_port, dst_port, **kw))

    def mpls(self, label: int, **kw) -> "PacketBuilder":
        from repro.net.mpls import mpls

        return self.layer("mpls", mpls(label, **kw))

    def payload(self, data: bytes) -> "PacketBuilder":
        self._payload = data
        return self

    def build(self) -> Packet:
        out = bytearray()
        for name, fields in self._layers:
            out.extend(codec_for(name).encode(fields))
        out.extend(self._payload)
        return Packet(bytes(out))


def _next_layer_ethertype(ether_type: int) -> Optional[str]:
    return {
        eth_mod.ETHERTYPE_IPV4: "ipv4",
        eth_mod.ETHERTYPE_IPV6: "ipv6",
        eth_mod.ETHERTYPE_VLAN: "vlan",
        eth_mod.ETHERTYPE_MPLS: "mpls",
    }.get(ether_type)


def _next_layer_ipproto(proto: int) -> Optional[str]:
    return {
        ipv4_mod.PROTO_TCP: "tcp",
        ipv4_mod.PROTO_UDP: "udp",
        ipv4_mod.PROTO_GRE: "gre",
        ipv4_mod.PROTO_ICMP: "icmp",
        ipv4_mod.PROTO_IPV4: "ipv4",
        ipv6_mod.NEXT_HDR_ROUTING: "srh",
    }.get(proto)


def dissect(packet: Packet, first_layer: str = "ethernet") -> List[Layer]:
    """Dissect a packet into ``(layer_name, fields)`` tuples.

    Stops at the first layer it cannot chain past; the remainder, if any,
    is returned as a final ``("payload", {"data": ...hex int...})`` entry
    carrying raw bytes under the key ``"raw"``.
    """
    layers: List[Layer] = []
    data = packet.tobytes()
    offset = 0
    current: Optional[str] = first_layer
    while current is not None and offset < len(data):
        codec = codec_for(current)
        if offset + codec.byte_width > len(data):
            break
        fields = codec.decode(data[offset : offset + codec.byte_width])
        layers.append((current, fields))
        offset += codec.byte_width
        if current == "ethernet" or current == "vlan":
            current = _next_layer_ethertype(fields["etherType"])
        elif current == "mpls":
            current = None if fields["bos"] == 0 else None
            if fields["bos"] == 0:
                current = "mpls"
            else:
                # Peek at the IP version nibble after bottom-of-stack.
                if offset < len(data):
                    version = data[offset] >> 4
                    current = {4: "ipv4", 6: "ipv6"}.get(version)
                else:
                    current = None
        elif current == "ipv4":
            current = _next_layer_ipproto(fields["protocol"])
        elif current == "ipv6":
            current = _next_layer_ipproto(fields["nextHdr"])
        elif current == "srh":
            for _ in range(fields["lastEntry"] + 1):
                if offset + 16 > len(data):
                    break
                seg = SRH_SEGMENT.decode(data[offset : offset + 16])
                layers.append(("srh_segment", seg))
                offset += 16
            current = _next_layer_ipproto(fields["nextHdr"])
        else:
            current = None
    if offset < len(data):
        layers.append(("payload", {"raw": data[offset:]}))  # type: ignore[dict-item]
    return layers


def layer_fields(layers: List[Layer], name: str, index: int = 0) -> Dict[str, int]:
    """Fetch the ``index``-th occurrence of layer ``name`` from a dissection."""
    found = [fields for lname, fields in layers if lname == name]
    if index >= len(found):
        raise KeyError(f"layer {name!r}[{index}] not present in dissection")
    return found[index]
