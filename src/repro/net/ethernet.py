"""Ethernet II header codec and helpers."""

from __future__ import annotations

from typing import Dict

from repro.net.fields import HeaderCodec

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_MPLS = 0x8847
ETHERTYPE_MPLS_MC = 0x8848

ETHERNET = HeaderCodec(
    "ethernet_t",
    [("dstAddr", 48), ("srcAddr", 48), ("etherType", 16)],
)


def mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address {text!r}")
    return int.from_bytes(bytes(int(p, 16) for p in parts), "big")


def mac_str(value: int) -> str:
    """Format a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    return ":".join(f"{b:02x}" for b in value.to_bytes(6, "big"))


def ethernet(dst: str, src: str, ether_type: int) -> Dict[str, int]:
    """Field dict for an Ethernet header (accepts MAC strings)."""
    return {"dstAddr": mac(dst), "srcAddr": mac(src), "etherType": ether_type}
