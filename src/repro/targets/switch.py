"""A V1Model-style behavioral switch around a pipeline.

Adds the fixed-function pieces a pipeline alone does not model (Fig. 2):
ports, the Packet Replication Engine (multicast groups), and
recirculation.  This is the reproduction's ``simple_switch``.

The switch is also the **fault-containment boundary**: every per-packet
exception is caught here and converted into a structured
:class:`~repro.targets.faults.Verdict` carrying a stable reason code,
so one malformed packet or buggy module degrades into a counted drop
instead of killing the run.  ``strict=True`` opts back into re-raising
(used by tests that assert on the exact error).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError, TargetError
from repro.net.packet import Packet
from repro.obs.metrics import METRICS
from repro.obs.pkttrace import PacketTrace
from repro.targets.faults import FaultError, FaultPlan, ResourceGuards, Verdict
from repro.targets.pipeline import PacketOut, PipelineInstance
from repro.targets.runtime_api import RuntimeAPI

#: Kept for backwards compatibility; the live bound is
#: ``ResourceGuards.max_recirculations``.
MAX_RECIRCULATIONS = 8
DROP_PORT = 0xFF


@dataclass
class SwitchConfig:
    """Fixed-function configuration: ports and multicast groups."""

    num_ports: int = 16
    # group id -> egress port list
    multicast_groups: Dict[int, List[int]] = field(default_factory=dict)
    recirculate_port: Optional[int] = None


class Switch:
    """Ports + PRE + pipeline, processing one packet at a time.

    Parameters
    ----------
    pipeline:
        The pipeline executor to run packets through — a
        :class:`PipelineInstance` or any execution backend built by
        :func:`repro.targets.backends.make_pipeline`.
    config:
        Port count, multicast groups, recirculation port.
    guards:
        Resource bounds (recirculation depth, interpreter step budget,
        multicast fan-out cap, ...); defaults are generous.
    faults:
        Optional :class:`FaultPlan` injecting deterministic faults —
        soak/fuzz harness use.
    strict:
        When True, contained faults re-raise instead of becoming
        reason-coded drops (the pre-containment behavior, for tests).
    exec_backend:
        Optional backend name (``"interp"`` / ``"compiled"``).  When it
        differs from the backend ``pipeline`` was built under, the
        switch rebuilds the executor for the same composed program.
        Pass it *before* installing table entries — a rebuild starts
        from the program's const entries only.
    """

    def __init__(
        self,
        pipeline: PipelineInstance,
        config: Optional[SwitchConfig] = None,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
        strict: bool = False,
        exec_backend: Optional[str] = None,
    ) -> None:
        if exec_backend is not None and exec_backend != getattr(
            pipeline, "backend", "interp"
        ):
            from repro.targets.backends import make_pipeline

            pipeline = make_pipeline(pipeline.composed, exec_backend)
        self.pipeline = pipeline
        self.config = config or SwitchConfig()
        self.api = RuntimeAPI(pipeline)
        self.guards = guards or ResourceGuards()
        self.faults = faults
        self.strict = strict
        pipeline.configure_faults(guards=self.guards, faults=faults)
        self.stats: Dict[str, int] = {
            "in": 0,
            "out": 0,
            "dropped": 0,
            "replicated": 0,
            "killed": 0,
            "units": 0,
        }
        #: Per-reason drop counters (reason -> count), always on.
        self.drops_by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def set_multicast_group(self, group_id: int, ports: List[int]) -> None:
        if group_id <= 0:
            raise TargetError("multicast group ids are positive")
        for port in ports:
            self._check_port(port)
        self.config.multicast_groups[group_id] = list(ports)

    def _check_port(self, port: int) -> None:
        if not (0 <= port < self.config.num_ports):
            raise TargetError(
                f"port {port} out of range [0, {self.config.num_ports})"
            )

    # ------------------------------------------------------------------
    # Verdict bookkeeping
    # ------------------------------------------------------------------
    def _drop(
        self,
        verdict: Verdict,
        reason: str,
        trace: Optional[PacketTrace],
        traced: bool = True,
    ) -> None:
        verdict.reasons[reason] = verdict.reasons.get(reason, 0) + 1
        self.stats["dropped"] += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if METRICS.enabled:
            METRICS.inc(f"switch.drops.{reason}")
        if traced and trace is not None:
            trace.drop(reason)

    def _kill(
        self,
        verdict: Verdict,
        reason: str,
        exc: BaseException,
        trace: Optional[PacketTrace],
    ) -> None:
        """Contain an exception: the in-flight unit becomes a drop."""
        if self.strict:
            raise exc
        verdict.killed = True
        if verdict.error is None:
            verdict.error = f"{type(exc).__name__}: {exc}"
        self._drop(verdict, reason, trace)

    def _emit(
        self,
        verdict: Verdict,
        out: PacketOut,
        trace: Optional[PacketTrace],
    ) -> None:
        if self.faults is not None and self.faults.trip("buffer"):
            self._drop(verdict, "buffer-exhausted", trace)
            return
        verdict.outputs.append(out)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def process(
        self,
        packet: Packet,
        in_port: int = 0,
        trace: Optional["PacketTrace"] = None,
    ) -> Verdict:
        """Process one packet to a :class:`Verdict` — never raises for
        packet-induced faults (unless ``strict``).

        An invalid ``in_port`` is a caller error and always raises.
        """
        self._check_port(in_port)
        metrics_on = METRICS.enabled
        if metrics_on:
            t0 = perf_counter()
        self.stats["in"] += 1
        guards = self.guards
        verdict = Verdict(outputs=[], reasons={}, units=1)
        if self.faults is not None:
            data, applied = self.faults.mutate(packet.tobytes())
            if applied:
                packet = Packet(data)
                if trace is not None:
                    for site in applied:
                        trace.fault(site, bytes=len(data))
        work = deque([(packet, in_port, 0)])
        while work:
            pkt, port, depth = work.popleft()
            if depth > guards.max_recirculations:
                if self.strict:
                    raise FaultError(
                        "recirc-limit",
                        f"recirculation limit "
                        f"({guards.max_recirculations}) exceeded",
                    )
                self._drop(verdict, "recirc-limit", trace)
                continue
            try:
                results = self.pipeline.process(pkt, port, trace)
            except FaultError as exc:
                self._kill(verdict, exc.reason, exc, trace)
                continue
            except ReproError as exc:
                self._kill(verdict, "internal", exc, trace)
                continue
            except Exception as exc:  # noqa: BLE001 — containment boundary
                self._kill(verdict, "internal", exc, trace)
                continue
            if not results:
                reason = self.pipeline.last_drop_reason or "pipeline-drop"
                # The pipeline already recorded its own drop event.
                self._drop(verdict, reason, trace, traced=False)
                continue
            for index, result in enumerate(results):
                if index:
                    verdict.units += 1
                if result.mcast_grp:
                    self._replicate(verdict, result, trace)
                elif result.recirculate:
                    work.append((result.packet, port, depth + 1))
                elif (
                    self.config.recirculate_port is not None
                    and result.port == self.config.recirculate_port
                ):
                    work.append((result.packet, result.port, depth + 1))
                elif result.port == DROP_PORT:
                    self._drop(verdict, "drop-port", trace)
                else:
                    self._emit(verdict, result, trace)
        self.stats["out"] += len(verdict.outputs)
        self.stats["units"] += verdict.units
        if verdict.killed:
            self.stats["killed"] += 1
            if metrics_on:
                METRICS.inc("switch.killed")
        if metrics_on:
            METRICS.inc("switch.packets")
            METRICS.inc("switch.emits", len(verdict.outputs))
            METRICS.inc("switch.units", verdict.units)
            METRICS.observe(
                "switch.latency_us.packet", (perf_counter() - t0) * 1e6
            )
        return verdict

    def _replicate(
        self,
        verdict: Verdict,
        result: PacketOut,
        trace: Optional[PacketTrace],
    ) -> None:
        """PRE replication with fan-out cap and misconfiguration drops."""
        group = self.config.multicast_groups.get(result.mcast_grp)
        if not group:
            if self.strict:
                raise FaultError(
                    "mcast-no-group",
                    f"no multicast group {result.mcast_grp}",
                )
            self._drop(verdict, "mcast-no-group", trace)
            return
        cap = self.guards.max_mcast_fanout
        for index, egress_port in enumerate(group):
            if index:
                verdict.units += 1
            if index >= cap:
                self._drop(verdict, "mcast-fanout", trace)
                continue
            if not (0 <= egress_port < self.config.num_ports):
                if self.strict:
                    raise FaultError(
                        "mcast-misconfig",
                        f"multicast group {result.mcast_grp} names "
                        f"out-of-range port {egress_port}",
                    )
                self._drop(verdict, "mcast-misconfig", trace)
                continue
            self.stats["replicated"] += 1
            self._emit(
                verdict, PacketOut(result.packet.copy(), egress_port), trace
            )

    # ------------------------------------------------------------------
    def inject(
        self, packet: Packet, in_port: int = 0, trace: Optional["PacketTrace"] = None
    ) -> List[PacketOut]:
        """Process a packet, returning only the emitted copies.

        Contained faults become counted drops (see
        ``drops_by_reason``); set ``strict=True`` on the switch to make
        them raise as before.
        """
        return self.process(packet, in_port, trace).outputs

    # ------------------------------------------------------------------
    def process_batch(
        self, items: Iterable[Tuple[Packet, int]], soa: bool = False
    ) -> List[Verdict]:
        """Process ``(packet, in_port)`` pairs to one Verdict each.

        The batched entry point the sharded traffic engine's workers
        drive: it amortizes the per-packet call overhead (attribute and
        method resolution happen once per batch, not per packet) while
        keeping per-packet containment semantics identical to
        :meth:`process` — the ledger and drop accounting are the same as
        processing the items one by one.

        With ``soa=True`` and a pipeline that advertises
        ``batch_supported`` (the codegen backend's struct-of-arrays fast
        path, or the vector backend's columnwise numpy execution over
        the same arena), the whole batch runs through
        ``pipeline.process_soa``: parse all lanes into a flat byte
        arena, run the match-action body per lane — or columnwise with
        divergence splitting under ``--exec vector`` (DESIGN.md §16) —
        and deparse survivors at the end.  Fault-site RNG streams see
        lanes in submission order, so verdicts — and the soak digest
        over them — are bit-for-bit identical to the per-packet path.
        The fast path declines (and this falls back to per-packet
        processing) under ``strict`` mode, a configured recirculation
        port, or a backend without batch support.
        """
        if (
            soa
            and not self.strict
            and self.config.recirculate_port is None
            and getattr(self.pipeline, "batch_supported", False)
        ):
            return self._process_batch_soa(list(items))
        process = self.process
        return [process(packet, in_port) for packet, in_port in items]

    def _process_batch_soa(
        self, items: List[Tuple[Packet, int]]
    ) -> List[Verdict]:
        """Struct-of-arrays batch: one ``process_soa`` call for N lanes.

        Mirrors :meth:`process` lane by lane — same mutate order against
        the fault plan's per-site streams, same verdict bookkeeping —
        minus tracing (no per-packet trace in batch mode) and
        recirculation (the fast path is gated off for pipelines and
        configs that can recirculate).
        """
        metrics_on = METRICS.enabled
        if metrics_on:
            t0 = perf_counter()
        n = len(items)
        verdicts: List[Verdict] = []
        datas: List[bytes] = []
        ports: List[int] = []
        pkts: List[Packet] = []
        faults = self.faults
        for packet, in_port in items:
            self._check_port(in_port)
            self.stats["in"] += 1
            verdicts.append(Verdict(outputs=[], reasons={}, units=1))
            if faults is not None:
                data, applied = faults.mutate(packet.tobytes())
                if applied:
                    packet = Packet(data)
            else:
                data = packet.tobytes()
            datas.append(data)
            ports.append(in_port)
            pkts.append(packet)
        lanes = self.pipeline.process_soa(datas, ports, pkts)
        out_total = 0
        units_total = 0
        for verdict, (outputs, reason, exc) in zip(verdicts, lanes):
            if exc is not None:
                if isinstance(exc, FaultError):
                    self._kill(verdict, exc.reason, exc, None)
                else:
                    self._kill(verdict, "internal", exc, None)
            elif not outputs:
                self._drop(verdict, reason or "pipeline-drop", None, traced=False)
            else:
                for index, result in enumerate(outputs):
                    if index:
                        verdict.units += 1
                    if result.mcast_grp:
                        self._replicate(verdict, result, None)
                    elif result.port == DROP_PORT:
                        self._drop(verdict, "drop-port", None)
                    else:
                        self._emit(verdict, result, None)
            self.stats["out"] += len(verdict.outputs)
            self.stats["units"] += verdict.units
            out_total += len(verdict.outputs)
            units_total += verdict.units
            if verdict.killed:
                self.stats["killed"] += 1
                if metrics_on:
                    METRICS.inc("switch.killed")
        if metrics_on and n:
            METRICS.inc("switch.packets", n)
            METRICS.inc("switch.emits", out_total)
            METRICS.inc("switch.units", units_total)
            lane_us = (perf_counter() - t0) * 1e6 / n
            for _ in range(n):
                METRICS.observe("switch.latency_us.packet", lane_us)
        return verdicts

    # ------------------------------------------------------------------
    def inject_many(
        self, packets: List[Packet], in_port: int = 0
    ) -> List[List[PacketOut]]:
        return [
            verdict.outputs
            for verdict in self.process_batch((p, in_port) for p in packets)
        ]
