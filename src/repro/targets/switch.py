"""A V1Model-style behavioral switch around a pipeline.

Adds the fixed-function pieces a pipeline alone does not model (Fig. 2):
ports, the Packet Replication Engine (multicast groups), and
recirculation.  This is the reproduction's ``simple_switch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TargetError
from repro.net.packet import Packet
from repro.obs.pkttrace import PacketTrace
from repro.targets.pipeline import PacketOut, PipelineInstance
from repro.targets.runtime_api import RuntimeAPI

MAX_RECIRCULATIONS = 8
DROP_PORT = 0xFF


@dataclass
class SwitchConfig:
    """Fixed-function configuration: ports and multicast groups."""

    num_ports: int = 16
    # group id -> egress port list
    multicast_groups: Dict[int, List[int]] = field(default_factory=dict)
    recirculate_port: Optional[int] = None


class Switch:
    """Ports + PRE + pipeline, processing one packet at a time."""

    def __init__(
        self, pipeline: PipelineInstance, config: Optional[SwitchConfig] = None
    ) -> None:
        self.pipeline = pipeline
        self.config = config or SwitchConfig()
        self.api = RuntimeAPI(pipeline)
        self.stats: Dict[str, int] = {"in": 0, "out": 0, "dropped": 0, "replicated": 0}

    # ------------------------------------------------------------------
    def set_multicast_group(self, group_id: int, ports: List[int]) -> None:
        if group_id <= 0:
            raise TargetError("multicast group ids are positive")
        for port in ports:
            self._check_port(port)
        self.config.multicast_groups[group_id] = list(ports)

    def _check_port(self, port: int) -> None:
        if not (0 <= port < self.config.num_ports):
            raise TargetError(
                f"port {port} out of range [0, {self.config.num_ports})"
            )

    # ------------------------------------------------------------------
    def inject(
        self, packet: Packet, in_port: int = 0, trace: Optional["PacketTrace"] = None
    ) -> List[PacketOut]:
        """Process a packet, applying PRE replication and recirculation."""
        self._check_port(in_port)
        self.stats["in"] += 1
        outputs: List[PacketOut] = []
        work = [(packet, in_port, 0)]
        while work:
            pkt, port, depth = work.pop(0)
            if depth > MAX_RECIRCULATIONS:
                raise TargetError("recirculation limit exceeded")
            results = self.pipeline.process(pkt, port, trace)
            if not results:
                self.stats["dropped"] += 1
                continue
            for result in results:
                if result.mcast_grp:
                    group = self.config.multicast_groups.get(result.mcast_grp)
                    if group is None:
                        self.stats["dropped"] += 1
                        continue
                    for egress_port in group:
                        self.stats["replicated"] += 1
                        outputs.append(
                            PacketOut(result.packet.copy(), egress_port)
                        )
                elif result.recirculate:
                    work.append((result.packet, port, depth + 1))
                elif (
                    self.config.recirculate_port is not None
                    and result.port == self.config.recirculate_port
                ):
                    work.append((result.packet, result.port, depth + 1))
                elif result.port == DROP_PORT:
                    self.stats["dropped"] += 1
                else:
                    outputs.append(result)
        self.stats["out"] += len(outputs)
        return outputs

    # ------------------------------------------------------------------
    def inject_many(
        self, packets: List[Packet], in_port: int = 0
    ) -> List[List[PacketOut]]:
        return [self.inject(p, in_port) for p in packets]
