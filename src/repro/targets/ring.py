"""SPSC shared-memory ring buffers for parent->worker packet dispatch.

The resident worker pool (:mod:`repro.targets.pool`) feeds each shard's
worker over one of these rings: the parent generates the deterministic
stream once, serializes ``(index, in_port, bytes)`` records, and writes
them into a :class:`~multiprocessing.shared_memory.SharedMemory` block
the worker drains — no pickling queue, no per-message lock handoff.

Layout of the shared block::

    offset   0  head  (uint64) — total bytes written; producer-owned
    offset  64  tail  (uint64) — total bytes consumed; consumer-owned
    offset 128  data  [capacity bytes]

Records in the data region are length-prefixed: a little-endian uint32
``n`` followed by ``n`` payload bytes.  Two lengths are control markers
rather than record sizes:

* ``WRAP`` — the rest of the region is dead space; the next record
  starts back at offset 0 (written when a record does not fit in the
  bytes left before the end of the region);
* ``SENTINEL`` — end of stream; :meth:`ShardRing.get` returns ``None``
  and the consumer stops reading.

The ring is strictly single-producer single-consumer: only the parent
advances ``head``, only the worker advances ``tail``, and each side
keeps its own index in a local attribute so the shared copy is written
exactly once per operation and read only by the *other* side.  Index
loads double-read until two consecutive reads agree, so a torn 8-byte
read (the counters are plain bytes, not atomics) can never smuggle in a
half-updated value.

Backpressure is the capacity bound: :meth:`ShardRing.put` blocks (spin
with a short sleep, invoking ``poll`` each round so the caller can
detect a dead consumer) until the consumer frees enough space.  Nothing
is ever dropped.
"""

from __future__ import annotations

import os
import struct
import time
import weakref
from multiprocessing import shared_memory
from typing import Callable, Optional

_HEAD_OFF = 0
_TAIL_OFF = 64
_DATA_OFF = 128
_IDX = struct.Struct("<Q")
_LEN = struct.Struct("<I")

#: Length-field control markers (never valid record sizes).
SENTINEL = 0xFFFFFFFF
WRAP = 0xFFFFFFFE

#: Default per-shard ring capacity (data region bytes).
DEFAULT_RING_BYTES = 1 << 18

#: Sleep between occupancy polls while blocked (seconds).  Deliberately
#: coarse: a default ring holds hundreds of milliseconds of work, so a
#: blocked peer waking 500x/s costs nothing in lead time — while a tight
#: spin on a single-core host steals exactly the CPU the other side
#: needs to unblock it.
_POLL_SLEEP_S = 0.002


class RingTimeout(RuntimeError):
    """A blocking ring operation exceeded its timeout."""


def _attach(name: str, capacity: int) -> "ShardRing":
    return ShardRing(capacity, name=name, create=False)


def _finalize_segment(shm, owner_pid: int) -> None:
    """Last-resort unlink for a segment whose creator never called
    :meth:`ShardRing.unlink` (crash, exception path, interpreter exit).

    Guarded by pid: a forked child inherits the parent's finalizer
    object inside its copied ring, and letting the *child* unlink would
    destroy a segment the parent still depends on.  Only the creating
    process may reclaim the name.
    """
    if os.getpid() != owner_pid:
        return
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class ShardRing:
    """One SPSC byte ring in POSIX shared memory.

    The creating side owns the segment (and must :meth:`unlink` it);
    workers attach by name — pickling a ring (e.g. for a ``spawn``
    start method) transfers only ``(name, capacity)`` and re-attaches
    on the far side.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RING_BYTES,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        if capacity < 1024:
            raise ValueError(f"ring capacity must be >= 1024 bytes, got {capacity}")
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=_DATA_OFF + capacity
            )
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            # Attaching registers the segment with the resource tracker
            # a second time; the creator already owns cleanup, so undo
            # the registration to avoid a double-unlink warning at exit.
            try:  # pragma: no cover - tracker internals vary by version
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass
        self.capacity = int(capacity)
        self.name = self._shm.name
        self._buf = self._shm.buf
        self._owner = create
        # The creator arms a finalizer so the segment is unlinked even
        # if the owning process never reaches an explicit unlink() —
        # weakref.finalize also runs at interpreter exit, so a parent
        # that dies on an exception cannot leak /dev/shm segments.
        self._finalizer = (
            weakref.finalize(self, _finalize_segment, self._shm, os.getpid())
            if create
            else None
        )
        # Local copies of this side's and the peer's last-seen indices.
        self._head = self._load(_HEAD_OFF)
        self._tail = self._load(_TAIL_OFF)

    def __reduce__(self):
        return (_attach, (self.name, self.capacity))

    # ------------------------------------------------------------------
    # Shared index access
    # ------------------------------------------------------------------
    def _load(self, offset: int) -> int:
        buf = self._buf
        value = _IDX.unpack_from(buf, offset)[0]
        while True:
            again = _IDX.unpack_from(buf, offset)[0]
            if again == value:
                return value
            value = again

    def _store(self, offset: int, value: int) -> None:
        _IDX.pack_into(self._buf, offset, value)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def _reserve(
        self,
        need: int,
        poll: Optional[Callable[[], None]],
        timeout: Optional[float],
    ) -> "tuple[int, int]":
        """Block until ``need`` contiguous bytes are free; returns the
        write position and the head value to publish after writing."""
        cap = self.capacity
        deadline = time.monotonic() + timeout if timeout else None
        while True:
            tail = self._load(_TAIL_OFF)
            free = cap - (self._head - tail)
            pos = self._head % cap
            contig = cap - pos
            if contig >= need:
                if free >= need:
                    return pos, self._head + need
            elif free >= contig + need:
                # Not enough room before the end of the region: mark the
                # remainder dead and start the record at offset 0.  The
                # marker and the record become visible together when the
                # caller publishes the returned head.
                if contig >= _LEN.size:
                    _LEN.pack_into(self._buf, _DATA_OFF + pos, WRAP)
                return 0, self._head + contig + need
            if poll is not None:
                poll()
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(
                    f"ring {self.name} full for {timeout}s "
                    f"(capacity {cap}, need {need})"
                )
            time.sleep(_POLL_SLEEP_S)

    def put(
        self,
        payload: bytes,
        poll: Optional[Callable[[], None]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Append one length-prefixed record, blocking while full."""
        need = _LEN.size + len(payload)
        # A record must fit with room for a wrap marker in the worst case.
        if need + _LEN.size > self.capacity:
            raise ValueError(
                f"record of {len(payload)} bytes cannot fit a "
                f"{self.capacity}-byte ring"
            )
        pos, new_head = self._reserve(need, poll, timeout)
        base = _DATA_OFF + pos
        _LEN.pack_into(self._buf, base, len(payload))
        self._buf[base + _LEN.size : base + need] = payload
        self._head = new_head
        self._store(_HEAD_OFF, new_head)

    def close_stream(
        self,
        poll: Optional[Callable[[], None]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Append the end-of-stream sentinel record."""
        pos, new_head = self._reserve(_LEN.size, poll, timeout)
        _LEN.pack_into(self._buf, _DATA_OFF + pos, SENTINEL)
        self._head = new_head
        self._store(_HEAD_OFF, new_head)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(
        self,
        poll: Optional[Callable[[], None]] = None,
        timeout: Optional[float] = None,
    ) -> Optional[bytes]:
        """Pop the next record; ``None`` on the end-of-stream sentinel.

        Blocks while the ring is empty, invoking ``poll`` each round so
        a worker can notice its parent died mid-stream.
        """
        cap = self.capacity
        deadline = time.monotonic() + timeout if timeout else None
        while True:
            head = self._load(_HEAD_OFF)
            while self._tail != head:
                pos = self._tail % cap
                contig = cap - pos
                if contig < _LEN.size:
                    # Dead space too small for even a wrap marker.
                    self._tail += contig
                    self._store(_TAIL_OFF, self._tail)
                    continue
                length = _LEN.unpack_from(self._buf, _DATA_OFF + pos)[0]
                if length == WRAP:
                    self._tail += contig
                    self._store(_TAIL_OFF, self._tail)
                    continue
                if length == SENTINEL:
                    self._tail += _LEN.size
                    self._store(_TAIL_OFF, self._tail)
                    return None
                start = _DATA_OFF + pos + _LEN.size
                payload = bytes(self._buf[start : start + length])
                self._tail += _LEN.size + length
                self._store(_TAIL_OFF, self._tail)
                return payload
            if poll is not None:
                poll()
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(f"ring {self.name} empty for {timeout}s")
            time.sleep(_POLL_SLEEP_S)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (does not destroy the segment)."""
        if self._buf is not None:
            self._buf = None
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the shared segment (creator side, after close)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
