"""Sharded parallel traffic engine: N switch replicas, one stream.

RMT dataplanes scale by replicating the pipeline (Bosshart et al.,
P4's "multiple parallel pipes"); this module does the same in software.
A run fans one deterministic packet stream out over ``workers``
processes, each owning an independent :class:`~repro.targets.switch
.Switch` replica built from the same compiled pipeline, and folds the
per-shard results back into one summary.

Two ingest modes feed the replicas (``EngineConfig.ingest``):

* ``dispatch`` (default) — the parent generates the stream **once**,
  assigns each packet's shard, and pushes ``(index, bytes, in_port)``
  records to a resident :class:`~repro.targets.pool.WorkerPool` over
  per-shard shared-memory rings (:mod:`repro.targets.ring`).  Workers
  are long-lived: one ``start()``, any number of ``submit()`` runs.
  This matches how RMT hardware scales — replicated pipes fed from one
  shared ingest — and per-worker work is O(shard), not O(stream).
* ``replay`` (legacy, deprecated) — every worker replays the *entire*
  deterministic stream (:func:`repro.targets.soak.iter_stream`) and
  keeps only the packets its shard owns.  Kept as the baseline the
  engine-scaling benchmark measures dispatch against, and as the
  substrate of ``sequential`` mode (contention-free per-shard timing
  for the modeled aggregate rate).

The determinism contract (DESIGN.md §9, §13) is identical either way:

* shard assignment is a pure function of the packet: ``flow-hash``
  (crc32 of the packet bytes mod workers — a software RSS) or
  ``round-robin`` (global packet index mod workers);
* each shard's fault stream is seeded ``{seed}:{program}:shard{i}``,
  independent of every other shard;
* each shard digests its verdict sub-stream keyed by *global* packet
  index; the merged digest is the SHA-256 of the per-shard digests in
  shard order.

Hence ``merged digest = f(seed, workers, shard_policy)`` — replayable
exactly, whether the workers run concurrently or one at a time, and
independent of the ingest mode (pinned by test and CI).

Workers report a local :class:`~repro.obs.metrics.MetricsRegistry`
snapshot; the parent folds them with the registry's commutative
``merge``.  Every worker starts from a **reset** registry — a forked
child inherits the parent's process-wide counters, and folding those
inherited counts back into the parent would double-count everything
recorded before the fork.

Failure containment mirrors the switch's: a worker that raises posts a
structured error the parent re-raises as :class:`EngineError`; a worker
that dies without reporting (crash, ``os._exit``) is detected by exit
code; ``KeyboardInterrupt`` anywhere tears every worker down (no
orphans) and propagates so the CLI exits 130.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as queue_mod
import time
import traceback
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TargetError
from repro.net.packet import Packet
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.targets.backends import EXEC_BACKENDS, make_pipeline
from repro.targets.faults import ChaosPlan
from repro.targets.ring import DEFAULT_RING_BYTES
from repro.targets.supervision import RestartPolicy
from repro.targets.soak import (
    SoakConfig,
    build_switch,
    compose_program,
    iter_stream,
    update_digest,
)

#: Shard-assignment policies.
SHARD_POLICIES = ("flow-hash", "round-robin")

#: Stream-ingest modes (see the module docstring).
INGEST_MODES = ("replay", "dispatch")

#: Default packets a worker hands to ``Switch.process_batch`` at a time
#: (override per run via ``SoakConfig.batch_lanes`` / ``--batch-lanes``).
#: Both ingest modes batch identically (exactly this many consecutive
#: owned packets, partial batch only at end of stream) so the two
#: produce the same batches — and because per-packet verdicts do not
#: depend on batch boundaries (the SoA parity argument, DESIGN.md §15),
#: the digest is invariant to the lane count too.
BATCH_SIZE = 256


class EngineError(TargetError):
    """A worker process failed or died mid-run.

    ``site`` carries ``shard{i}`` and ``worker_error`` the structured
    error dict the worker posted (when it managed to post one), so the
    CLI's ``--json`` failure output stays machine-readable.

    A *partial-result* error (supervised pool, restart budget
    exhausted) additionally carries the dead shard's completed
    ``watermark``, the supervisor's restart ledger under
    ``supervision``, and compact per-shard summaries of the surviving
    results under ``partial`` — graceful degradation is still a failed
    run, but operators get everything the pool salvaged.
    """

    code = "engine-error"

    def __init__(
        self,
        message: str,
        shard: Optional[int] = None,
        worker_error: Optional[dict] = None,
        watermark: Optional[int] = None,
        supervision: Optional[dict] = None,
        partial: Optional[dict] = None,
    ) -> None:
        self.shard = shard
        self.site = f"shard{shard}" if shard is not None else None
        self.worker_error = worker_error
        self.watermark = watermark
        self.supervision = supervision
        self.partial = partial
        super().__init__(message)

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        if self.shard is not None:
            out["shard"] = self.shard
        if self.worker_error is not None:
            out["worker_error"] = self.worker_error
        if self.watermark is not None:
            out["watermark"] = self.watermark
        if self.supervision is not None:
            out["supervision"] = self.supervision
        if self.partial is not None:
            out["partial"] = self.partial
        return out


@dataclass
class EngineConfig:
    """How to shard one run across worker processes."""

    workers: int = 2
    shard_policy: str = "flow-hash"  # flow-hash | round-robin
    #: How packets reach the workers: ``dispatch`` (parent-side stream
    #: generation pushed to a resident pool over shared-memory rings)
    #: or ``replay`` (each worker regenerates the full stream and
    #: filters; deprecated, kept for benchmark comparison).
    ingest: str = "dispatch"
    #: Per-shard ring capacity in bytes (dispatch mode).  Bounds the
    #: parent's lead over a slow worker; a full ring blocks the parent
    #: (backpressure) rather than dropping anything.
    ring_bytes: int = DEFAULT_RING_BYTES
    #: Run the shard workers one at a time instead of concurrently.
    #: Results and digests are identical either way; sequential mode
    #: exists so per-shard busy time can be measured without CPU
    #: timesharing noise on machines with fewer cores than workers
    #: (the engine-scaling benchmark uses it to model throughput).
    #: Implies ``replay`` ingest — there is no parent to overlap with.
    sequential: bool = False
    #: Enable each worker's metrics registry and fold the snapshots
    #: into the merged block (``switch.*`` / ``interp.*`` counters).
    collect_metrics: bool = True
    #: Seconds between live telemetry publishes from each worker
    #: (epoch-stamped cumulative registry snapshot + switch ledger on
    #: the result queue).  0 disables mid-run publishing entirely — the
    #: default, so runs without a live consumer pay nothing.  Requires
    #: ``collect_metrics``.
    publish_interval_s: float = 0.0
    #: Give up if a worker reports nothing for this long (safety net
    #: against a hung worker).  The deadline is re-armed by *any*
    #: message from a still-pending shard — telemetry publishes count
    #: as liveness — so a healthy worker on a long soak never trips it.
    watchdog_s: float = 600.0
    #: Test-only fault injection for the engine's own failure paths:
    #: shard 0's worker exits hard ("exit"), raises ("error"), or
    #: raises KeyboardInterrupt ("interrupt").
    sabotage: Optional[str] = None
    #: Self-healing bounds for the resident pool (dispatch ingest).
    #: ``None`` means the default :class:`RestartPolicy` — supervision
    #: is always on; set ``RestartPolicy(max_restarts_per_shard=0,
    #: restart_budget=0)`` for the old fail-fast behavior.
    restart: Optional["RestartPolicy"] = None
    #: Scheduled process-level fault injection (dispatch ingest only):
    #: a :class:`~repro.targets.faults.ChaosPlan` of kill/stop/stall
    #: events the dispatcher fires at exact stream positions.
    chaos: Optional["ChaosPlan"] = None
    #: Workers acknowledge their completed watermark (highest global
    #: packet index folded into the shard digest) at least every this
    #: many processed packets, in addition to every telemetry publish.
    #: Bounds redispatch work after a restart; 0 disables the dedicated
    #: ack messages (watermarks then ride only on telemetry).
    ack_interval_pkts: int = 2048

    def validate(self) -> None:
        if self.workers < 1:
            raise TargetError(f"engine workers must be >= 1, got {self.workers}")
        if self.shard_policy not in SHARD_POLICIES:
            raise TargetError(
                f"unknown shard policy {self.shard_policy!r}; "
                f"known: {', '.join(SHARD_POLICIES)}"
            )
        if self.ingest not in INGEST_MODES:
            raise TargetError(
                f"unknown ingest mode {self.ingest!r}; "
                f"known: {', '.join(INGEST_MODES)}"
            )
        if self.ring_bytes < 1024:
            raise TargetError(
                f"engine ring_bytes must be >= 1024, got {self.ring_bytes}"
            )
        if self.ack_interval_pkts < 0:
            raise TargetError(
                f"engine ack_interval_pkts must be >= 0, "
                f"got {self.ack_interval_pkts}"
            )
        if self.restart is not None:
            self.restart.validate()
        if self.chaos is not None:
            if self.ingest != "dispatch" or self.sequential:
                raise TargetError(
                    "chaos injection requires dispatch ingest on the "
                    "resident pool (no --ingest replay, no sequential mode)"
                )
            for event in self.chaos.events:
                if event.shard >= self.workers:
                    raise TargetError(
                        f"chaos event targets shard {event.shard} but the "
                        f"engine has only {self.workers} worker(s)"
                    )


def shard_seed(seed: object, program: str, shard: int) -> str:
    """The derived per-shard seed: ``{seed}:{program}:shard{i}``."""
    return f"{seed}:{program}:shard{shard}"


def assign_shard(index: int, data: bytes, workers: int, policy: str) -> int:
    """Pure shard assignment for packet ``index`` with bytes ``data``.

    ``flow-hash`` uses crc32 (stable across processes and Python
    versions, unlike the salted builtin ``hash``) so all copies of one
    flow land on one replica; ``round-robin`` balances by index.
    """
    if workers <= 1:
        return 0
    if policy == "round-robin":
        return index % workers
    return zlib.crc32(data) % workers


# ----------------------------------------------------------------------
# Parent->child state handoff (replay ingest only)
# ----------------------------------------------------------------------
# Replay-mode pipelines are handed to workers by fork inheritance: the
# parent compiles once, stashes the result here, and forked children
# find it without pickling an AST.  Under a non-fork start method the
# dict comes up empty and each worker compiles its own copy (slower,
# same results).  Dispatch mode does not use this — the pool installs
# pipelines via an explicit control message, which works under any
# start method.
_SHARED_PIPELINES: Dict[Tuple[str, str], object] = {}


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_init(engine: EngineConfig) -> None:
    """Per-worker (and, in the pool, per-run) initialization.

    The registry reset is load-bearing twice over: a forked child
    starts with a copy of the parent's ``METRICS`` — counters recorded
    before the fork included — and a resident pool worker still holds
    the previous run's counters; reporting a snapshot of either would
    double-count after the parent's merge.
    """
    METRICS.reset()
    if engine.collect_metrics:
        METRICS.enable()
    else:
        METRICS.disable()


def _consume(
    switch,
    stream: Iterable[Tuple[int, Packet, int]],
    engine: EngineConfig,
    shard: int,
    publish=None,
    recorder=None,
    ack=None,
    batch_lanes: int = BATCH_SIZE,
) -> Dict[str, object]:
    """Process one shard's packet stream and summarize it.

    ``stream`` yields only the packets this shard owns, in global-index
    order — the replay worker filters the full generator stream down to
    that, the pool worker decodes it from its ring.  Everything
    downstream (batching, digesting, accounting) is shared, so the two
    ingest modes cannot drift apart.

    ``publish(epoch, ledger, watermark)`` (when given) posts a mid-run
    telemetry message every ``engine.publish_interval_s`` seconds;
    ``recorder`` (a :class:`~repro.obs.telemetry.FlightRecorder`)
    remembers the last N verdicts for post-mortem dumps.  Neither
    touches the verdict stream or the digest.

    The *watermark* is the highest global packet index whose verdict
    has been folded into the digest (-1 until the first batch lands).
    ``ack(watermark)`` (pool workers) reports it at least every
    ``engine.ack_interval_pkts`` digested packets, so the supervisor
    always knows a recent safe resume point; any lag only costs a
    restarted replica some extra deterministic replay, never
    correctness (DESIGN.md §14).

    The returned block carries ``elapsed_s`` **unrounded** — rounding a
    sub-millisecond shard to 0.0 used to wreck the merged aggregate
    rate; presentation rounding happens in :func:`_merge_blocks`.
    """
    digest = hashlib.sha256()
    uncaught: List[str] = []
    unbalanced = 0
    kinds = {"emit": 0, "drop": 0, "killed": 0}
    batch: List[Tuple[int, Packet, int]] = []
    epoch = 0
    watermark = -1
    folded = 0
    acked_at = 0
    ack_every = engine.ack_interval_pkts if ack is not None else 0
    next_publish = (
        time.monotonic() + engine.publish_interval_s
        if publish is not None and engine.publish_interval_s > 0
        else None
    )
    start = time.perf_counter()

    def flush() -> None:
        nonlocal unbalanced, watermark, folded
        if not batch:
            return
        try:
            verdicts = switch.process_batch(
                ((packet, in_port) for _, packet, in_port in batch),
                soa=True,
            )
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            # A packet escaped containment.  The switch's stats already
            # reflect whatever it processed before raising, so do NOT
            # re-run the batch (that would double-count the ledger) —
            # record the escape and move on; ``uncaught`` being
            # non-empty fails the run regardless.
            if recorder is not None:
                recorder.note(
                    batch[0][0], "uncaught", f"{type(exc).__name__}: {exc}"
                )
            if len(uncaught) < 10:
                uncaught.append(
                    f"batch [{batch[0][0]}..{batch[-1][0]}]: "
                    f"{type(exc).__name__}: {exc}"
                )
            batch.clear()
            return
        for (index, _, _), verdict in zip(batch, verdicts):
            if recorder is not None:
                recorder.record(index, verdict)
            if not verdict.balanced():
                unbalanced += 1
            kinds[verdict.kind] += 1
            update_digest(digest, index, verdict)
        # Only advance past *digested* packets: a restart resumes after
        # the watermark, so it must never cover un-folded indices.
        watermark = batch[-1][0]
        folded += len(batch)
        batch.clear()

    for index, packet, in_port in stream:
        batch.append((index, packet, in_port))
        if len(batch) >= batch_lanes:
            flush()
            if ack_every and folded - acked_at >= ack_every:
                acked_at = folded
                ack(watermark)
            if next_publish is not None and time.monotonic() >= next_publish:
                epoch += 1
                publish(epoch, dict(switch.stats), watermark)
                next_publish = time.monotonic() + engine.publish_interval_s
    flush()
    elapsed = time.perf_counter() - start

    stats = switch.stats
    ledger_ok = stats["units"] == stats["out"] + stats["dropped"]
    block: Dict[str, object] = {
        "shard": shard,
        "packets": stats["in"],
        "emits": stats["out"],
        "drops": stats["dropped"],
        "units": stats["units"],
        "replicated": stats["replicated"],
        "killed": stats["killed"],
        "verdicts": kinds,
        "drops_by_reason": dict(sorted(switch.drops_by_reason.items())),
        "fault_trips": (
            dict(sorted(switch.faults.trips.items()))
            if switch.faults is not None
            else {}
        ),
        "uncaught": uncaught,
        "unbalanced_verdicts": unbalanced,
        "ledger_ok": ledger_ok and unbalanced == 0,
        "digest": digest.hexdigest(),
        "watermark": watermark,
        "elapsed_s": elapsed,
        "pkts_per_sec": round(stats["in"] / elapsed, 1) if elapsed else None,
    }
    if engine.collect_metrics:
        block["metrics"] = METRICS.snapshot()
    block["telemetry_epochs"] = epoch
    if recorder is not None and (uncaught or not block["ledger_ok"]):
        block["flight_recorder"] = recorder.dump()
    return block


def _run_shard(
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    shard: int,
    publish=None,
    recorder=None,
) -> Dict[str, object]:
    """One replay-mode worker's whole job: replay, filter, consume."""
    composed = _SHARED_PIPELINES.get((program, config.mode))
    if composed is None:
        composed = compose_program(config, program)
    switch = build_switch(
        config,
        program,
        composed,
        fault_seed=shard_seed(config.seed, program, shard),
    )
    workers, policy = engine.workers, engine.shard_policy
    stream = (
        (index, packet, in_port)
        for index, packet, in_port in iter_stream(
            config, program, switch.config.num_ports
        )
        if assign_shard(index, packet.tobytes(), workers, policy) == shard
    )
    block = _consume(
        switch, stream, engine, shard, publish=publish, recorder=recorder,
        batch_lanes=getattr(config, "batch_lanes", BATCH_SIZE),
    )
    block["seed"] = shard_seed(config.seed, program, shard)
    return block


def _shard_worker(
    out_queue,
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    shard: int,
) -> None:
    """Process entry point: run one shard, post ``(kind, shard, payload)``."""
    from repro.obs.telemetry import FlightRecorder

    recorder = (
        FlightRecorder(config.flight_recorder, shard=shard)
        if config.flight_recorder > 0
        else None
    )

    def publish(epoch: int, ledger: Dict[str, int], watermark: int) -> None:
        # Cumulative snapshot + ledger; the parent folds it into the
        # live view.  Never blocks the dataplane beyond the queue put.
        out_queue.put(
            (
                "telemetry",
                shard,
                {
                    "epoch": epoch,
                    "metrics": METRICS.snapshot(),
                    "ledger": ledger,
                    "watermark": watermark,
                    "final": False,
                },
            )
        )

    try:
        _worker_init(engine)
        if shard == 0 and engine.sabotage == "exit":
            os._exit(17)
        if shard == 0 and engine.sabotage == "error":
            raise RuntimeError("sabotaged worker (test hook)")
        if shard == 0 and engine.sabotage == "interrupt":
            raise KeyboardInterrupt
        out_queue.put(
            (
                "ok",
                shard,
                _run_shard(
                    config,
                    program,
                    engine,
                    shard,
                    publish=publish if engine.collect_metrics else None,
                    recorder=recorder,
                ),
            )
        )
    except KeyboardInterrupt:
        out_queue.put(
            ("error", shard, {"error": "interrupted", "code": "interrupted"})
        )
    except BaseException as exc:  # noqa: BLE001 — report, never hang the pool
        detail = {
            "error": f"{type(exc).__name__}: {exc}",
            "code": getattr(exc, "code", "worker-error"),
            "traceback": traceback.format_exc(limit=8),
        }
        if recorder is not None and len(recorder):
            detail["flight_recorder"] = recorder.dump()
        out_queue.put(("error", shard, detail))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _collect(
    procs: Dict[int, multiprocessing.Process],
    out_queue,
    engine: EngineConfig,
    on_telemetry=None,
    expect_run: Optional[int] = None,
    initial: Optional[Dict[int, Dict[str, object]]] = None,
) -> Dict[int, Dict[str, object]]:
    """Gather one result per shard; raise on worker failure or death.

    Mid-run ``("telemetry", shard, payload)`` messages are forwarded to
    ``on_telemetry(shard, payload)`` (or dropped when no consumer is
    wired) without affecting result accounting.  Any message from a
    still-pending shard re-arms the watchdog — a worker that publishes
    telemetry is alive, however long its shard takes.

    ``expect_run`` (pool runs) discards stale payloads tagged with a
    different run id; ``initial`` seeds results the caller already
    drained while dispatching.
    """
    results: Dict[int, Dict[str, object]] = dict(initial or {})
    pending = set(procs) - set(results)
    deadline = time.monotonic() + engine.watchdog_s

    def handle(kind: str, shard: int, payload: Dict[str, object]) -> None:
        nonlocal deadline
        if (
            expect_run is not None
            and payload.get("run") not in (None, expect_run)
        ):
            return  # stale message from an earlier pool run
        if shard in pending:
            deadline = time.monotonic() + engine.watchdog_s
        if kind == "telemetry":
            if on_telemetry is not None:
                on_telemetry(shard, payload)
            return
        if kind == "error":
            if payload.get("code") == "interrupted":
                raise KeyboardInterrupt
            raise EngineError(
                f"shard {shard} worker failed: {payload.get('error')}",
                shard=shard,
                worker_error=payload,
            )
        results[shard] = payload
        pending.discard(shard)

    while pending:
        try:
            handle(*out_queue.get(timeout=0.2))
            continue
        except queue_mod.Empty:
            pass
        dead = [s for s in pending if not procs[s].is_alive()]
        if dead:
            # A result may have raced the exit — drain before deciding.
            try:
                while True:
                    handle(*out_queue.get_nowait())
            except queue_mod.Empty:
                pass
            dead = [s for s in dead if s in pending]
            if dead:
                shard = dead[0]
                raise EngineError(
                    f"shard {shard} worker died (exit code "
                    f"{procs[shard].exitcode}) before reporting a result",
                    shard=shard,
                )
        if time.monotonic() > deadline:
            raise EngineError(
                f"engine watchdog: shards {sorted(pending)} reported "
                f"nothing within {engine.watchdog_s}s"
            )
    return results


def _merge_blocks(
    program: str,
    config: SoakConfig,
    engine: EngineConfig,
    shards: List[Dict[str, object]],
    wall_s: float,
) -> Dict[str, object]:
    """Fold per-shard blocks into one program block (same shape as
    ``soak_program``'s, plus sharding fields).

    Shard blocks arrive with unrounded ``elapsed_s``; the aggregate
    rate divides by the *raw* busiest time (a sub-millisecond shard
    must not round to 0.0 and blow up the quotient) and rounding is
    applied only to the rendered per-shard output.
    """

    def total(key: str) -> int:
        return sum(int(block[key]) for block in shards)

    def fold_counts(key: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for block in shards:
            for name, count in block[key].items():  # type: ignore[union-attr]
                out[name] = out.get(name, 0) + count
        return dict(sorted(out.items()))

    uncaught: List[str] = []
    for block in shards:
        uncaught.extend(block["uncaught"])  # type: ignore[arg-type]
    merged_digest = hashlib.sha256(
        "".join(str(block["digest"]) for block in shards).encode()
    ).hexdigest()
    busiest = max(float(block["elapsed_s"]) for block in shards)
    merged: Dict[str, object] = {
        "program": program,
        "mode": config.mode,
        "workers": engine.workers,
        "shard_policy": engine.shard_policy,
        "ingest": engine.ingest,
        "packets": total("packets"),
        "emits": total("emits"),
        "drops": total("drops"),
        "units": total("units"),
        "replicated": total("replicated"),
        "killed": total("killed"),
        "verdicts": fold_counts("verdicts"),
        "drops_by_reason": fold_counts("drops_by_reason"),
        "fault_trips": fold_counts("fault_trips"),
        "uncaught": uncaught[:10],
        "unbalanced_verdicts": total("unbalanced_verdicts"),
        "ledger_ok": (
            all(block["ledger_ok"] for block in shards)
            and total("units") == total("emits") + total("drops")
        ),
        "digest": merged_digest,
        "elapsed_s": round(wall_s, 3),
        "pkts_per_sec": (
            round(total("packets") / wall_s, 1) if wall_s else None
        ),
        # Modeled aggregate: every shard's busy time measured on its own
        # packets; with one core per worker the run completes in
        # max(shard busy time).  Equals the wall-clock rate when the
        # machine really has `workers` free cores.
        "aggregate_pkts_per_sec": (
            round(total("packets") / busiest, 1) if busiest > 0 else None
        ),
        "shards": [
            {
                **{k: v for k, v in block.items() if k != "metrics"},
                "elapsed_s": round(float(block["elapsed_s"]), 3),
            }
            for block in shards
        ],
    }
    if engine.collect_metrics:
        registry = MetricsRegistry()
        for block in shards:
            registry.merge(block.get("metrics", {}))  # type: ignore[arg-type]
        merged["metrics"] = registry.snapshot()
    return merged


def _publish_final_epochs(
    telemetry,
    program: str,
    shards: List[Dict[str, object]],
    epochs_seen: Dict[int, int],
    run: Optional[int] = None,
) -> None:
    """Final fold: the authoritative end-of-run snapshot per shard, one
    epoch past anything published mid-run so it always wins."""
    for block in shards:
        shard = int(block["shard"])  # type: ignore[arg-type]
        telemetry.publish(
            program,
            shard,
            epochs_seen.get(shard, 0) + 1,
            block.get("metrics", {}),
            ledger={
                "in": block["packets"],
                "out": block["emits"],
                "dropped": block["drops"],
                "replicated": block["replicated"],
                "killed": block["killed"],
                "units": block["units"],
            },
            final=True,
            run=run,
            watermark=block.get("watermark"),  # type: ignore[arg-type]
        )


def _run_sharded_replay(
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    telemetry=None,
) -> Dict[str, object]:
    """Legacy fork-per-run path: every worker replays the full stream."""
    epochs_seen: Dict[int, int] = {}

    def on_telemetry(shard: int, payload: Dict[str, object]) -> None:
        epoch = int(payload.get("epoch", 0))  # type: ignore[arg-type]
        epochs_seen[shard] = max(epochs_seen.get(shard, 0), epoch)
        if telemetry is not None:
            telemetry.publish(
                program,
                shard,
                epoch,
                payload.get("metrics", {}),
                ledger=payload.get("ledger"),
                final=bool(payload.get("final", False)),
                watermark=payload.get("watermark"),  # type: ignore[arg-type]
            )

    # Compile once in the parent: a bad program fails here, cleanly and
    # single-process; forked workers inherit the compiled pipeline.
    _SHARED_PIPELINES[(program, config.mode)] = compose_program(config, program)
    ctx = _mp_context()
    out_queue = ctx.Queue()
    procs: Dict[int, multiprocessing.Process] = {
        shard: ctx.Process(
            target=_shard_worker,
            args=(out_queue, config, program, engine, shard),
            daemon=True,
        )
        for shard in range(engine.workers)
    }
    start = time.perf_counter()
    try:
        if engine.sequential:
            results: Dict[int, Dict[str, object]] = {}
            for shard, proc in procs.items():
                proc.start()
                results.update(
                    _collect(
                        {shard: proc}, out_queue, engine,
                        on_telemetry=on_telemetry,
                    )
                )
                proc.join()
        else:
            for proc in procs.values():
                proc.start()
            results = _collect(
                procs, out_queue, engine, on_telemetry=on_telemetry
            )
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in procs.values():
            if proc.pid is not None:
                proc.join(timeout=5)
        out_queue.close()
        out_queue.cancel_join_thread()
        _SHARED_PIPELINES.pop((program, config.mode), None)
    wall_s = time.perf_counter() - start
    shards = [results[shard] for shard in sorted(results)]
    if telemetry is not None and engine.collect_metrics:
        _publish_final_epochs(telemetry, program, shards, epochs_seen)
    return _merge_blocks(program, config, engine, shards, wall_s)


def run_sharded_program(
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    telemetry=None,
) -> Dict[str, object]:
    """Soak one program across ``engine.workers`` switch replicas.

    Returns a merged program block shaped like ``soak_program``'s, with
    per-shard sub-blocks under ``"shards"``.  Compile problems surface
    from the parent (before any fork); worker failures raise
    :class:`EngineError`; ``KeyboardInterrupt`` tears all workers down
    and propagates.

    With ``dispatch`` ingest (the default) this spins up a one-shot
    :class:`~repro.targets.pool.WorkerPool`; callers soaking several
    programs should hold a pool themselves and ``submit()`` each one so
    the workers stay resident (``run_soak`` does).

    ``telemetry`` (a :class:`~repro.obs.telemetry.LiveTelemetry`)
    receives each worker's mid-run publishes (when
    ``engine.publish_interval_s > 0``) and, after join, one final
    epoch-stamped snapshot per shard — so the rolling view always ends
    exactly at the merged result.
    """
    engine.validate()
    if engine.ingest == "dispatch" and not engine.sequential:
        from repro.targets.pool import WorkerPool

        with WorkerPool(engine) as pool:
            return pool.submit(config, program, telemetry=telemetry)
    return _run_sharded_replay(config, program, engine, telemetry=telemetry)


# ----------------------------------------------------------------------
# Sharded profile runs (`repro profile --packets N --workers W`)
# ----------------------------------------------------------------------
_SHARED_PROFILE: Dict[str, object] = {}


def _profile_worker(out_queue, count: int, engine: EngineConfig,
                    shard: int) -> None:
    try:
        METRICS.reset()
        METRICS.enable()
        composed = _SHARED_PROFILE["composed"]
        mix: List[bytes] = _SHARED_PROFILE["mix"]  # type: ignore[assignment]
        exec_backend = str(_SHARED_PROFILE.get("exec", "interp"))
        workers, policy = engine.workers, engine.shard_policy
        instance = make_pipeline(composed, exec_backend=exec_backend)
        mine = [
            (i, mix[i % len(mix)])
            for i in range(count)
            if assign_shard(i, mix[i % len(mix)], workers, policy) == shard
        ]
        outputs = 0
        epoch = 0
        interval = engine.publish_interval_s
        next_publish = time.monotonic() + interval if interval > 0 else None
        start = time.perf_counter()
        for done, (_, data) in enumerate(mine, 1):
            outputs += len(instance.process(Packet(data), 1))
            if (
                next_publish is not None
                and done % BATCH_SIZE == 0
                and time.monotonic() >= next_publish
            ):
                epoch += 1
                out_queue.put(
                    (
                        "telemetry",
                        shard,
                        {
                            "epoch": epoch,
                            "metrics": METRICS.snapshot(),
                            "ledger": {"in": done, "out": outputs},
                            "final": False,
                        },
                    )
                )
                next_publish = time.monotonic() + interval
        elapsed = time.perf_counter() - start
        out_queue.put(
            (
                "ok",
                shard,
                {
                    "shard": shard,
                    "packets": len(mine),
                    "outputs": outputs,
                    "elapsed_s": elapsed,
                    "metrics": METRICS.snapshot(),
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001
        out_queue.put(
            ("error", shard, {"error": f"{type(exc).__name__}: {exc}",
                              "code": getattr(exc, "code", "worker-error")})
        )


def run_profile_shards(
    composed,
    mix: List[bytes],
    count: int,
    engine: EngineConfig,
    exec_backend: str = "interp",
    telemetry=None,
) -> Dict[str, object]:
    """Shard a synthetic ``count``-packet push over pipeline replicas.

    ``mix`` is a list of template packet byte-strings cycled by index.
    Returns merged lookup counters and throughput; the aggregate rate is
    ``count / max(shard busy time)`` (see ``_merge_blocks`` note).
    ``exec_backend`` selects the pipeline executor each worker builds.
    ``telemetry`` receives mid-run publishes (when
    ``engine.publish_interval_s > 0``) and a final snapshot per shard.
    """
    engine.validate()
    if exec_backend not in EXEC_BACKENDS:
        # Validate in the parent against the live seam registry; workers
        # would otherwise each die on the same unknown-backend error.
        err = TargetError(
            f"unknown exec backend {exec_backend!r}; "
            f"known: {', '.join(EXEC_BACKENDS)}"
        )
        err.code = "unknown-backend"
        raise err
    program = str(getattr(composed, "name", "profile"))
    epochs_seen: Dict[int, int] = {}

    def on_telemetry(shard: int, payload: Dict[str, object]) -> None:
        epoch = int(payload.get("epoch", 0))  # type: ignore[arg-type]
        epochs_seen[shard] = max(epochs_seen.get(shard, 0), epoch)
        if telemetry is not None:
            telemetry.publish(
                program,
                shard,
                epoch,
                payload.get("metrics", {}),
                ledger=payload.get("ledger"),
                final=bool(payload.get("final", False)),
            )

    _SHARED_PROFILE["composed"] = composed
    _SHARED_PROFILE["mix"] = list(mix)
    _SHARED_PROFILE["exec"] = exec_backend
    ctx = _mp_context()
    out_queue = ctx.Queue()
    procs: Dict[int, multiprocessing.Process] = {
        shard: ctx.Process(
            target=_profile_worker,
            args=(out_queue, count, engine, shard),
            daemon=True,
        )
        for shard in range(engine.workers)
    }
    start = time.perf_counter()
    try:
        if engine.sequential:
            results: Dict[int, Dict[str, object]] = {}
            for shard, proc in procs.items():
                proc.start()
                results.update(
                    _collect(
                        {shard: proc}, out_queue, engine,
                        on_telemetry=on_telemetry,
                    )
                )
                proc.join()
        else:
            for proc in procs.values():
                proc.start()
            results = _collect(
                procs, out_queue, engine, on_telemetry=on_telemetry
            )
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in procs.values():
            if proc.pid is not None:
                proc.join(timeout=5)
        out_queue.close()
        out_queue.cancel_join_thread()
        _SHARED_PROFILE.clear()
    wall_s = time.perf_counter() - start
    shards = [results[shard] for shard in sorted(results)]
    if telemetry is not None:
        for block in shards:
            shard = int(block["shard"])  # type: ignore[arg-type]
            telemetry.publish(
                program,
                shard,
                epochs_seen.get(shard, 0) + 1,
                block.get("metrics", {}),
                ledger={"in": block["packets"], "out": block["outputs"]},
                final=True,
            )
    registry = MetricsRegistry()
    for block in shards:
        registry.merge(block["metrics"])  # type: ignore[arg-type]
    busiest = max(float(block["elapsed_s"]) for block in shards)
    return {
        "packets": count,
        "outputs": sum(int(block["outputs"]) for block in shards),
        "workers": engine.workers,
        "shard_policy": engine.shard_policy,
        "elapsed_ms": round(wall_s * 1000, 3),
        "pkts_per_sec": round(count / wall_s, 1) if wall_s else None,
        "aggregate_pkts_per_sec": (
            round(count / busiest, 1) if busiest > 0 else None
        ),
        "exec": exec_backend,
        "lookups": {
            # TableRuntime counts under interp.lookup.* for both
            # backends; hit/miss counters are per-backend.
            "indexed": registry.counter("interp.lookup.indexed"),
            "scan": registry.counter("interp.lookup.scan"),
            "hits": registry.counter(f"{exec_backend}.table_hits"),
            "misses": registry.counter(f"{exec_backend}.table_misses"),
        },
        "shards": [
            {
                "shard": block["shard"],
                "packets": block["packets"],
                "outputs": block["outputs"],
                "elapsed_s": round(float(block["elapsed_s"]), 3),
            }
            for block in shards
        ],
        "metrics": registry.snapshot(),
    }
