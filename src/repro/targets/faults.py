"""Fault containment for the behavioral target (and fault *injection*).

A real RMT switch drops a malformed packet and keeps forwarding; the
behavioral target used to be fail-stop instead — one bad packet raised
:class:`~repro.errors.TargetError` out of the switch and killed the run.
This module provides the three pieces that turn the switch into a
fault-contained boundary:

* :class:`Verdict` — the structured per-packet outcome
  (EMIT/DROP/KILLED) the switch returns instead of raising.  Every
  packet *unit* (the injected packet, each multicast copy, each extra
  pipeline result) terminates exactly once as an emit or a
  reason-coded drop, so ``len(outputs) + drops == units`` always holds
  and accounting sums to inputs.
* :class:`ResourceGuards` — bounds that convert runaway executions into
  bounded drops: an interpreter step budget, a native-parser step
  budget, the recirculation limit, a multicast fan-out cap, and the
  orchestration out-buffer capacity.
* :class:`FaultPlan` — a deterministic, seedable fault injector for
  soak/fuzz runs: corrupt or truncate packet bytes, fail a named table
  lookup, trip an extern, exhaust a buffer, at configurable per-site
  rates.

Reason codes are stable machine-readable slugs (:data:`REASONS`); the
switch counts drops per reason in ``Switch.drops_by_reason`` and, when
metrics are enabled, under ``switch.drops.<reason>``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import TargetError

#: Stable drop/kill reason codes (documented in DESIGN.md §8).
REASONS = (
    "pipeline-drop",      # program dropped the packet (im.drop / no route)
    "drop-port",          # egressed on the drop port (0xFF)
    "parser-error",       # homogenized parser flagged upa_parser_err
    "parser-reject",      # native parser transitioned to reject
    "truncated-extract",  # native parser extracted past end of packet
    "recirc-limit",       # recirculation depth guard tripped
    "step-budget",        # interpreter statement budget exhausted
    "parse-depth",        # native parser state-step budget exhausted
    "bytestack-bounds",   # byte-stack length left the operational region
    "mcast-no-group",     # mcast_grp set but no such group programmed
    "mcast-misconfig",    # multicast group names an out-of-range port
    "mcast-fanout",       # multicast copies beyond the fan-out cap
    "buffer-exhausted",   # out_buf / egress buffer capacity exceeded
    "extern-fault",       # an extern (or injected table fault) tripped
    "internal",           # any other contained exception
)

DEFAULT_STEP_BUDGET = 200_000


class FaultError(TargetError):
    """A guard or injected fault tripped inside the behavioral target.

    Carries a stable ``reason`` (one of :data:`REASONS`) and an optional
    ``site`` naming where it tripped (e.g. ``table:ipv4_lpm_tbl``).  The
    instance ``code`` is the reason, so CLI/JSON error output stays
    machine-readable.
    """

    def __init__(
        self, reason: str, message: Optional[str] = None, site: Optional[str] = None
    ) -> None:
        self.reason = reason
        self.site = site
        self.code = reason
        text = message or f"fault: {reason}"
        if site:
            text += f" (at {site})"
        super().__init__(text)


@dataclass
class ResourceGuards:
    """Bounds that turn runaway executions into bounded, counted drops."""

    max_recirculations: int = 8
    interp_step_budget: int = DEFAULT_STEP_BUDGET
    parser_step_budget: int = 1024
    max_mcast_fanout: int = 64
    max_out_buf: int = 1024

    def to_dict(self) -> Dict[str, int]:
        return {
            "max_recirculations": self.max_recirculations,
            "interp_step_budget": self.interp_step_budget,
            "parser_step_budget": self.parser_step_budget,
            "max_mcast_fanout": self.max_mcast_fanout,
            "max_out_buf": self.max_out_buf,
        }


@dataclass
class Verdict:
    """Structured outcome of one packet through the switch.

    ``units`` counts packet units created while processing (the injected
    packet plus every extra pipeline result and multicast copy); each
    unit terminates exactly once, so ``len(outputs) + drops == units``
    (:meth:`balanced`) is the switch's accounting invariant.
    """

    outputs: List[object] = field(default_factory=list)
    reasons: Dict[str, int] = field(default_factory=dict)
    units: int = 1
    killed: bool = False
    error: Optional[str] = None

    EMIT = "emit"
    DROP = "drop"
    KILLED = "killed"

    @property
    def kind(self) -> str:
        if self.killed:
            return self.KILLED
        return self.EMIT if self.outputs else self.DROP

    @property
    def drops(self) -> int:
        return sum(self.reasons.values())

    def balanced(self) -> bool:
        return len(self.outputs) + self.drops == self.units

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "emits": len(self.outputs),
            "drops": dict(self.reasons),
            "units": self.units,
            "killed": self.killed,
            "error": self.error,
        }


# ======================================================================
# Fault injection
# ======================================================================

#: Site categories a FaultPlan knows how to trip.
SITE_CATEGORIES = ("corrupt", "truncate", "table", "extern", "buffer")


class FaultPlan:
    """Deterministic, seedable fault injector.

    A plan maps *sites* to trip rates in ``[0, 1]``.  A site is either a
    bare category (``"table"`` trips every table lookup) or a named one
    (``"table:ipv4_lpm_tbl"``; the named rate wins over the category).
    Categories:

    * ``corrupt`` — XOR a random byte of the packet at injection time,
    * ``truncate`` — cut the packet short at injection time,
    * ``table`` / ``table:<name>`` — fail a table lookup
      (``extern-fault``),
    * ``extern`` / ``extern:<name>`` — trip an extern call
      (``extern-fault``),
    * ``buffer`` — exhaust the egress/out buffer
      (``buffer-exhausted``).

    Each site draws from its own :class:`random.Random` stream seeded
    with ``f"{seed}/{site}"``, so the same seed and plan yield an
    identical fault sequence regardless of which *other* sites exist —
    the determinism the soak harness asserts.
    """

    def __init__(
        self,
        seed: object = 0,
        sites: Optional[Mapping[str, float]] = None,
    ) -> None:
        # int or str; either seeds the per-site streams deterministically.
        self.seed = seed
        self.sites: Dict[str, float] = dict(sites or {})
        for site, rate in self.sites.items():
            if not (0.0 <= float(rate) <= 1.0):
                raise TargetError(f"fault site {site!r} rate {rate} not in [0, 1]")
        self.trips: Dict[str, int] = {}
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind every site's random stream to the seed state."""
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{self.seed}/{site}") for site in self.sites
        }
        self.trips.clear()

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "FaultPlan":
        """Build from a JSON-able spec: ``{"seed": 1, "sites": {...}}``."""
        seed = spec.get("seed", 0)
        if not isinstance(seed, (int, str)):
            raise TargetError("fault spec 'seed' must be an int or string")
        sites = spec.get("sites", {})
        if not isinstance(sites, Mapping):
            raise TargetError("fault spec 'sites' must be a mapping of site -> rate")
        for site in sites:
            category = str(site).split(":", 1)[0]
            if category not in SITE_CATEGORIES:
                raise TargetError(
                    f"unknown fault site category {category!r}; "
                    f"known: {', '.join(SITE_CATEGORIES)}"
                )
        return cls(seed=seed, sites={str(k): float(v) for k, v in sites.items()})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_spec(json.loads(text))

    @classmethod
    def uniform(cls, rate: float, seed: object = 0) -> "FaultPlan":
        """A spread of all five categories scaled off one base rate."""
        return cls(
            seed=seed,
            sites={
                "corrupt": rate,
                "truncate": rate / 2,
                "table": rate / 2,
                "extern": rate / 4,
                "buffer": rate / 8,
            },
        )

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "sites": dict(self.sites)}

    # ------------------------------------------------------------------
    def _site_for(self, category: str, name: Optional[str]) -> Optional[str]:
        if name is not None:
            named = f"{category}:{name}"
            if named in self.sites:
                return named
            # Composed pipelines prefix declaration names
            # (``main_l3_i_ipv4_i_ipv4_lpm_tbl``); accept the same
            # unambiguous suffix the RuntimeAPI accepts.
            prefix = f"{category}:"
            for site in self.sites:
                if site.startswith(prefix):
                    suffix = site[len(prefix):]
                    if name == suffix or name.endswith(f"_{suffix}"):
                        return site
        return category if category in self.sites else None

    def trip(self, category: str, name: Optional[str] = None) -> bool:
        """Deterministically decide whether this site faults now."""
        site = self._site_for(category, name)
        if site is None:
            return False
        rate = self.sites[site]
        if rate <= 0.0:
            return False
        tripped = self._rngs[site].random() < rate
        if tripped:
            self.trips[site] = self.trips.get(site, 0) + 1
        return tripped

    def mutate(self, data: bytes) -> Tuple[bytes, List[str]]:
        """Apply packet-byte faults (corrupt/truncate) at injection time.

        Returns the (possibly) mutated bytes and the list of sites that
        fired, for trace events.
        """
        applied: List[str] = []
        if data and self.trip("corrupt"):
            rng = self._rngs[self._site_for("corrupt", None)]  # type: ignore[index]
            pos = rng.randrange(len(data))
            flip = rng.randrange(1, 256)
            data = data[:pos] + bytes([data[pos] ^ flip]) + data[pos + 1 :]
            applied.append("corrupt")
        if data and self.trip("truncate"):
            rng = self._rngs[self._site_for("truncate", None)]  # type: ignore[index]
            data = data[: rng.randrange(len(data))]
            applied.append("truncate")
        return data, applied


# ======================================================================
# Process-level chaos injection
# ======================================================================

#: Actions a ChaosPlan knows how to inject.  ``kill`` and ``stop`` are
#: fired by the parent-side dispatcher (SIGKILL / SIGSTOP-then-SIGCONT
#: against the shard's worker process) when stream generation reaches
#: the event's packet index; ``stall`` runs inside the worker (a sleep
#: before processing the named packet), exercising the ring-stall /
#: watchdog recovery path.
CHAOS_ACTIONS = ("kill", "stop", "stall")


@dataclass
class ChaosEvent:
    """One scheduled process-level fault.

    ``pkt`` is a *global* packet index: parent-side actions fire when
    the dispatcher's stream generation reaches it (an index past the
    end of the stream fires after the final flush — a "final epoch"
    kill); a ``stall`` fires in the worker right before it processes
    that packet.  ``attempt`` filters worker-side events to one worker
    incarnation (default 1, the original), so a replacement replica
    does not re-trip the stall it was restarted to survive.
    """

    action: str
    shard: int
    pkt: int
    #: Seconds until the parent SIGCONTs a stopped worker.
    resume_s: float = 0.25
    #: Worker-side sleep for ``stall`` events.
    stall_s: float = 1.0
    #: Worker attempt a ``stall`` applies to (1 = original worker).
    attempt: int = 1
    fired: bool = False


class ChaosPlan:
    """A deterministic schedule of process-level faults.

    Mirrors :class:`FaultPlan`'s philosophy one layer up: faults are
    *planned*, not random — the spec names exactly which shard dies at
    which packet index, so a chaos soak replays bit-for-bit and its
    digest can be pinned against an undisturbed run.

    Spec grammar (CLI ``--chaos``, repeatable)::

        kill:shard=K@pkt=N                 SIGKILL shard K's worker
        stop:shard=K@pkt=N[@resume=S]      SIGSTOP, SIGCONT after S sec
        stall:shard=K@pkt=N[@for=S][@attempt=A]
                                           worker sleeps S sec at pkt N
    """

    def __init__(self, events: List[ChaosEvent]) -> None:
        for event in events:
            if event.action not in CHAOS_ACTIONS:
                raise TargetError(
                    f"unknown chaos action {event.action!r}; "
                    f"known: {', '.join(CHAOS_ACTIONS)}"
                )
            if event.shard < 0:
                raise TargetError(f"chaos shard must be >= 0, got {event.shard}")
            if event.pkt < 0:
                raise TargetError(f"chaos pkt must be >= 0, got {event.pkt}")
        self.events = list(events)

    # ------------------------------------------------------------------
    @classmethod
    def from_specs(cls, specs) -> "ChaosPlan":
        """Parse one spec string or a list of them."""
        if isinstance(specs, str):
            specs = [specs]
        return cls([cls._parse(spec) for spec in specs])

    @staticmethod
    def _parse(spec: str) -> ChaosEvent:
        action, _, rest = spec.partition(":")
        action = action.strip()
        fields: Dict[str, str] = {}
        for pair in filter(None, rest.split("@")):
            key, eq, value = pair.partition("=")
            if not eq:
                raise TargetError(
                    f"bad chaos spec {spec!r}: expected key=value, got {pair!r}"
                )
            fields[key.strip()] = value.strip()
        try:
            shard = int(fields.pop("shard"))
            pkt = int(fields.pop("pkt"))
        except KeyError as exc:
            raise TargetError(
                f"bad chaos spec {spec!r}: missing required field {exc}"
            ) from None
        except ValueError as exc:
            raise TargetError(f"bad chaos spec {spec!r}: {exc}") from None
        event = ChaosEvent(action=action, shard=shard, pkt=pkt)
        try:
            if "resume" in fields:
                event.resume_s = float(fields.pop("resume"))
            if "for" in fields:
                event.stall_s = float(fields.pop("for"))
            if "attempt" in fields:
                event.attempt = int(fields.pop("attempt"))
        except ValueError as exc:
            raise TargetError(f"bad chaos spec {spec!r}: {exc}") from None
        if fields:
            raise TargetError(
                f"bad chaos spec {spec!r}: unknown field(s) "
                f"{', '.join(sorted(fields))} "
                f"(known: shard, pkt, resume, for, attempt)"
            )
        if event.action not in CHAOS_ACTIONS:
            raise TargetError(
                f"unknown chaos action {event.action!r}; "
                f"known: {', '.join(CHAOS_ACTIONS)}"
            )
        return event

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind fired flags (a pool reuses one plan across submits)."""
        for event in self.events:
            event.fired = False

    def parent_events(self) -> List[ChaosEvent]:
        """Events the parent-side dispatcher fires (kill/stop)."""
        return [e for e in self.events if e.action in ("kill", "stop")]

    def worker_stalls(self, shard: int, attempt: int):
        """``(pkt, seconds)`` stalls for one worker incarnation."""
        return [
            (e.pkt, e.stall_s)
            for e in self.events
            if e.action == "stall"
            and e.shard == shard
            and e.attempt == attempt
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": [
                {
                    "action": e.action,
                    "shard": e.shard,
                    "pkt": e.pkt,
                    **({"resume_s": e.resume_s} if e.action == "stop" else {}),
                    **(
                        {"stall_s": e.stall_s, "attempt": e.attempt}
                        if e.action == "stall"
                        else {}
                    ),
                }
                for e in self.events
            ]
        }

    def __len__(self) -> int:
        return len(self.events)
