"""Control API for a running pipeline (the paper's Fig. 4 "control API").

µP4C composes modules at compile time, but table contents still come from
the control plane.  The :class:`RuntimeAPI` exposes entry installation
with the *composed* names: a table declared as ``forward_tbl`` inside the
main program is addressed as ``main_forward_tbl``, and a table inside an
instance ``l3_i`` of a callee as ``main_l3_i_<name>``.  :meth:`tables`
lists the available names — this mirrors how µP4C emits a control-API
mapping for each module it links (§4, Fig. 4a).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import TargetError
from repro.targets.pipeline import PipelineInstance


class RuntimeAPI:
    """Thin facade over a pipeline's table runtimes.

    ``instance`` is any execution backend exposing ``tables`` and
    ``composed`` — a :class:`PipelineInstance` or a
    :class:`~repro.targets.compiled.CompiledPipeline`; both share the
    same :class:`~repro.targets.tables.TableRuntime` state model, so
    control-plane programming is backend-agnostic.
    """

    def __init__(self, instance: PipelineInstance) -> None:
        self.instance = instance

    # ------------------------------------------------------------------
    def tables(self) -> List[str]:
        """Names of all tables addressable at runtime."""
        return sorted(self.instance.tables)

    def user_tables(self) -> List[str]:
        """Tables declared by the user (synthesized MATs filtered out)."""
        return [
            name
            for name in self.tables()
            if not name.endswith("_parser_tbl") and not name.endswith("_deparser_tbl")
        ]

    def _table(self, name: str):
        table = self.instance.tables.get(name)
        if table is not None:
            return table
        composed = self.instance.composed
        candidates = [
            t
            for t in self.tables()
            if getattr(composed.tables[t], "original_name", None) == name
        ]
        if not candidates:
            candidates = [t for t in self.tables() if t.endswith(f"_{name}")]
        if len(candidates) == 1:
            return self.instance.tables[candidates[0]]
        if len(candidates) > 1:
            raise TargetError(
                f"table name {name!r} is ambiguous: {', '.join(candidates)}"
            )
        raise TargetError(
            f"unknown table {name!r}; available: {', '.join(self.tables())}"
        )

    # ------------------------------------------------------------------
    def add_entry(
        self,
        table: str,
        matches: Sequence,
        action: str,
        action_args: Optional[Sequence[int]] = None,
        priority: int = 0,
    ) -> None:
        """Install a runtime entry.

        ``table`` may be the fully composed name or an unambiguous
        suffix (e.g. ``forward_tbl``).  ``action`` likewise may be the
        composed action name or a suffix.
        """
        runtime = self._table(table)
        resolved_action = self._resolve_action(runtime, action)
        runtime.add_entry(matches, resolved_action, action_args, priority)

    def set_default(
        self, table: str, action: str, args: Optional[Sequence[int]] = None
    ) -> None:
        runtime = self._table(table)
        runtime.set_default(self._resolve_action(runtime, action), args)

    def clear(self, table: str) -> None:
        self._table(table).clear_runtime_entries()

    def _resolve_action(self, runtime, action: str) -> str:
        if action in runtime.decl.actions or action == "NoAction":
            return action
        composed_actions = self.instance.composed.actions
        candidates = [
            a
            for a in runtime.decl.actions
            if getattr(composed_actions.get(a), "original_name", None) == action
        ]
        if not candidates:
            candidates = [
                a for a in runtime.decl.actions if a.endswith(f"_{action}")
            ]
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            raise TargetError(
                f"action name {action!r} is ambiguous in table "
                f"{runtime.name!r}: {', '.join(candidates)}"
            )
        raise TargetError(
            f"table {runtime.name!r} has no action {action!r}; "
            f"available: {', '.join(runtime.decl.actions)}"
        )

    # ------------------------------------------------------------------
    def entry_counts(self) -> Dict[str, int]:
        """Const + runtime entry counts per table (for reporting)."""
        return {
            name: len(t.const_entries) + len(t.runtime_entries)
            for name, t in self.instance.tables.items()
        }

    def lookup_info(self) -> Dict[str, Dict[str, object]]:
        """Per-table lookup strategy (exact-hash / lpm-buckets /
        compiled-scan / reference-scan), entry and residual counts."""
        return {
            name: t.index_info() for name, t in self.instance.tables.items()
        }
