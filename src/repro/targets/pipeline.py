"""Packet-level execution of a composed pipeline.

A :class:`PipelineInstance` owns the runtime state (tables, variables)
for one compiled program and processes packets through it:

* **micro mode** — the target-side parser loads the first El(ψ) bytes of
  the packet into the byte stack and sets ``upa_bs_len``; the homogenized
  MAT pipeline then runs; finally the target-side deparser emits
  ``upa_bs[0 : upa_bs_len]`` followed by the unparsed payload.
* **monolithic mode** — the native parser FSM runs over the raw bytes;
  the control statements run; the native deparser emits the valid
  headers in emit order followed by the payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.midend.bytestack import BS_INSTANCE, BS_LEN_VAR, PARSER_ERR_VAR
from repro.midend.inline import IM_VAR, PKT_VAR, ComposedPipeline
from repro.net.packet import Packet
from repro.obs.metrics import LATENCY_SAMPLE_EVERY, METRICS
from repro.obs.pkttrace import PacketTrace
from repro.targets.faults import FaultError, FaultPlan, ResourceGuards
from repro.targets.interpreter import (
    Env,
    ExitSignal,
    HeaderValue,
    ImState,
    Interpreter,
    McEngine,
    PktObject,
    RegisterState,
    ReturnSignal,
    default_value,
)
from repro.targets.tables import TableRuntime

#: Kept for backwards compatibility; the live bound is
#: ``ResourceGuards.parser_step_budget``.
MAX_PARSER_STEPS = 1024


@dataclass
class PacketOut:
    """A packet leaving the pipeline on a port."""

    packet: Packet
    port: int
    mcast_grp: int = 0
    recirculate: bool = False

    def __iter__(self):
        return iter((self.packet, self.port))


class ParserErrorSignal(Exception):
    """Native parser rejected the packet.

    ``reason`` distinguishes a select-driven reject (``parser-reject``)
    from an extract past the end of the packet (``truncated-extract``).
    """

    def __init__(self, reason: str = "parser-reject") -> None:
        self.reason = reason
        super().__init__(reason)


class PipelineInstance:
    """Executable instance of a :class:`ComposedPipeline`.

    ``use_table_index=False`` forces every table onto the reference
    linear-scan lookup; differential tests and the lookup-throughput
    benchmark use it to compare against the indexed fast path.
    """

    #: Execution-backend identifier (see repro.targets.backends).
    backend = "interp"

    def __init__(
        self,
        composed: ComposedPipeline,
        use_table_index: bool = True,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.composed = composed
        # TableRuntime caches the per-table key-width vector on the decl,
        # so building many instances of one composition computes it once.
        self.tables: Dict[str, TableRuntime] = {
            name: TableRuntime(decl, use_index=use_table_index)
            for name, decl in composed.tables.items()
        }
        self.interp = Interpreter(self.tables, composed.actions)
        # Stateful externs (registers) persist across packets.
        self.persistent: Dict[str, object] = {}
        # Reason code for the last []-returning process() call; the
        # switch folds it into the packet's Verdict.
        self.last_drop_reason: Optional[str] = None
        # Packet counter driving deterministic stage-latency sampling
        # (see LATENCY_SAMPLE_EVERY); only advances while metrics are on.
        self._lat_tick = 0
        self.guards = ResourceGuards()
        self.configure_faults(guards=guards, faults=faults)

    def configure_faults(
        self,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        """(Re)wire resource guards and a fault-injection plan."""
        if guards is not None:
            self.guards = guards
        self.interp.step_limit = self.guards.interp_step_budget
        self.interp.faults = faults

    # ------------------------------------------------------------------
    def _lat_sample(self) -> bool:
        """Decide whether this packet's stage latencies are timed, and
        propagate the decision to the interpreter's table-apply path.
        Deterministic (packet-counter stride), so the compiled backend
        samples the identical packets and reports identical counts."""
        if METRICS.enabled:
            tick = self._lat_tick
            self._lat_tick = tick + 1
            lat_on = tick % LATENCY_SAMPLE_EVERY == 0
        else:
            lat_on = False
        self.interp.lat_sample = lat_on
        return lat_on

    # ------------------------------------------------------------------
    # Environment setup
    # ------------------------------------------------------------------
    def _fresh_env(self, packet: Packet, in_port: int) -> Env:
        env = Env()
        im = ImState(in_port=in_port, pkt_len=len(packet))
        env.define(IM_VAR, im)
        env.define(PKT_VAR, PktObject(packet))
        for name, vtype in self.composed.variables.items():
            if isinstance(vtype, ast.ExternType) and vtype.name == "register":
                env.define(
                    name, self.persistent.setdefault(name, RegisterState())
                )
                continue
            value = default_value(vtype)
            if isinstance(value, McEngine):
                value.im = im
            env.define(name, value)
        return env

    def _im(self, env: Env) -> ImState:
        im = env.get(IM_VAR)
        assert isinstance(im, ImState)
        return im

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def process(
        self,
        packet: Packet,
        in_port: int = 0,
        trace: Optional[PacketTrace] = None,
    ) -> List[PacketOut]:
        """Run one packet through the pipeline; [] means dropped.

        Pass a :class:`~repro.obs.pkttrace.PacketTrace` as ``trace`` to
        record extract/MAT/deparse events for this packet.
        """
        if METRICS.enabled:
            METRICS.inc("interp.packets")
        env = self._fresh_env(packet, in_port)
        self.last_drop_reason = None
        self.interp.steps = 0
        self.interp.ptrace = trace
        try:
            if self.composed.mode == "micro":
                return self._process_micro(packet, env, trace)
            return self._process_monolithic(packet, env, trace)
        finally:
            self.interp.ptrace = None

    def process_traced(self, packet: Packet, in_port: int = 0):
        """Convenience: run one packet with tracing on; returns
        ``(outputs, trace)``."""
        trace = PacketTrace()
        outputs = self.process(packet, in_port, trace=trace)
        return outputs, trace

    def process_with(
        self,
        packet: Packet,
        im: Optional[ImState] = None,
        presets: Optional[Dict[str, object]] = None,
    ):
        """Run one packet with a shared im_t and preset argument
        variables; returns ``(outputs, final_env)`` so callers can read
        back out-parameters (orchestration-time module invocation)."""
        env = self._fresh_env(packet, im.in_port if im else 0)
        self.last_drop_reason = None
        self.interp.steps = 0
        if im is not None:
            env.set(IM_VAR, im)
        for name, value in (presets or {}).items():
            env.set(name, value)
        if self.composed.mode == "micro":
            outs = self._process_micro(packet, env)
        else:
            outs = self._process_monolithic(packet, env)
        return outs, env

    # ------------------------------------------------------------------
    # Micro mode
    # ------------------------------------------------------------------
    def _process_micro(
        self,
        packet: Packet,
        env: Env,
        trace: Optional[PacketTrace] = None,
    ) -> List[PacketOut]:
        bs = self.composed.byte_stack
        assert bs is not None
        lat_on = self._lat_sample()
        if lat_on:
            t0 = perf_counter()
        extract_len = self.composed.region.extract_length
        loaded = min(len(packet), extract_len)
        stack: HeaderValue = env.get(BS_INSTANCE)  # type: ignore[assignment]
        stack.valid = True
        data = packet.tobytes()
        for i in range(loaded):
            stack.fields[f"b{i}"] = data[i]
        env.set(BS_LEN_VAR, loaded)
        payload = data[extract_len:]
        if trace is not None:
            trace.extract("byte_stack", loaded, extract_length=extract_len)
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.parse", (perf_counter() - t0) * 1e6
            )

        try:
            self.interp.exec_block(self.composed.statements, env)
        except (ExitSignal, ReturnSignal):
            pass

        im = self._im(env)
        if env.get(PARSER_ERR_VAR) == 1 or im.dropped:
            reason = (
                "parser-error"
                if env.get(PARSER_ERR_VAR) == 1
                else "pipeline-drop"
            )
            self.last_drop_reason = reason
            if trace is not None:
                trace.drop(reason)
            return []
        if lat_on:
            t0 = perf_counter()
        out_len = int(env.get(BS_LEN_VAR))  # type: ignore[arg-type]
        if out_len > bs.size or out_len < 0:
            raise FaultError(
                "bytestack-bounds",
                f"byte-stack length {out_len} outside stack size {bs.size}",
            )
        out_bytes = bytes(
            stack.fields[f"b{i}"] for i in range(out_len)
        ) + payload
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.deparse", (perf_counter() - t0) * 1e6
            )
        if trace is not None:
            trace.deparse(out_len, len(payload))
            trace.output(
                im.out_port,
                len(out_bytes),
                im.mcast_grp,
                im.recirculate_requested,
            )
        return [
            PacketOut(
                Packet(out_bytes),
                im.out_port,
                im.mcast_grp,
                recirculate=im.recirculate_requested,
            )
        ]

    # ------------------------------------------------------------------
    # Monolithic mode
    # ------------------------------------------------------------------
    def _process_monolithic(
        self,
        packet: Packet,
        env: Env,
        trace: Optional[PacketTrace] = None,
    ) -> List[PacketOut]:
        parser = self.composed.native_parser
        data = packet.tobytes()
        cursor = 0
        lat_on = self._lat_sample()
        if parser is not None:
            if lat_on:
                t0 = perf_counter()
            try:
                cursor = self._run_native_parser(parser, data, env, trace)
            except ParserErrorSignal as sig:
                self.last_drop_reason = sig.reason
                if trace is not None:
                    trace.drop(sig.reason)
                return []
            finally:
                if lat_on:
                    METRICS.observe(
                        "pipeline.latency_us.parse",
                        (perf_counter() - t0) * 1e6,
                    )
        payload = data[cursor:]

        try:
            self.interp.exec_block(self.composed.statements, env)
        except (ExitSignal, ReturnSignal):
            pass

        im = self._im(env)
        if im.dropped:
            self.last_drop_reason = "pipeline-drop"
            if trace is not None:
                trace.drop("pipeline-drop")
            return []
        if lat_on:
            t0 = perf_counter()
        out = bytearray()
        for emit in self.composed.native_emits or []:
            value = self.interp.eval(emit, env)
            if not isinstance(value, HeaderValue):
                raise TargetError("native emit of a non-header value")
            if not value.valid:
                continue
            htype = emit.type
            assert isinstance(htype, ast.HeaderType)
            packed = _pack_header(value, htype)
            if trace is not None:
                trace.emit(_expr_name(emit), len(packed))
            out.extend(packed)
        out.extend(payload)
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.deparse", (perf_counter() - t0) * 1e6
            )
        if trace is not None:
            trace.output(
                im.out_port,
                len(out),
                im.mcast_grp,
                im.recirculate_requested,
            )
        return [
            PacketOut(
                Packet(bytes(out)),
                im.out_port,
                im.mcast_grp,
                recirculate=im.recirculate_requested,
            )
        ]

    # ------------------------------------------------------------------
    def _run_native_parser(
        self,
        parser: ast.ParserDecl,
        data: bytes,
        env: Env,
        trace: Optional[PacketTrace] = None,
    ) -> int:
        states = {s.name: s for s in parser.states}
        cursor = 0

        def extract_hook(call: ast.MethodCallExpr, hook_env: Env):
            nonlocal cursor
            lvalue = call.args[1]
            header = self.interp.eval(lvalue, hook_env)
            htype = lvalue.type
            if not isinstance(header, HeaderValue) or not isinstance(
                htype, ast.HeaderType
            ):
                raise TargetError("extract target is not a header")
            size = htype.byte_width
            if cursor + size > len(data):
                raise ParserErrorSignal("truncated-extract")
            _unpack_header(header, htype, data[cursor : cursor + size])
            if trace is not None:
                trace.extract(_expr_name(lvalue), size, offset=cursor)
            cursor += size
            return None

        self.interp.extract_hook = extract_hook
        # Parser locals live in a dedicated frame.
        frame = Env(env, label=f"parser {parser.name!r}")
        for local in parser.locals:
            if isinstance(local, ast.VarLocal):
                frame.define(
                    local.name,
                    self.interp.eval(local.init, frame)
                    if local.init is not None
                    else default_value(local.var_type),
                )
        try:
            state_name = "start"
            for _ in range(self.guards.parser_step_budget):
                if state_name == "accept":
                    return cursor
                if state_name == "reject":
                    raise ParserErrorSignal("parser-reject")
                state = states.get(state_name)
                if state is None:
                    raise TargetError(f"parser reached unknown state {state_name!r}")
                if trace is not None:
                    trace.parser_state(state_name)
                for stmt in state.stmts:
                    self.interp.exec_stmt(stmt, frame)
                state_name = self._transition(state, frame)
            raise FaultError(
                "parse-depth",
                f"native parser exceeded its "
                f"{self.guards.parser_step_budget}-state step budget",
            )
        finally:
            self.interp.extract_hook = None

    def _transition(self, state: ast.ParserState, env: Env) -> str:
        if state.direct_next is not None:
            return state.direct_next
        if not state.select_exprs:
            return "reject"
        subjects = [self.interp.eval(e, env) for e in state.select_exprs]
        for keysets, target in state.select_cases:
            if all(
                self._keyset_matches(ks, subj, env)
                for ks, subj in zip(keysets, subjects)
            ):
                return target
        return "reject"

    def _keyset_matches(self, keyset: ast.Expr, subject, env: Env) -> bool:
        if isinstance(keyset, ast.DefaultExpr):
            return True
        if isinstance(keyset, ast.MaskExpr):
            value = self.interp.eval(keyset.value, env)
            mask = self.interp.eval(keyset.mask, env)
            return (int(subject) & int(mask)) == (int(value) & int(mask))
        if isinstance(keyset, ast.RangeExpr):
            lo = self.interp.eval(keyset.lo, env)
            hi = self.interp.eval(keyset.hi, env)
            return int(lo) <= int(subject) <= int(hi)
        return self.interp.eval(keyset, env) == subject


def _expr_name(expr: ast.Expr) -> str:
    """Dotted-path rendering of a header lvalue for trace events."""
    if isinstance(expr, ast.PathExpr):
        return expr.name
    if isinstance(expr, ast.MemberExpr):
        return f"{_expr_name(expr.base)}.{expr.member}"
    if isinstance(expr, ast.IndexExpr):
        idx = expr.index.value if isinstance(expr.index, ast.IntLit) else "?"
        return f"{_expr_name(expr.base)}[{idx}]"
    return type(expr).__name__


# ======================================================================
# Header packing
# ======================================================================


def _pack_header(value: HeaderValue, htype: ast.HeaderType) -> bytes:
    acc = 0
    total = 0
    for fname, ftype in htype.fields:
        assert isinstance(ftype, ast.BitType)
        acc = (acc << ftype.width) | (value.fields[fname] & ((1 << ftype.width) - 1))
        total += ftype.width
    return acc.to_bytes(total // 8, "big")


def _unpack_header(value: HeaderValue, htype: ast.HeaderType, data: bytes) -> None:
    acc = int.from_bytes(data, "big")
    pos = htype.fixed_bit_width
    for fname, ftype in htype.fields:
        assert isinstance(ftype, ast.BitType)
        pos -= ftype.width
        value.fields[fname] = (acc >> pos) & ((1 << ftype.width) - 1)
    value.valid = True
