"""Resident worker pool: one fork, many runs, parent-side dispatch.

This is the ``ingest="dispatch"`` substrate of the sharded engine
(:mod:`repro.targets.engine`).  The legacy replay mode makes every
worker regenerate the *entire* deterministic stream and filter it down
to its shard — per-worker work is O(total stream), so adding workers
adds wall-clock on any machine without a spare core per worker.  Here
the parent generates the stream exactly once, assigns each packet's
shard (the same pure :func:`~repro.targets.engine.assign_shard`), and
pushes ``(index, in_port, bytes)`` records to long-lived workers over
per-shard SPSC shared-memory rings (:mod:`repro.targets.ring`):

* **one fork, many runs** — :meth:`WorkerPool.start` spawns the
  workers once; every :meth:`WorkerPool.submit` sends a ``run`` control
  message (program name, soak config, and the *pickled compiled
  pipeline*) down each worker's pipe.  No ``_SHARED_PIPELINES``
  fork-inheritance dict, so non-fork start methods work too.
* **batched records** — ring traffic is packed several packets per
  record (a small fixed header per packet), so the per-record ring
  bookkeeping amortizes to noise next to pipeline execution.
* **backpressure, never loss** — a full ring blocks the parent until
  the worker drains it; while blocked the parent keeps polling the
  result queue so a crashed worker surfaces as
  :class:`~repro.targets.engine.EngineError`, not a deadlock.
* **determinism preserved** — workers consume exactly the packets their
  shard owns, in global-index order, and run the very same
  :func:`~repro.targets.engine._consume` loop (same ``BATCH_SIZE``
  batching) as replay workers, so per-shard digests — and therefore the
  pinned golden merged digests — are bit-identical across ingest modes.

Every message a pool worker posts is tagged with the pool run id, and
telemetry publishes carry it through to
:class:`~repro.obs.telemetry.LiveTelemetry`, whose per-source epochs
restart at each new run.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import struct
import time
import traceback
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.packet import Packet
from repro.obs.metrics import METRICS
from repro.targets.engine import (
    EngineConfig,
    EngineError,
    _collect,
    _consume,
    _merge_blocks,
    _mp_context,
    _publish_final_epochs,
    _worker_init,
    assign_shard,
    shard_seed,
)
from repro.targets.ring import RingTimeout, ShardRing
from repro.targets.soak import (
    NUM_PORTS,
    SoakConfig,
    build_switch,
    compose_program,
    iter_stream_bytes,
)

#: Per-packet header inside a ring record: global index (uint64),
#: ingress port (uint16), payload length (uint32), little-endian.
_REC = struct.Struct("<QHI")


def _record_cap(ring_bytes: int) -> int:
    """Flush threshold for the parent's per-shard pack buffers.

    Scales with the ring so tiny test rings still fit whole records
    (a record must fit the ring with room for a wrap marker)."""
    return max(512, min(8192, ring_bytes // 4))


def _iter_ring(
    ring: ShardRing, poll=None
) -> Iterator[Tuple[int, Packet, int]]:
    """Decode a worker's ring into its ``(index, packet, in_port)``
    sub-stream; ends at the end-of-stream sentinel."""
    while True:
        record = ring.get(poll=poll)
        if record is None:
            return
        view = memoryview(record)
        offset, end = 0, len(record)
        while offset < end:
            index, in_port, length = _REC.unpack_from(record, offset)
            offset += _REC.size
            # Packet() copies into its own bytearray; handing it the
            # memoryview slice skips the intermediate bytes copy.
            yield index, Packet(view[offset : offset + length]), in_port
            offset += length


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_pool_shard(
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    shard: int,
    run: int,
    composed,
    ring: ShardRing,
    out_queue,
) -> Dict[str, object]:
    """Execute one submitted run inside a resident worker."""
    from repro.obs.telemetry import FlightRecorder

    # Fresh registry every run: a resident worker still holds the
    # previous run's counters, and the parent merges our snapshot.
    _worker_init(engine)
    recorder = (
        FlightRecorder(config.flight_recorder, shard=shard)
        if config.flight_recorder > 0
        else None
    )
    switch = build_switch(
        config,
        program,
        composed,
        fault_seed=shard_seed(config.seed, program, shard),
    )

    def publish(epoch: int, ledger: Dict[str, int]) -> None:
        out_queue.put(
            (
                "telemetry",
                shard,
                {
                    "epoch": epoch,
                    "metrics": METRICS.snapshot(),
                    "ledger": ledger,
                    "final": False,
                    "run": run,
                },
            )
        )

    parent = os.getppid()

    def parent_alive() -> None:
        if os.getppid() != parent:  # pragma: no cover - orphan cleanup
            os._exit(1)

    block = _consume(
        switch,
        _iter_ring(ring, poll=parent_alive),
        engine,
        shard,
        publish=publish if engine.collect_metrics else None,
        recorder=recorder,
    )
    block["seed"] = shard_seed(config.seed, program, shard)
    block["run"] = run
    return block


def _pool_worker(control, out_queue, ring: ShardRing, shard: int,
                 engine: EngineConfig) -> None:
    """Resident worker loop: wait for control messages, run, repeat.

    Posts ``(kind, shard, payload)`` results exactly like the replay
    worker; a failed run posts an error and ends the loop (the pool is
    broken at that point — the parent tears everything down).
    """
    run: Optional[int] = None
    try:
        while True:
            try:
                message = control.recv()
            except (EOFError, OSError):  # parent went away
                return
            kind = message.get("kind")
            if kind == "shutdown":
                return
            if kind != "run":  # pragma: no cover - protocol guard
                continue
            run = message["run"]
            if shard == 0 and engine.sabotage == "exit":
                os._exit(17)
            if shard == 0 and engine.sabotage == "error":
                raise RuntimeError("sabotaged worker (test hook)")
            if shard == 0 and engine.sabotage == "interrupt":
                raise KeyboardInterrupt
            out_queue.put(
                (
                    "ok",
                    shard,
                    _run_pool_shard(
                        message["config"],
                        message["program"],
                        engine,
                        shard,
                        run,
                        message["composed"],
                        ring,
                        out_queue,
                    ),
                )
            )
    except KeyboardInterrupt:
        out_queue.put(
            (
                "error",
                shard,
                {"error": "interrupted", "code": "interrupted", "run": run},
            )
        )
    except BaseException as exc:  # noqa: BLE001 — report, never hang the pool
        out_queue.put(
            (
                "error",
                shard,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "code": getattr(exc, "code", "worker-error"),
                    "traceback": traceback.format_exc(limit=8),
                    "run": run,
                },
            )
        )
    finally:
        ring.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class WorkerPool:
    """``engine.workers`` resident shard workers fed by parent dispatch.

    Usage::

        with WorkerPool(engine) as pool:
            for name in config.programs:
                blocks[name] = pool.submit(config, name)

    ``start()`` is idempotent and implied by the first ``submit()``.
    After any failed run the pool is **broken** — rings may hold
    undelivered records and workers may have exited — so further
    submits are refused; ``close()`` (also via ``__exit__``) tears down
    workers, queue, and shared-memory rings unconditionally.
    """

    def __init__(self, engine: EngineConfig,
                 start_method: Optional[str] = None) -> None:
        engine.validate()
        self.engine = engine
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else _mp_context()
        )
        self._rings: List[ShardRing] = []
        self._conns: list = []
        self._procs: Dict[int, object] = {}
        self._out_queue = None
        self._run_id = 0
        self._started = False
        self._broken = False

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._out_queue = self._ctx.Queue()
        try:
            for shard in range(self.engine.workers):
                ring = ShardRing(self.engine.ring_bytes)
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_pool_worker,
                    args=(child_conn, self._out_queue, ring, shard,
                          self.engine),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._rings.append(ring)
                self._conns.append(parent_conn)
                self._procs[shard] = proc
        except BaseException:
            self._started = True  # so close() reaps the partial fleet
            self.close()
            raise
        self._started = True
        return self

    # ------------------------------------------------------------------
    def _drain(self, results, on_telemetry, run: int) -> None:
        """Non-blocking result-queue sweep used while dispatching.

        Mirrors ``_collect``'s message semantics so a worker failure
        surfaces immediately even while the parent is blocked on a full
        ring, then checks that every unfinished worker is still alive.
        """
        while True:
            try:
                kind, shard, payload = self._out_queue.get_nowait()
            except queue_mod.Empty:
                break
            if payload.get("run") not in (None, run):
                continue
            if kind == "telemetry":
                on_telemetry(shard, payload)
                continue
            if kind == "error":
                if payload.get("code") == "interrupted":
                    raise KeyboardInterrupt
                raise EngineError(
                    f"shard {shard} worker failed: {payload.get('error')}",
                    shard=shard,
                    worker_error=payload,
                )
            results[shard] = payload
        for shard, proc in self._procs.items():
            if shard not in results and not proc.is_alive():
                raise EngineError(
                    f"shard {shard} worker died (exit code {proc.exitcode}) "
                    f"before reporting a result",
                    shard=shard,
                )

    def _dispatch(self, config: SoakConfig, program: str, results,
                  on_telemetry, run: int) -> None:
        """Generate the stream once and fan it out to the shard rings."""
        engine = self.engine
        workers, policy = engine.workers, engine.shard_policy
        cap = _record_cap(engine.ring_bytes)
        buffers = [bytearray() for _ in range(workers)]
        pack = _REC.pack
        drained = time.monotonic()

        def poll() -> None:
            # Invoked every ring spin while blocked on backpressure.
            # Rate-limit the actual sweep: a queue poll + liveness check
            # per 2ms spin burns the very CPU the worker needs to drain
            # the ring on a single-core host; every 50ms is more than
            # enough to surface a crashed worker.
            nonlocal drained
            now = time.monotonic()
            if now - drained < 0.05:
                return
            drained = now
            self._drain(results, on_telemetry, run)

        def flush(shard: int) -> None:
            try:
                self._rings[shard].put(
                    bytes(buffers[shard]), poll=poll,
                    timeout=engine.watchdog_s,
                )
            except RingTimeout as exc:
                raise EngineError(
                    f"engine watchdog: shard {shard} ring stayed full for "
                    f"{engine.watchdog_s}s ({exc})",
                    shard=shard,
                ) from exc
            buffers[shard].clear()

        for index, data, in_port in iter_stream_bytes(
            config, program, NUM_PORTS
        ):
            shard = assign_shard(index, data, workers, policy)
            buffer = buffers[shard]
            buffer += pack(index, in_port, len(data))
            buffer += data
            if len(buffer) >= cap:
                flush(shard)
        for shard in range(workers):
            if buffers[shard]:
                flush(shard)
            try:
                self._rings[shard].close_stream(
                    poll=poll, timeout=engine.watchdog_s
                )
            except RingTimeout as exc:
                raise EngineError(
                    f"engine watchdog: shard {shard} ring stayed full for "
                    f"{engine.watchdog_s}s ({exc})",
                    shard=shard,
                ) from exc

    # ------------------------------------------------------------------
    def submit(self, config: SoakConfig, program: str,
               telemetry=None) -> Dict[str, object]:
        """Run one program across the resident workers; returns the
        merged program block (same shape as replay mode's)."""
        if self._broken:
            raise EngineError(
                "worker pool is closed or broken (failed run); "
                "create a new pool"
            )
        self.start()
        engine = self.engine
        # Compile in the parent: a bad program fails here, once, before
        # any worker sees a control message.
        composed = compose_program(config, program)
        self._run_id += 1
        run = self._run_id
        epochs_seen: Dict[int, int] = {}

        def on_telemetry(shard: int, payload: Dict[str, object]) -> None:
            epoch = int(payload.get("epoch", 0))  # type: ignore[arg-type]
            epochs_seen[shard] = max(epochs_seen.get(shard, 0), epoch)
            if telemetry is not None:
                telemetry.publish(
                    program,
                    shard,
                    epoch,
                    payload.get("metrics", {}),
                    ledger=payload.get("ledger"),
                    final=bool(payload.get("final", False)),
                    run=run,
                )

        results: Dict[int, Dict[str, object]] = {}
        start = time.perf_counter()
        try:
            for conn in self._conns:
                conn.send(
                    {
                        "kind": "run",
                        "run": run,
                        "config": config,
                        "program": program,
                        "composed": composed,
                    }
                )
            self._dispatch(config, program, results, on_telemetry, run)
            results = _collect(
                self._procs,
                self._out_queue,
                engine,
                on_telemetry=on_telemetry,
                expect_run=run,
                initial=results,
            )
        except BaseException:
            self._broken = True
            raise
        wall_s = time.perf_counter() - start
        shards = [results[shard] for shard in sorted(results)]
        if telemetry is not None and engine.collect_metrics:
            _publish_final_epochs(
                telemetry, program, shards, epochs_seen, run=run
            )
        return _merge_blocks(program, config, engine, shards, wall_s)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down workers and destroy queue + shared-memory rings."""
        if not self._started:
            return
        for conn in self._conns:
            try:
                conn.send({"kind": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs.values():
            proc.join(timeout=1)
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            if proc.pid is not None:
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._out_queue is not None:
            self._out_queue.close()
            self._out_queue.cancel_join_thread()
        for ring in self._rings:
            ring.close()
            ring.unlink()
        self._rings.clear()
        self._conns.clear()
        self._procs.clear()
        self._out_queue = None
        self._started = False
        self._broken = True  # a closed pool cannot accept new runs

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
