"""Resident worker pool: one fork, many runs, parent-side dispatch.

This is the ``ingest="dispatch"`` substrate of the sharded engine
(:mod:`repro.targets.engine`).  The legacy replay mode makes every
worker regenerate the *entire* deterministic stream and filter it down
to its shard — per-worker work is O(total stream), so adding workers
adds wall-clock on any machine without a spare core per worker.  Here
the parent generates the stream exactly once, assigns each packet's
shard (the same pure :func:`~repro.targets.engine.assign_shard`), and
pushes ``(index, in_port, bytes)`` records to long-lived workers over
per-shard SPSC shared-memory rings (:mod:`repro.targets.ring`):

* **one fork, many runs** — :meth:`WorkerPool.start` spawns the
  workers once; every :meth:`WorkerPool.submit` sends a ``run`` control
  message (program name, soak config, and the *pickled compiled
  pipeline*) down each worker's pipe.  No ``_SHARED_PIPELINES``
  fork-inheritance dict, so non-fork start methods work too.
* **batched records** — ring traffic is packed several packets per
  record (a small fixed header per packet), so the per-record ring
  bookkeeping amortizes to noise next to pipeline execution.
* **backpressure, never loss** — a full ring blocks the parent until
  the worker drains it; while blocked the parent keeps polling the
  result queue so a crashed worker surfaces immediately.
* **determinism preserved** — workers consume exactly the packets their
  shard owns, in global-index order, and run the very same
  :func:`~repro.targets.engine._consume` loop (same ``BATCH_SIZE``
  batching) as replay workers, so per-shard digests — and therefore the
  pinned golden merged digests — are bit-identical across ingest modes.
* **self-healing** — a replica death mid-stream (SIGKILL, hard exit,
  hung ring, watchdog) no longer breaks the pool.  A supervisor
  (:mod:`repro.targets.supervision`) respawns a fresh replica that
  *replays* its deterministic prefix up to the shard's acknowledged
  completed watermark, while the parent redispatches only the
  unacknowledged suffix over a fresh ring — so the merged digest is
  provably identical to an undisturbed run (DESIGN.md §14).  When the
  :class:`~repro.targets.supervision.RestartPolicy` budget runs out the
  shard is *abandoned*: surviving shards drain, then the run fails with
  a structured partial-result :class:`~repro.targets.engine
  .EngineError` naming the dead shard and its watermark.

Every message a pool worker posts is tagged with the pool run id *and*
the worker attempt, so stale messages from a replaced incarnation are
discarded; telemetry publishes carry both through to
:class:`~repro.obs.telemetry.LiveTelemetry`, whose per-source epochs
restart at each new run (a restarted replica's epochs are offset past
its predecessor's so the live view stays monotone).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import signal
import struct
import time
import traceback
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.packet import Packet
from repro.obs.metrics import METRICS
from repro.targets.engine import (
    EngineConfig,
    EngineError,
    _consume,
    _merge_blocks,
    _mp_context,
    _publish_final_epochs,
    _worker_init,
    assign_shard,
    shard_seed,
)
from repro.targets.ring import RingTimeout, ShardRing
from repro.targets.soak import (
    NUM_PORTS,
    SoakConfig,
    build_switch,
    compose_program,
    iter_stream_bytes,
)
from repro.targets.supervision import RestartPolicy, Supervisor

#: Per-packet header inside a ring record: global index (uint64),
#: ingress port (uint16), payload length (uint32), little-endian.
_REC = struct.Struct("<QHI")


def _record_cap(ring_bytes: int) -> int:
    """Flush threshold for the parent's per-shard pack buffers.

    Scales with the ring so tiny test rings still fit whole records
    (a record must fit the ring with room for a wrap marker)."""
    return max(512, min(8192, ring_bytes // 4))


def _iter_ring(
    ring: ShardRing, poll=None
) -> Iterator[Tuple[int, Packet, int]]:
    """Decode a worker's ring into its ``(index, packet, in_port)``
    sub-stream; ends at the end-of-stream sentinel."""
    while True:
        record = ring.get(poll=poll)
        if record is None:
            return
        view = memoryview(record)
        offset, end = 0, len(record)
        while offset < end:
            index, in_port, length = _REC.unpack_from(record, offset)
            offset += _REC.size
            # Packet() copies into its own bytearray; handing it the
            # memoryview slice skips the intermediate bytes copy.
            yield index, Packet(view[offset : offset + length]), in_port
            offset += length


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _resume_stream(
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    shard: int,
    watermark: int,
    ring: ShardRing,
    poll,
) -> Iterator[Tuple[int, Packet, int]]:
    """A replacement replica's input stream.

    The prefix — every shard-owned packet with global index up to the
    acknowledged ``watermark`` — is regenerated locally from the pure
    ``(seed, program)`` stream, replaying the dead predecessor's work
    to rebuild identical deterministic state (fault-plan RNG streams
    advance per processed packet, the digest refolds the same verdicts
    in the same order).  The suffix arrives over the fresh ring: the
    parent redispatches exactly the indices above the watermark, so the
    chained stream is the shard's full sub-stream, each index exactly
    once, in global order.
    """
    workers, policy = engine.workers, engine.shard_policy
    for index, data, in_port in iter_stream_bytes(config, program, NUM_PORTS):
        if index > watermark:
            break
        if assign_shard(index, data, workers, policy) == shard:
            yield index, Packet(data), in_port
    yield from _iter_ring(ring, poll=poll)


def _stalled(stream, stalls):
    """Chaos ``stall`` wrapper: sleep before the scheduled indices."""
    pending = sorted(stalls)
    for item in stream:
        while pending and item[0] >= pending[0][0]:
            time.sleep(pending.pop(0)[1])
        yield item


def _run_pool_shard(
    config: SoakConfig,
    program: str,
    engine: EngineConfig,
    shard: int,
    run: int,
    attempt: int,
    resume_from: int,
    stalls,
    composed,
    ring: ShardRing,
    out_queue,
    recorder,
) -> Dict[str, object]:
    """Execute one submitted run inside a resident worker."""
    # Fresh registry every run: a resident worker still holds the
    # previous run's counters, and the parent merges our snapshot.
    _worker_init(engine)
    switch = build_switch(
        config,
        program,
        composed,
        fault_seed=shard_seed(config.seed, program, shard),
    )

    def publish(epoch: int, ledger: Dict[str, int], watermark: int) -> None:
        out_queue.put(
            (
                "telemetry",
                shard,
                {
                    "epoch": epoch,
                    "metrics": METRICS.snapshot(),
                    "ledger": ledger,
                    "watermark": watermark,
                    "final": False,
                    "run": run,
                    "attempt": attempt,
                },
            )
        )

    def ack(watermark: int) -> None:
        # Lightweight completed-watermark acknowledgement: keeps the
        # supervisor's resume point fresh even with telemetry off.
        out_queue.put(
            (
                "ack",
                shard,
                {"watermark": watermark, "run": run, "attempt": attempt},
            )
        )

    parent = os.getppid()

    def parent_alive() -> None:
        if os.getppid() != parent:  # pragma: no cover - orphan cleanup
            os._exit(1)

    if resume_from >= 0:
        stream = _resume_stream(
            config, program, engine, shard, resume_from, ring, parent_alive
        )
    else:
        stream = _iter_ring(ring, poll=parent_alive)
    if stalls:
        stream = _stalled(stream, stalls)
    block = _consume(
        switch,
        stream,
        engine,
        shard,
        publish=publish if engine.collect_metrics else None,
        recorder=recorder,
        ack=ack if engine.ack_interval_pkts > 0 else None,
        batch_lanes=getattr(config, "batch_lanes", 256),
    )
    block["seed"] = shard_seed(config.seed, program, shard)
    block["run"] = run
    block["attempt"] = attempt
    if resume_from >= 0:
        block["resumed_from"] = resume_from
    return block


def _pool_worker(control, out_queue, ring: ShardRing, shard: int,
                 engine: EngineConfig) -> None:
    """Resident worker loop: wait for control messages, run, repeat.

    Posts ``(kind, shard, payload)`` results tagged with the run id and
    this incarnation's attempt number; a failed run posts an error and
    ends the loop (the supervisor respawns a fresh process — an
    erroring incarnation is never reused).
    """
    from repro.obs.telemetry import FlightRecorder

    run: Optional[int] = None
    attempt = 1
    recorder = None
    try:
        while True:
            try:
                message = control.recv()
            except (EOFError, OSError):  # parent went away
                return
            kind = message.get("kind")
            if kind == "shutdown":
                return
            if kind != "run":  # pragma: no cover - protocol guard
                continue
            run = message["run"]
            attempt = message.get("attempt", 1)
            config = message["config"]
            if shard == 0 and engine.sabotage == "exit":
                os._exit(17)
            if shard == 0 and engine.sabotage == "error":
                raise RuntimeError("sabotaged worker (test hook)")
            if shard == 0 and engine.sabotage == "interrupt":
                raise KeyboardInterrupt
            recorder = (
                FlightRecorder(config.flight_recorder, shard=shard)
                if config.flight_recorder > 0
                else None
            )
            out_queue.put(
                (
                    "ok",
                    shard,
                    _run_pool_shard(
                        config,
                        message["program"],
                        engine,
                        shard,
                        run,
                        attempt,
                        message.get("resume_from", -1),
                        message.get("stalls") or [],
                        message["composed"],
                        ring,
                        out_queue,
                        recorder,
                    ),
                )
            )
    except KeyboardInterrupt:
        out_queue.put(
            (
                "error",
                shard,
                {
                    "error": "interrupted",
                    "code": "interrupted",
                    "run": run,
                    "attempt": attempt,
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001 — report, never hang the pool
        detail = {
            "error": f"{type(exc).__name__}: {exc}",
            "code": getattr(exc, "code", "worker-error"),
            "traceback": traceback.format_exc(limit=8),
            "run": run,
            "attempt": attempt,
        }
        if recorder is not None and len(recorder):
            detail["flight_recorder"] = recorder.dump()
        out_queue.put(("error", shard, detail))
    finally:
        ring.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _FlushAbort(Exception):
    """The shard whose buffer was being flushed was just restarted or
    abandoned; the in-flight payload is covered by catch-up redispatch
    (restart) or moot (abandon), so the blocked ``put`` must unwind."""


class _CatchUpFailed(Exception):
    """The replacement replica died while its suffix was being
    redispatched; recorded as a fresh failure for the supervisor."""


class _RunState:
    """Everything one ``submit()`` tracks: results, acks, failures,
    scheduled chaos, and telemetry epoch bookkeeping."""

    def __init__(self, run, config, program, composed, supervisor,
                 telemetry) -> None:
        self.run = run
        self.config = config
        self.program = program
        self.composed = composed
        self.sup: Supervisor = supervisor
        self.telemetry = telemetry
        self.results: Dict[int, Dict[str, object]] = {}
        self.epochs_seen: Dict[int, int] = {}
        #: Epoch base per shard: a restarted replica's epochs restart at
        #: 1, so the parent offsets them past its predecessor's to keep
        #: the live view's replace-by-epoch fold monotone.
        self.epoch_offset: Dict[int, int] = {}
        #: Deferred failures: ``(shard, reason, detail)`` awaiting a
        #: supervisor decision (restart vs abandon).
        self.failures: List[Tuple[int, str, Dict[str, object]]] = []
        #: ``(shard, attempt)`` pairs already recorded — one failure per
        #: incarnation, however many signals it produces (error message
        #: *and* death, say).
        self.failed_attempts: set = set()
        #: Highest global index generated so far; catch-up redispatches
        #: ``(watermark, gen_high]``.
        self.gen_high = -1
        self.gen_done = False
        self.sentinel_sent: set = set()
        #: Parent-side chaos events (kill/stop) not yet fired, sorted by
        #: firing index.
        self.pending_chaos: list = []
        #: Scheduled SIGCONTs for chaos-stopped workers.
        self.resumes: List[Tuple[float, object]] = []


class WorkerPool:
    """``engine.workers`` resident shard workers fed by parent dispatch.

    Usage::

        with WorkerPool(engine) as pool:
            for name in config.programs:
                blocks[name] = pool.submit(config, name)

    ``start()`` is idempotent and implied by the first ``submit()``.
    Worker failures mid-run are *supervised*: the pool restarts the
    replica and deterministically recovers the shard (see the module
    docstring) within the engine's
    :class:`~repro.targets.supervision.RestartPolicy`.  Only after the
    policy is exhausted — or on ``KeyboardInterrupt`` — is the pool
    **broken** and further submits refused.  ``close()`` is idempotent
    (``__exit__`` calls it unconditionally) and tears down workers,
    queue, and shared-memory rings; stopped or wedged workers are
    SIGCONT+SIGKILLed, never leaked.
    """

    def __init__(self, engine: EngineConfig,
                 start_method: Optional[str] = None) -> None:
        engine.validate()
        self.engine = engine
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else _mp_context()
        )
        self._rings: List[Optional[ShardRing]] = []
        self._conns: list = []
        self._procs: Dict[int, object] = {}
        self._out_queue = None
        self._run_id = 0
        self._started = False
        self._broken = False
        self._closed = False
        #: Shard currently being flushed (``None`` outside a blocking
        #: ring put); a restart/abandon of that shard mid-put raises
        #: :class:`_FlushAbort` to unwind the now-pointless write.
        self._flushing: Optional[int] = None
        self._in_restart = False
        #: Parent-side pack buffers, live only while dispatching (a
        #: restart clears the failed shard's buffer — catch-up covers
        #: those indices).
        self._buffers: Optional[List[bytearray]] = None

    # ------------------------------------------------------------------
    def _spawn_worker(self, shard: int) -> None:
        """(Re)create one shard slot: fresh ring, pipe, process.

        Always a fresh ring: a fork-inherited ring object carries the
        parent's construction-time cached indices, so re-using a drained
        segment for a replacement replica would replay stale bytes.
        """
        ring = ShardRing(self.engine.ring_bytes)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(child_conn, self._out_queue, ring, shard, self.engine),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._rings[shard] = ring
        self._conns[shard] = parent_conn
        self._procs[shard] = proc

    def _reap(self, shard: int) -> None:
        """Kill and forget one shard's worker, ring, and pipe.

        SIGKILL (not terminate): it reaps a SIGSTOPped worker too, and
        a replica being replaced has nothing graceful left to do.
        """
        proc = self._procs[shard]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5)
        conn = self._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._conns[shard] = None
        ring = self._rings[shard]
        if ring is not None:
            ring.close()
            ring.unlink()
            self._rings[shard] = None

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        if self._closed:
            raise EngineError(
                "worker pool is closed or broken (failed run); "
                "create a new pool"
            )
        self._out_queue = self._ctx.Queue()
        self._rings = [None] * self.engine.workers
        self._conns = [None] * self.engine.workers
        self._procs = {}
        try:
            for shard in range(self.engine.workers):
                self._spawn_worker(shard)
        except BaseException:
            self._started = True  # so close() reaps the partial fleet
            self.close()
            raise
        self._started = True
        return self

    # ------------------------------------------------------------------
    # Failure intake
    # ------------------------------------------------------------------
    def _record_failure(self, state: _RunState, shard: int, reason: str,
                        detail: Optional[Dict[str, object]] = None) -> None:
        if shard in state.results or shard in state.sup.abandoned:
            return
        key = (shard, state.sup.attempts[shard])
        if key in state.failed_attempts:
            return
        state.failed_attempts.add(key)
        state.failures.append((shard, reason, dict(detail or {})))

    def _handle_message(self, state: _RunState, kind: str, shard: int,
                        payload: Dict[str, object]) -> bool:
        """Fold one result-queue message; returns True when it came
        from a still-pending shard (the watchdog re-arm signal)."""
        if payload.get("run") not in (None, state.run):
            return False  # stale message from an earlier pool run
        attempt = payload.get("attempt")
        if attempt is not None and attempt != state.sup.attempts[shard]:
            return False  # stale message from a replaced incarnation
        pending = (
            shard not in state.results and shard not in state.sup.abandoned
        )
        if kind == "telemetry":
            watermark = payload.get("watermark")
            if pending:
                state.sup.ack(shard, watermark)  # type: ignore[arg-type]
            epoch = (
                int(payload.get("epoch", 0))  # type: ignore[arg-type]
                + state.epoch_offset.get(shard, 0)
            )
            state.epochs_seen[shard] = max(
                state.epochs_seen.get(shard, 0), epoch
            )
            if state.telemetry is not None:
                state.telemetry.publish(
                    state.program,
                    shard,
                    epoch,
                    payload.get("metrics", {}),
                    ledger=payload.get("ledger"),
                    final=bool(payload.get("final", False)),
                    run=state.run,
                    watermark=watermark,  # type: ignore[arg-type]
                )
            return pending
        if kind == "ack":
            if pending:
                state.sup.ack(shard, payload.get("watermark"))  # type: ignore[arg-type]
            return pending
        if kind == "error":
            if payload.get("code") == "interrupted":
                raise KeyboardInterrupt
            self._record_failure(state, shard, "error", payload)
            return pending
        if kind == "ok" and pending:
            state.results[shard] = payload
            state.sup.ack(shard, payload.get("watermark"))  # type: ignore[arg-type]
            return True
        return False

    def _sweep_liveness(self, state: _RunState) -> None:
        for shard, proc in self._procs.items():
            if shard in state.results or shard in state.sup.abandoned:
                continue
            if not proc.is_alive():
                self._record_failure(
                    state,
                    shard,
                    "died",
                    {
                        "error": (
                            f"worker died (exit code {proc.exitcode}) "
                            f"before reporting a result"
                        ),
                        "exitcode": proc.exitcode,
                    },
                )

    def _drain(self, state: _RunState) -> None:
        """Non-blocking result-queue sweep + liveness check.  Failures
        are *recorded*, not raised — the supervisor decides their fate
        in :meth:`_process_failures`."""
        while True:
            try:
                kind, shard, payload = self._out_queue.get_nowait()
            except queue_mod.Empty:
                break
            self._handle_message(state, kind, shard, payload)
        self._sweep_liveness(state)

    # ------------------------------------------------------------------
    # Chaos firing
    # ------------------------------------------------------------------
    def _fire_chaos(self, state: _RunState, index: Optional[int]) -> None:
        """Fire parent-side chaos events due at stream position
        ``index``; ``None`` fires everything left (events scheduled past
        the end of the stream — final-epoch faults)."""
        still_pending = []
        for event in state.pending_chaos:
            if not (index is None or event.pkt <= index):
                still_pending.append(event)
                continue
            shard = event.shard
            if shard in state.results or shard in state.sup.abandoned:
                event.fired = True  # nothing left to disturb
                continue
            proc = self._procs.get(shard)
            if proc is None or not proc.is_alive():
                # The incumbent is already dead (possibly from our own
                # earlier event, not yet detected) — hold the event so
                # it lands on the *replacement* replica instead of a
                # corpse.  A double-kill means two distinct casualties.
                still_pending.append(event)
                continue
            event.fired = True
            try:
                if event.action == "kill":
                    os.kill(proc.pid, signal.SIGKILL)
                elif event.action == "stop":
                    os.kill(proc.pid, signal.SIGSTOP)
                    state.resumes.append(
                        (time.monotonic() + event.resume_s, proc)
                    )
            except (ProcessLookupError, OSError):  # pragma: no cover - raced
                pass
        state.pending_chaos[:] = still_pending

    def _fire_resumes(self, state: _RunState, force: bool = False) -> None:
        if not state.resumes:
            return
        now = time.monotonic()
        remaining = []
        for due, proc in state.resumes:
            if force or now >= due:
                if proc.is_alive():
                    try:
                        os.kill(proc.pid, signal.SIGCONT)
                    except (ProcessLookupError, OSError):  # pragma: no cover
                        pass
            else:
                remaining.append((due, proc))
        state.resumes[:] = remaining

    # ------------------------------------------------------------------
    # Supervision: restart / abandon
    # ------------------------------------------------------------------
    def _send_run(self, state: _RunState, shard: int) -> None:
        sup = state.sup
        chaos = self.engine.chaos
        message = {
            "kind": "run",
            "run": state.run,
            "attempt": sup.attempts[shard],
            "resume_from": sup.watermarks[shard],
            "config": state.config,
            "program": state.program,
            "composed": state.composed,
            "stalls": (
                chaos.worker_stalls(shard, sup.attempts[shard])
                if chaos is not None
                else []
            ),
        }
        try:
            self._conns[shard].send(message)
        except (BrokenPipeError, OSError):
            self._record_failure(
                state,
                shard,
                "send-failed",
                {"error": "control pipe closed before the run message "
                          "was delivered"},
            )

    def _record_event(self, state: _RunState, decision: str, shard: int,
                      reason: str) -> None:
        if state.telemetry is None:
            return
        state.telemetry.record_event(
            {
                "event": decision,
                "program": state.program,
                "shard": shard,
                "attempt": state.sup.attempts[shard],
                "reason": reason,
                "watermark": state.sup.watermarks[shard],
                "run": state.run,
            }
        )

    def _catch_up(self, state: _RunState, shard: int) -> None:
        """Redispatch the unacknowledged suffix ``(watermark, gen_high]``
        to a freshly restarted shard, regenerated from the pure stream
        (the replacement replays ``[0, watermark]`` itself — together
        the two halves rebuild the shard's exact sub-stream)."""
        engine = self.engine
        watermark = state.sup.watermarks[shard]
        ring = self._rings[shard]
        proc = self._procs[shard]
        workers, policy = engine.workers, engine.shard_policy

        def poll() -> None:
            self._fire_resumes(state)
            if not proc.is_alive():
                raise _CatchUpFailed()

        try:
            if state.gen_high > watermark:
                cap = _record_cap(engine.ring_bytes)
                pack = _REC.pack
                buffer = bytearray()
                for index, data, in_port in iter_stream_bytes(
                    state.config, state.program, NUM_PORTS
                ):
                    if index > state.gen_high:
                        break
                    if index <= watermark:
                        continue
                    if assign_shard(index, data, workers, policy) != shard:
                        continue
                    buffer += pack(index, in_port, len(data))
                    buffer += data
                    if len(buffer) >= cap:
                        ring.put(
                            bytes(buffer), poll=poll,
                            timeout=engine.watchdog_s,
                        )
                        buffer.clear()
                if buffer:
                    ring.put(
                        bytes(buffer), poll=poll, timeout=engine.watchdog_s
                    )
            if state.gen_done:
                ring.close_stream(poll=poll, timeout=engine.watchdog_s)
                state.sentinel_sent.add(shard)
        except _CatchUpFailed:
            self._record_failure(
                state,
                shard,
                "died",
                {
                    "error": (
                        f"worker died (exit code {proc.exitcode}) during "
                        f"catch-up redispatch"
                    ),
                    "exitcode": proc.exitcode,
                },
            )
        except RingTimeout as exc:
            self._record_failure(
                state,
                shard,
                "ring-stall",
                {
                    "error": (
                        f"ring stayed full for {engine.watchdog_s}s during "
                        f"catch-up ({exc})"
                    )
                },
            )

    def _process_failures(self, state: _RunState) -> None:
        """Resolve every deferred failure: restart (respawn + replay +
        redispatch) within policy, abandon beyond it.

        Raises :class:`_FlushAbort` after resolving if the shard
        currently being flushed was among the casualties, so the
        blocked ``put`` to its defunct ring unwinds.
        """
        if self._in_restart:
            # Already resolving (a catch-up put's poll drained a new
            # failure); the outer loop will pick it up.
            return
        self._in_restart = True
        abort_flush = False
        try:
            while state.failures:
                shard, reason, detail = state.failures.pop(0)
                if shard in state.results or shard in state.sup.abandoned:
                    continue
                # The result may have raced the failure signal (a worker
                # that posted "ok" and then exited) — drain first.
                self._drain(state)
                if shard in state.results:
                    continue
                decision = state.sup.decide(shard, reason, detail)
                self._record_event(state, decision, shard, reason)
                if self._flushing == shard:
                    abort_flush = True
                if decision == Supervisor.ABANDON:
                    self._reap(shard)
                    if self._buffers is not None:
                        self._buffers[shard].clear()
                    continue
                delay = state.sup.backoff_s(shard)
                if delay > 0:
                    time.sleep(delay)
                self._reap(shard)
                # The replacement's epochs restart at 1; base them past
                # everything its predecessor published.
                state.epoch_offset[shard] = state.epochs_seen.get(shard, 0)
                self._spawn_worker(shard)
                if self._buffers is not None:
                    # Buffered-but-unflushed indices are <= gen_high, so
                    # catch-up regenerates them; keeping the buffer
                    # would dispatch them twice.
                    self._buffers[shard].clear()
                self._send_run(state, shard)
                self._catch_up(state, shard)
        finally:
            self._in_restart = False
        if abort_flush:
            raise _FlushAbort()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, state: _RunState) -> None:
        """Generate the stream once and fan it out to the shard rings."""
        engine = self.engine
        workers, policy = engine.workers, engine.shard_policy
        cap = _record_cap(engine.ring_bytes)
        buffers = [bytearray() for _ in range(workers)]
        self._buffers = buffers
        pack = _REC.pack
        abandoned = state.sup.abandoned
        drained = time.monotonic()

        def sweep() -> None:
            # Rate-limit the queue poll + liveness check: one per 2ms
            # ring spin burns the very CPU the worker needs to drain
            # the ring on a single-core host; every 50ms is more than
            # enough to surface a crashed worker.
            nonlocal drained
            now = time.monotonic()
            if now - drained < 0.05:
                return
            drained = now
            self._drain(state)

        def poll() -> None:
            # Invoked every ring spin while blocked on backpressure.
            self._fire_resumes(state)
            sweep()
            if state.failures:
                self._process_failures(state)  # may raise _FlushAbort

        def flush(shard: int) -> None:
            payload = bytes(buffers[shard])
            buffers[shard].clear()
            self._flushing = shard
            try:
                self._rings[shard].put(
                    payload, poll=poll, timeout=engine.watchdog_s
                )
            except _FlushAbort:
                pass  # the restart's catch-up re-covers this payload
            except RingTimeout as exc:
                self._record_failure(
                    state,
                    shard,
                    "ring-stall",
                    {
                        "error": (
                            f"ring stayed full for {engine.watchdog_s}s "
                            f"({exc})"
                        )
                    },
                )
                try:
                    self._process_failures(state)
                except _FlushAbort:
                    pass
            finally:
                self._flushing = None

        try:
            for index, data, in_port in iter_stream_bytes(
                state.config, state.program, NUM_PORTS
            ):
                if state.pending_chaos and state.pending_chaos[0].pkt <= index:
                    self._fire_chaos(state, index)
                if state.resumes:
                    self._fire_resumes(state)
                # Failures resolved here catch up through ``gen_high``,
                # which must still exclude the current packet — it has
                # not been handed to any ring or buffer yet, and the
                # loop below will dispatch it through the normal path.
                # Advancing ``gen_high`` too early would make a restart
                # redispatch it AND buffer it: a duplicated unit.
                if state.failures:
                    self._process_failures(state)
                elif index & 1023 == 0:
                    sweep()
                    if state.failures:
                        self._process_failures(state)
                shard = assign_shard(index, data, workers, policy)
                state.gen_high = index
                if shard in abandoned:
                    continue
                buffer = buffers[shard]
                buffer += pack(index, in_port, len(data))
                buffer += data
                if len(buffer) >= cap:
                    flush(shard)
            state.gen_done = True
            for shard in range(workers):
                if shard in abandoned:
                    continue
                if buffers[shard]:
                    flush(shard)
                if shard in abandoned or shard in state.sentinel_sent:
                    continue  # a restart's catch-up already closed it
                self._flushing = shard
                try:
                    self._rings[shard].close_stream(
                        poll=poll, timeout=engine.watchdog_s
                    )
                    state.sentinel_sent.add(shard)
                except _FlushAbort:
                    pass  # catch-up sent the sentinel on the new ring
                except RingTimeout as exc:
                    self._record_failure(
                        state,
                        shard,
                        "ring-stall",
                        {
                            "error": (
                                f"ring stayed full for {engine.watchdog_s}s "
                                f"({exc})"
                            )
                        },
                    )
                    try:
                        self._process_failures(state)
                    except _FlushAbort:
                        pass
                finally:
                    self._flushing = None
            if state.pending_chaos:
                # Events scheduled past the last generated index fire
                # after the sentinels: the "kill during the final
                # epoch" site — the worker is draining its ring tail or
                # finalizing its block.
                self._fire_chaos(state, None)
        finally:
            self._buffers = None

    # ------------------------------------------------------------------
    # Collect
    # ------------------------------------------------------------------
    def _collect_supervised(self, state: _RunState) -> None:
        """Gather one result per non-abandoned shard, restarting
        casualties along the way; raises the structured partial-result
        error if any shard ends the run abandoned."""
        engine = self.engine
        deadline = time.monotonic() + engine.watchdog_s
        while True:
            pending = [
                shard
                for shard in range(engine.workers)
                if shard not in state.results
                and shard not in state.sup.abandoned
            ]
            if not pending:
                break
            rearm = False
            try:
                kind, shard, payload = self._out_queue.get(timeout=0.2)
                rearm = self._handle_message(state, kind, shard, payload)
            except queue_mod.Empty:
                pass
            self._fire_resumes(state)
            self._sweep_liveness(state)
            if state.failures:
                self._process_failures(state)
                rearm = True
            if state.pending_chaos:
                # Deferred events (their target was dead when due) land
                # on the freshly restarted replica; the stream is fully
                # dispatched here, so everything left is due.
                self._fire_chaos(state, None)
            if rearm:
                deadline = time.monotonic() + engine.watchdog_s
            elif time.monotonic() > deadline:
                for shard in pending:
                    self._record_failure(
                        state,
                        shard,
                        "watchdog",
                        {
                            "error": (
                                f"engine watchdog: worker reported nothing "
                                f"within {engine.watchdog_s}s"
                            )
                        },
                    )
                self._process_failures(state)
                deadline = time.monotonic() + engine.watchdog_s
        if state.sup.abandoned:
            raise self._partial_error(state)

    def _partial_error(self, state: _RunState) -> EngineError:
        """The structured partial-result failure: names the dead shard,
        its completed watermark, the supervisor's event ledger, and
        compact summaries of every surviving shard's result."""
        sup = state.sup
        shard = min(sup.abandoned)
        failure = dict(sup.last_failure.get(shard, {}))
        detail_text = str(failure.get("error") or failure.get("reason", "died"))
        partial = {
            "completed": sorted(state.results),
            "abandoned": sorted(sup.abandoned),
            "shards": {
                str(s): {
                    "packets": block.get("packets"),
                    "emits": block.get("emits"),
                    "drops": block.get("drops"),
                    "digest": block.get("digest"),
                    "watermark": block.get("watermark"),
                }
                for s, block in sorted(state.results.items())
            },
        }
        return EngineError(
            f"shard {shard} worker failed and exhausted its restart budget "
            f"after {sup.restarts[shard]} restart(s): {detail_text} "
            f"(completed watermark {sup.watermarks[shard]}; "
            f"{len(state.results)} of {self.engine.workers} shards finished)",
            shard=shard,
            worker_error=failure or None,
            watermark=sup.watermarks[shard],
            supervision=sup.summary(),
            partial=partial,
        )

    # ------------------------------------------------------------------
    def submit(self, config: SoakConfig, program: str,
               telemetry=None) -> Dict[str, object]:
        """Run one program across the resident workers; returns the
        merged program block (same shape as replay mode's, plus the
        supervision fields ``restarts`` / ``watermarks`` /
        ``degraded``)."""
        if self._closed or self._broken:
            raise EngineError(
                "worker pool is closed or broken (failed run); "
                "create a new pool"
            )
        self.start()
        engine = self.engine
        # Validate and compile in the parent: a bad backend name or
        # program fails here, once, before any worker sees a control
        # message (workers would otherwise die N times on the same
        # unknown-backend error from the seam).
        config.validate()
        composed = compose_program(config, program)
        self._run_id += 1
        run = self._run_id
        policy = engine.restart if engine.restart is not None else RestartPolicy()
        sup = Supervisor(policy, config.seed, program, engine.workers)
        state = _RunState(run, config, program, composed, sup, telemetry)
        chaos = engine.chaos
        if chaos is not None:
            chaos.reset()
            state.pending_chaos = sorted(
                chaos.parent_events(), key=lambda event: event.pkt
            )
        start = time.perf_counter()
        try:
            for shard in range(engine.workers):
                if not self._procs[shard].is_alive():
                    # Idle death between runs lost no run state: repair
                    # the slot without charging the restart budget.
                    self._reap(shard)
                    self._spawn_worker(shard)
                self._send_run(state, shard)
            if state.failures:
                self._process_failures(state)
            self._dispatch(state)
            self._collect_supervised(state)
        except BaseException:
            self._broken = True
            raise
        finally:
            self._fire_resumes(state, force=True)
        wall_s = time.perf_counter() - start
        shards = [state.results[shard] for shard in sorted(state.results)]
        if telemetry is not None and engine.collect_metrics:
            _publish_final_epochs(
                telemetry, program, shards, state.epochs_seen, run=run
            )
        merged = _merge_blocks(program, config, engine, shards, wall_s)
        merged["restarts"] = {
            str(s): n for s, n in sorted(sup.restarts.items()) if n
        }
        merged["watermarks"] = {
            str(s): w for s, w in sorted(sup.watermarks.items())
        }
        merged["degraded"] = False  # abandonment raises instead
        if sup.total_restarts:
            merged["supervision"] = sup.summary()
        return merged

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down workers and destroy queue + shared-memory rings.

        Idempotent: safe before :meth:`start`, after a failed run, and
        any number of times.  Chaos-stopped workers are SIGCONTed so
        they can honor shutdown, and anything still alive after
        ``terminate`` is SIGKILLed — a closed pool leaves no orphan
        processes and no ``/dev/shm`` segments behind.
        """
        self._closed = True
        self._broken = True  # a closed pool cannot accept new runs
        if not self._started:
            return
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send({"kind": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs.values():
            if proc.pid is None:
                continue
            try:
                os.kill(proc.pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):  # pragma: no cover - gone
                pass
        for proc in self._procs.values():
            proc.join(timeout=1)
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            if proc.pid is not None:
                proc.join(timeout=1)
        for proc in self._procs.values():
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.kill()
                proc.join(timeout=5)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._out_queue is not None:
            self._out_queue.close()
            self._out_queue.cancel_join_thread()
        for ring in self._rings:
            if ring is None:
                continue
            ring.close()
            ring.unlink()
        self._rings = []
        self._conns = []
        self._procs = {}
        self._out_queue = None
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
