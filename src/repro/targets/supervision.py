"""Supervision policy for the resident worker pool.

PR 3 made the switch fault-contained per *packet*; this module makes
the engine fault-contained per *process*.  A replica death mid-stream
(SIGKILL, hard exit, hung ring) used to mark the whole pool broken;
under supervision the pool treats it the way production dataplanes
treat a device reset — a recoverable event:

* Workers acknowledge a per-shard **completed watermark**: the highest
  global packet index whose verdict has been folded into the shard
  digest (piggybacked on telemetry publishes and on lightweight
  ``("ack", ...)`` result-queue messages).
* On failure the supervisor respawns a fresh replica which *replays*
  its own prefix ``[0..watermark]`` — regenerated from the pure
  ``(seed, program)`` stream — and the parent redispatches only the
  unacknowledged suffix over a fresh ring.  Execution is deterministic
  (per-shard fault RNG streams, pure shard assignment), so the rebuilt
  verdict stream — and therefore the shard digest — is bit-identical
  to an undisturbed run.  See DESIGN.md §14 for the full argument.

:class:`RestartPolicy` bounds the healing: per-shard and run-level
restart budgets with exponential backoff (deterministically jittered
from the run seed, so soak timings replay too).  When a shard exhausts
its budget the supervisor *abandons* it: the pool drains the surviving
shards and raises a structured partial-result
:class:`~repro.targets.engine.EngineError` naming the dead shard and
its watermark, instead of tearing the run down mid-flight.

:class:`Supervisor` is pure bookkeeping — decisions, counters, event
log.  Process management (kill/spawn/redispatch) stays in
:class:`~repro.targets.pool.WorkerPool`, which owns the processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import TargetError

#: Failure reasons a supervisor distinguishes in its event log.
FAILURE_REASONS = ("died", "error", "ring-stall", "watchdog", "send-failed")


@dataclass
class RestartPolicy:
    """Bounds on self-healing: how often, how fast, when to give up."""

    #: Restarts allowed per shard per run before the shard is abandoned.
    max_restarts_per_shard: int = 2
    #: Total restarts allowed across all shards per run.
    restart_budget: int = 8
    #: First-restart backoff; doubles per subsequent restart of the
    #: same shard.
    backoff_base_s: float = 0.1
    #: Backoff ceiling.
    backoff_max_s: float = 2.0
    #: Multiplicative jitter span: the delay is scaled by a factor drawn
    #: uniformly from ``[1, 1 + jitter]`` — deterministically, from the
    #: run seed (see :meth:`Supervisor.backoff_s`).
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_restarts_per_shard < 0:
            raise TargetError(
                f"max_restarts_per_shard must be >= 0, "
                f"got {self.max_restarts_per_shard}"
            )
        if self.restart_budget < 0:
            raise TargetError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise TargetError("restart backoff times must be >= 0")
        if self.jitter < 0:
            raise TargetError(f"restart jitter must be >= 0, got {self.jitter}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_restarts_per_shard": self.max_restarts_per_shard,
            "restart_budget": self.restart_budget,
            "backoff_base_s": self.backoff_base_s,
            "backoff_max_s": self.backoff_max_s,
            "jitter": self.jitter,
        }


class Supervisor:
    """Per-run restart bookkeeping for one pool submission.

    Tracks, per shard: the current *attempt* (1 = the original worker),
    the completed watermark (-1 until the first ack), restart count, and
    abandonment.  :meth:`decide` is the whole state machine: a failure
    either earns a restart (counters advance, attempt bumps) or an
    abandonment (budget exhausted).  Everything is recorded in
    :attr:`events` so operators can reconstruct the run's history from
    the partial-result error or the telemetry snapshot.
    """

    RESTART = "restart"
    ABANDON = "abandon"

    def __init__(
        self,
        policy: RestartPolicy,
        seed: object,
        program: str,
        workers: int,
    ) -> None:
        policy.validate()
        self.policy = policy
        self.seed = seed
        self.program = program
        self.workers = workers
        self.attempts: Dict[int, int] = {s: 1 for s in range(workers)}
        self.watermarks: Dict[int, int] = {s: -1 for s in range(workers)}
        self.restarts: Dict[int, int] = {s: 0 for s in range(workers)}
        self.abandoned: set = set()
        self.total_restarts = 0
        self.events: List[Dict[str, object]] = []
        #: Last structured failure detail per shard (worker error dict,
        #: exit code, ...) — carried into the partial-result error.
        self.last_failure: Dict[int, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def ack(self, shard: int, watermark: Optional[int]) -> None:
        """Fold a completed-watermark acknowledgement (monotone max)."""
        if watermark is None:
            return
        if int(watermark) > self.watermarks[shard]:
            self.watermarks[shard] = int(watermark)

    def decide(
        self, shard: int, reason: str, detail: Optional[Dict[str, object]] = None
    ) -> str:
        """Record one failure; returns ``"restart"`` or ``"abandon"``."""
        self.last_failure[shard] = dict(detail or {}, reason=reason)
        exhausted = (
            self.restarts[shard] >= self.policy.max_restarts_per_shard
            or self.total_restarts >= self.policy.restart_budget
        )
        if exhausted:
            self.abandoned.add(shard)
            self.events.append(
                {
                    "event": self.ABANDON,
                    "program": self.program,
                    "shard": shard,
                    "attempt": self.attempts[shard],
                    "watermark": self.watermarks[shard],
                    "reason": reason,
                    "restarts": self.restarts[shard],
                }
            )
            return self.ABANDON
        self.restarts[shard] += 1
        self.total_restarts += 1
        self.attempts[shard] += 1
        self.events.append(
            {
                "event": self.RESTART,
                "program": self.program,
                "shard": shard,
                "attempt": self.attempts[shard],
                "watermark": self.watermarks[shard],
                "reason": reason,
            }
        )
        return self.RESTART

    def backoff_s(self, shard: int) -> float:
        """Delay before the shard's *current* restart (after
        :meth:`decide` returned ``"restart"``).

        Exponential in the shard's restart ordinal, capped, and scaled
        by a jitter factor drawn from a stream seeded
        ``{seed}:{program}:restart:{shard}:{ordinal}`` — fully
        deterministic, so a chaos soak's timing replays from its seed
        while a real thundering herd still decorrelates (every shard and
        every attempt draws from its own stream).
        """
        ordinal = self.restarts[shard]
        if ordinal <= 0:
            return 0.0
        delay = self.policy.backoff_base_s * (2.0 ** (ordinal - 1))
        delay = min(delay, self.policy.backoff_max_s)
        if self.policy.jitter > 0:
            rng = random.Random(
                f"{self.seed}:{self.program}:restart:{shard}:{ordinal}"
            )
            delay *= 1.0 + self.policy.jitter * rng.random()
        return min(delay, self.policy.backoff_max_s)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return bool(self.abandoned)

    def summary(self) -> Dict[str, object]:
        """JSON-able restart ledger for merged blocks / errors."""
        return {
            "restarts": {
                str(s): n for s, n in sorted(self.restarts.items()) if n
            },
            "total_restarts": self.total_restarts,
            "watermarks": {
                str(s): w for s, w in sorted(self.watermarks.items())
            },
            "abandoned": sorted(self.abandoned),
            "events": list(self.events),
        }
