"""Expression/statement interpreter for composed pipelines.

Evaluates the annotated AST directly, with P4 value semantics: ``bit<W>``
values wrap modulo 2^W, headers carry a validity bit, and table applies
consult the :class:`~repro.targets.tables.TableRuntime` state installed
through the control API.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Callable, Dict, List, Optional

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Symbol
from repro.obs.metrics import METRICS
from repro.obs.pkttrace import PacketTrace
from repro.targets.faults import DEFAULT_STEP_BUDGET, FaultError, FaultPlan
from repro.targets.tables import TableRuntime


class ExitSignal(Exception):
    """Raised by ``exit``: terminates pipeline processing."""


class ReturnSignal(Exception):
    """Raised by ``return``: terminates the current block."""


class HeaderValue:
    """Runtime value of a header instance."""

    __slots__ = ("fields", "valid")

    def __init__(self, header_type: ast.HeaderType) -> None:
        self.fields: Dict[str, int] = {name: 0 for name, _ in header_type.fields}
        self.valid = False

    def __repr__(self) -> str:
        state = "valid" if self.valid else "invalid"
        return f"HeaderValue({state}, {self.fields})"


class StructValue:
    """Runtime value of a struct instance."""

    __slots__ = ("fields",)

    def __init__(self, struct_type: ast.StructType) -> None:
        self.fields: Dict[str, object] = {
            name: default_value(ftype) for name, ftype in struct_type.fields
        }

    def __repr__(self) -> str:
        return f"StructValue({self.fields})"


class ImState:
    """The ``im_t`` logical extern: intrinsic metadata for one packet."""

    DROP_PORT = 0xFF

    def __init__(self, in_port: int = 0, pkt_len: int = 0) -> None:
        self.in_port = in_port
        self.out_port = 0
        self.dropped = False
        self.mcast_grp = 0
        self.pkt_len = pkt_len
        self.in_timestamp = 0
        self.out_timestamp = 0
        self.queue_depth = 0
        self.deq_timestamp = 0
        self.enq_timestamp = 0
        self.instance_type = 0
        self.recirculate_requested = False

    def call(self, method: str, args: List[object]) -> object:
        if method == "set_out_port":
            self.out_port = int(args[0])  # type: ignore[arg-type]
            if self.out_port == self.DROP_PORT:
                self.dropped = True
            return None
        if method == "get_out_port":
            return self.out_port
        if method == "get_in_port":
            return self.in_port
        if method == "drop":
            self.dropped = True
            return None
        if method == "copy_from":
            other = args[0]
            if isinstance(other, ImState):
                self.__dict__.update(
                    {k: v for k, v in other.__dict__.items()}
                )
            return None
        if method == "get_value":
            return self._get_value(str(args[0]))
        raise TargetError(f"im_t has no method {method!r}")

    def _get_value(self, field: str) -> int:
        mapping = {
            "IN_TIMESTAMP": self.in_timestamp,
            "OUT_TIMESTAMP": self.out_timestamp,
            "IN_PORT": self.in_port,
            "OUT_PORT": self.out_port,
            "PKT_LEN": self.pkt_len,
            "QUEUE_DEPTH": self.queue_depth,
            "DEQ_TIMESTAMP": self.deq_timestamp,
            "ENQ_TIMESTAMP": self.enq_timestamp,
            "PKT_INSTANCE_TYPE": self.instance_type,
            "MCAST_GRP": self.mcast_grp,
        }
        try:
            return mapping[field]
        except KeyError:
            raise TargetError(f"unknown intrinsic field {field!r}") from None

    def clone(self) -> "ImState":
        out = ImState()
        out.__dict__.update(self.__dict__)
        return out


class PktObject:
    """The ``pkt`` logical extern wrapping the raw packet bytes."""

    def __init__(self, packet) -> None:
        self.packet = packet

    def call(self, method: str, args: List[object]) -> object:
        if method == "get_length":
            return len(self.packet)
        if method == "copy_from":
            other = args[0]
            if isinstance(other, PktObject):
                self.packet.copy_from(other.packet)
            return None
        raise TargetError(f"pkt has no method {method!r}")


class RegisterState:
    """The ``register`` stateful extern: persists across packets."""

    def __init__(self, size: int = 1024) -> None:
        self.size = size
        self.cells: Dict[int, int] = {}

    def call(self, method: str, args: List[object]) -> object:
        if method == "write":
            index, value = int(args[0]), int(args[1])  # type: ignore[arg-type]
            self.cells[index % self.size] = value
            return None
        if method == "read":
            # Two-arg form: (out value, in index) — the interpreter
            # evaluates args by value, so read is dispatched specially
            # by the caller with an lvalue; here we only compute.
            index = int(args[-1])  # type: ignore[arg-type]
            return self.cells.get(index % self.size, 0)
        raise TargetError(f"register has no method {method!r}")


class McEngine:
    """The ``mc_engine`` logical extern (group selection only here;
    replication itself happens in the switch's PRE)."""

    def __init__(self, im: Optional[ImState] = None) -> None:
        self.im = im

    def call(self, method: str, args: List[object]) -> object:
        if method == "set_mc_group":
            if self.im is not None:
                self.im.mcast_grp = int(args[0])  # type: ignore[arg-type]
            return None
        if method == "apply":
            # Replication is realized by the PRE after ingress.
            return None
        if method == "set_buf":
            return None
        raise TargetError(f"mc_engine has no method {method!r}")


def default_value(t: ast.Type):
    """Default runtime value for a declared type."""
    if isinstance(t, ast.BitType):
        return 0
    if isinstance(t, ast.BoolType):
        return False
    if isinstance(t, ast.HeaderType):
        return HeaderValue(t)
    if isinstance(t, ast.StructType):
        return StructValue(t)
    if isinstance(t, ast.ExternType):
        if t.name == "mc_engine":
            return McEngine()
        if t.name == "register":
            return RegisterState()
        return None
    if isinstance(t, ast.EnumType):
        return t.members[0] if t.members else ""
    raise TargetError(f"cannot build a default value for {t}")


class Env:
    """Scoped variable environment.

    ``label`` names the enclosing block for diagnostics (the pipeline
    root, an action frame, a parser frame); child frames inherit their
    parent's label unless given their own.  A lookup miss raises a
    :class:`~repro.errors.TargetError` with the stable machine-readable
    code ``undefined-name`` naming both the identifier and the block, so
    the containment boundary reports a precise ``internal`` drop instead
    of a bare ``KeyError`` masquerading as a generic fault.
    """

    __slots__ = ("parent", "values", "label")

    def __init__(
        self, parent: Optional["Env"] = None, label: Optional[str] = None
    ) -> None:
        self.parent = parent
        self.values: Dict[str, object] = {}
        if label is None:
            label = parent.label if parent is not None else "pipeline"
        self.label = label

    def define(self, name: str, value: object) -> None:
        self.values[name] = value

    def _frame_of(self, name: str) -> Optional["Env"]:
        env: Optional[Env] = self
        while env is not None:
            if name in env.values:
                return env
            env = env.parent
        return None

    def _undefined(self, name: str, doing: str) -> TargetError:
        err = TargetError(
            f"{doing} undefined name {name!r} at runtime "
            f"(in {self.label})"
        )
        err.code = "undefined-name"
        return err

    def get(self, name: str) -> object:
        frame = self._frame_of(name)
        if frame is None:
            raise self._undefined(name, "read of")
        return frame.values[name]

    def set(self, name: str, value: object) -> None:
        frame = self._frame_of(name)
        if frame is None:
            raise self._undefined(name, "assignment to")
        frame.values[name] = value


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _width(t: Optional[ast.Type], what: str = "expression") -> int:
    if isinstance(t, ast.BitType):
        return t.width
    raise TargetError(f"{what} has no bit width at runtime (type {t})")


def _node_mask(expr: ast.Expr, t: Optional[ast.Type], what: str) -> int:
    """The ``(1 << width) - 1`` mask for ``expr``, memoized on the node.

    Widths are static properties of the typed AST, so both the width
    check and the mask construction happen once per node instead of once
    per packet — the interpreter's honest baseline for the compiled
    backend's build-time specialization.
    """
    try:
        return expr._mask_cache  # type: ignore[attr-defined]
    except AttributeError:
        mask = (1 << _width(t, what)) - 1
        expr._mask_cache = mask  # type: ignore[attr-defined]
        return mask


def _node_width(expr: ast.Expr, t: Optional[ast.Type], what: str) -> int:
    """Bit width of ``expr``, memoized on the node (see :func:`_node_mask`)."""
    try:
        return expr._width_cache  # type: ignore[attr-defined]
    except AttributeError:
        width = _width(t, what)
        expr._width_cache = width  # type: ignore[attr-defined]
        return width


class Interpreter:
    """Executes statements of a composed pipeline."""

    def __init__(
        self,
        tables: Dict[str, TableRuntime],
        actions: Dict[str, ast.ActionDecl],
    ) -> None:
        self.tables = tables
        self.actions = actions
        self.extract_hook: Optional[Callable] = None  # set by native parser
        self.module_hook: Optional[Callable] = None  # set by orchestration
        self.table_trace: List[str] = []
        # Per-packet trace sink; set by the pipeline around process().
        self.ptrace: Optional[PacketTrace] = None
        # Resource guard: statements executed for the current packet.
        # The pipeline resets `steps` per packet; exceeding the budget
        # raises FaultError("step-budget"), which the switch converts
        # into a counted drop.
        self.steps = 0
        self.step_limit = DEFAULT_STEP_BUDGET
        # Fault injection plan (None on the production path).
        self.faults: Optional[FaultPlan] = None
        # Stage-latency sampling flag for the current packet; set by the
        # pipeline (every LATENCY_SAMPLE_EVERY-th packet while metrics
        # are enabled) so per-table timing stays off the common path.
        self.lat_sample = False

    # ==================================================================
    # Statements
    # ==================================================================
    def exec_block(self, stmts: List[ast.Stmt], env: Env) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.Stmt, env: Env) -> None:
        steps = self.steps + 1
        self.steps = steps
        if steps > self.step_limit:
            raise FaultError(
                "step-budget",
                f"interpreter exceeded {self.step_limit} statements "
                f"for one packet",
            )
        if isinstance(stmt, ast.BlockStmt):
            self.exec_block(stmt.stmts, Env(env))
        elif isinstance(stmt, ast.AssignStmt):
            value = self.eval(stmt.rhs, env)
            self.assign(stmt.lhs, value, env)
        elif isinstance(stmt, ast.VarDeclStmt):
            value = (
                self.eval(stmt.init, env)
                if stmt.init is not None
                else default_value(stmt.var_type)
            )
            env.define(stmt.name, value)
        elif isinstance(stmt, ast.MethodCallStmt):
            self.eval(stmt.call, env)
        elif isinstance(stmt, ast.IfStmt):
            if self.eval(stmt.cond, env):
                self.exec_stmt(stmt.then_body, env)
            elif stmt.else_body is not None:
                self.exec_stmt(stmt.else_body, env)
        elif isinstance(stmt, ast.SwitchStmt):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.ExitStmt):
            raise ExitSignal()
        elif isinstance(stmt, ast.ReturnStmt):
            raise ReturnSignal()
        else:
            raise TargetError(f"cannot execute {type(stmt).__name__}")

    def _exec_switch(self, stmt: ast.SwitchStmt, env: Env) -> None:
        subject = self.eval(stmt.subject, env)
        matched = None
        for index, case in enumerate(stmt.cases):
            for keyset in case.keysets:
                if isinstance(keyset, ast.DefaultExpr):
                    matched = index
                    break
                if self.eval(keyset, env) == subject:
                    matched = index
                    break
            if matched is not None:
                break
        if matched is None:
            return
        # Fallthrough: execute the first case at or after the match that
        # has a body.
        for case in stmt.cases[matched:]:
            if case.body is not None:
                self.exec_stmt(case.body, env)
                return

    # ==================================================================
    # Expressions
    # ==================================================================
    def eval(self, expr: ast.Expr, env: Env):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.PathExpr):
            decl = getattr(expr, "decl", None)
            if isinstance(decl, Symbol) and decl.kind == "const":
                return decl.value
            return env.get(expr.name)
        if isinstance(expr, ast.MemberExpr):
            return self._eval_member(expr, env)
        if isinstance(expr, ast.SliceExpr):
            base = self.eval(expr.base, env)
            width = expr.hi - expr.lo + 1
            return (base >> expr.lo) & ((1 << width) - 1)
        if isinstance(expr, ast.UnaryExpr):
            operand = self.eval(expr.operand, env)
            if expr.op == "!":
                return not operand
            mask = _node_mask(
                expr, expr.type if expr.type else expr.operand.type, "unary"
            )
            if expr.op == "~":
                return ~operand & mask
            if expr.op == "-":
                return -operand & mask
            raise TargetError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, ast.CastExpr):
            value = self.eval(expr.operand, env)
            if isinstance(expr.target, ast.BitType):
                return _mask(int(value), expr.target.width)
            if isinstance(expr.target, ast.BoolType):
                return bool(value)
            raise TargetError(f"unsupported cast to {expr.target}")
        if isinstance(expr, ast.BinaryExpr):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.MethodCallExpr):
            return self._eval_call(expr, env)
        raise TargetError(f"cannot evaluate {type(expr).__name__}")

    def _eval_member(self, expr: ast.MemberExpr, env: Env):
        # Enum member access (meta_t.IN_PORT) evaluates to the member name.
        if isinstance(expr.base, ast.PathExpr):
            decl = getattr(expr.base, "decl", None)
            if isinstance(decl, Symbol) and decl.kind == "type" and isinstance(
                decl.type, ast.EnumType
            ):
                return expr.member
        base = self.eval(expr.base, env)
        if isinstance(base, (HeaderValue, StructValue)):
            try:
                return base.fields[expr.member]
            except KeyError:
                raise TargetError(
                    f"no field {expr.member!r} in {base!r}"
                ) from None
        raise TargetError(f"cannot read member {expr.member!r} of {base!r}")

    def _eval_binary(self, expr: ast.BinaryExpr, env: Env):
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left, env)) and bool(self.eval(expr.right, env))
        if op == "||":
            return bool(self.eval(expr.left, env)) or bool(self.eval(expr.right, env))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op in ("<", "<=", ">", ">="):
            return {
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
        if op == "++":
            rwidth = _node_width(expr.right, expr.right.type, "concat operand")
            return (int(left) << rwidth) | int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == ">>":
            return int(left) >> int(right)
        # Width-truncating ops: the result mask is a static property of
        # the typed node, so it is computed once and memoized there
        # rather than rebuilt (f-string and all) on every packet.
        mask = _node_mask(expr, expr.type, f"result of {op!r}")
        if op == "+":
            return (int(left) + int(right)) & mask
        if op == "-":
            return (int(left) - int(right)) & mask
        if op == "*":
            return (int(left) * int(right)) & mask
        if op == "/":
            if right == 0:
                raise TargetError("division by zero in dataplane expression")
            return (int(left) // int(right)) & mask
        if op == "%":
            if right == 0:
                raise TargetError("modulo by zero in dataplane expression")
            return (int(left) % int(right)) & mask
        if op == "<<":
            return (int(left) << int(right)) & mask
        raise TargetError(f"unknown binary op {op!r}")

    # ==================================================================
    # Calls
    # ==================================================================
    def _eval_call(self, call: ast.MethodCallExpr, env: Env):
        resolved = getattr(call, "resolved", None)
        if resolved is None:
            raise TargetError("unresolved call reached the interpreter")
        kind = resolved[0]
        if kind == "header_op":
            return self._header_op(call, resolved[1], env)
        if kind == "table":
            return self._apply_table(resolved[1], env)
        if kind == "action":
            return self._call_action(resolved[1], call.args, env)
        if kind == "extern":
            return self._extern_call(call, resolved[1], resolved[2], env)
        if kind == "builtin":
            return self._builtin_call(call, resolved[1], env)
        if kind == "module":
            if self.module_hook is not None:
                return self.module_hook(call, env)
            raise TargetError(
                "module apply survived inlining; run the composer first"
            )
        if kind == "stack_op":
            raise TargetError(
                "header-stack op survived lowering; run the hdr_stack pass"
            )
        raise TargetError(f"cannot execute call kind {kind!r}")

    def _header_op(self, call: ast.MethodCallExpr, op: str, env: Env):
        target = call.target
        assert isinstance(target, ast.MemberExpr)
        base = self.eval(target.base, env)
        if not isinstance(base, HeaderValue):
            raise TargetError(f"{op} on a non-header value {base!r}")
        if op == "isValid":
            return base.valid
        if op == "setValid":
            base.valid = True
            return None
        if op == "setInvalid":
            base.valid = False
            return None
        raise TargetError(f"unknown header op {op!r}")

    def _apply_table(self, decl: ast.TableDecl, env: Env):
        runtime = self.tables.get(decl.name)
        if runtime is None:
            raise TargetError(f"table {decl.name!r} has no runtime state")
        if self.faults is not None and self.faults.trip("table", decl.name):
            raise FaultError(
                "extern-fault",
                f"injected lookup failure in table {decl.name!r}",
                site=f"table:{decl.name}",
            )
        # Evaluate the key expressions once into a tuple; the runtime's
        # key_exprs/key_widths vectors are cached at construction so the
        # per-packet cost is just the expression evaluations.
        metrics_on = METRICS.enabled
        lat_on = self.lat_sample
        if lat_on:
            t0 = _perf_counter()
        evaluate = self.eval
        key_values = tuple(
            int(evaluate(expr, env)) for expr in runtime.key_exprs
        )
        action_name, args, hit, entry = runtime.lookup_full(key_values)
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.lookup", (_perf_counter() - t0) * 1e6
            )
        self.table_trace.append(f"{decl.name}:{action_name}")
        if self.ptrace is not None:
            self.ptrace.table(
                decl.name,
                key_values,
                action_name,
                hit,
                entry=runtime.entry_index(entry) if entry is not None else None,
                const=entry.is_const if entry is not None else None,
                args=args,
            )
        if metrics_on:
            METRICS.inc("interp.table_hits" if hit else "interp.table_misses")
        if action_name != "NoAction":
            action = self.actions.get(action_name)
            if action is None:
                raise TargetError(
                    f"table {decl.name!r} selected unknown action "
                    f"{action_name!r}"
                )
            if lat_on:
                t0 = _perf_counter()
            self._invoke_action(action, args, env)
            if lat_on:
                METRICS.observe(
                    "pipeline.latency_us.action",
                    (_perf_counter() - t0) * 1e6,
                )
        return hit

    def _call_action(self, decl: ast.ActionDecl, args: List[ast.Expr], env: Env):
        values = [self.eval(a, env) for a in args]
        self._invoke_action(decl, values, env)
        return None

    def _invoke_action(self, decl: ast.ActionDecl, args: List, env: Env) -> None:
        frame = Env(env, label=f"action {decl.name!r}")
        if len(args) != len(decl.params):
            raise TargetError(
                f"action {decl.name!r} expects {len(decl.params)} args, "
                f"got {len(args)}"
            )
        for param, value in zip(decl.params, args):
            frame.define(param.name, value)
        self.exec_block(decl.body.stmts, frame)

    def _builtin_call(self, call: ast.MethodCallExpr, name: str, env: Env):
        if name == "recirculate":
            im = env.get("upa_im")
            if isinstance(im, ImState):
                im.recirculate_requested = True
            for arg in call.args:
                self.eval(arg, env)
            return None
        raise TargetError(f"unknown builtin function {name!r}")

    def _extern_call(
        self, call: ast.MethodCallExpr, extern: str, method: str, env: Env
    ):
        target = call.target
        assert isinstance(target, ast.MemberExpr)
        if self.faults is not None and self.faults.trip("extern", extern):
            raise FaultError(
                "extern-fault",
                f"injected fault in extern {extern!r}.{method}",
                site=f"extern:{extern}",
            )
        if extern == "extractor":
            if self.extract_hook is None:
                raise TargetError(
                    "extractor.extract outside a native parser context"
                )
            return self.extract_hook(call, env)
        if extern == "emitter":
            raise TargetError("emitter.emit outside a native deparser context")
        obj = self.eval(target.base, env)
        if isinstance(obj, RegisterState) and method == "read":
            index = self.eval(call.args[1], env)
            value = obj.call("read", [index])
            self.assign(call.args[0], value, env)
            return None
        args = [self.eval(a, env) for a in call.args]
        if hasattr(obj, "call"):
            return obj.call(method, args)
        raise TargetError(f"extern instance {extern!r} missing at runtime")

    # ==================================================================
    # Assignment
    # ==================================================================
    def assign(self, lhs: ast.Expr, value, env: Env) -> None:
        if isinstance(lhs, ast.PathExpr):
            if isinstance(lhs.type, ast.BitType):
                value = _mask(int(value), lhs.type.width)
            env.set(lhs.name, value)
            return
        if isinstance(lhs, ast.MemberExpr):
            base = self.eval(lhs.base, env)
            if isinstance(base, (HeaderValue, StructValue)):
                if lhs.member not in base.fields:
                    raise TargetError(f"no field {lhs.member!r} in {base!r}")
                if isinstance(lhs.type, ast.BitType):
                    value = _mask(int(value), lhs.type.width)
                base.fields[lhs.member] = value
                return
            raise TargetError(f"cannot assign member of {base!r}")
        if isinstance(lhs, ast.SliceExpr):
            current = self.eval(lhs.base, env)
            width = lhs.hi - lhs.lo + 1
            mask = ((1 << width) - 1) << lhs.lo
            updated = (int(current) & ~mask) | ((int(value) & ((1 << width) - 1)) << lhs.lo)
            self.assign(lhs.base, updated, env)
            return
        raise TargetError(f"unsupported lvalue {type(lhs).__name__}")
