"""The ``ExecBackend`` seam: one place that maps a backend name to a
pipeline executor.

Four backends execute a :class:`~repro.midend.inline.ComposedPipeline`:

* ``interp`` — :class:`~repro.targets.pipeline.PipelineInstance`, the
  reference tree-walking interpreter.  Default everywhere.
* ``compiled`` — :class:`~repro.targets.compiled.CompiledPipeline`, the
  closure-compiled specialization (see ``DESIGN.md`` §10).
* ``codegen`` — :class:`~repro.targets.codegen.CodegenPipeline`, a
  one-time translation to generated Python source ``compile()``d into a
  single code object per pipeline, with an optional batched
  struct-of-arrays fast path (see ``DESIGN.md`` §15).
* ``vector`` — :class:`~repro.targets.vector.VectorPipeline`, the
  codegen backend with its SoA batch stage replaced by columnwise numpy
  execution with divergence splitting (see ``DESIGN.md`` §16).  Needs
  the optional ``[vector]`` extra (numpy); constructing it without
  numpy raises a reason-coded ``error[vector-unavailable]``.

All expose the same execution surface (``process``/``process_traced``,
``tables``, ``composed``, ``configure_faults``, ``guards``,
``last_drop_reason``, ``persistent``), so the switch, control API, soak
harness, and sharded engine are backend-agnostic.  Callers select a
backend by name — ``Switch(exec_backend=...)``, ``SoakConfig(exec_backend
=...)``, or the CLI ``--exec`` flag (whose ``choices`` must be exactly
``EXEC_BACKENDS``; a regression test pins that) — and this module is the
only spot that knows the names.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TargetError
from repro.midend.inline import ComposedPipeline
from repro.targets.codegen import CodegenPipeline
from repro.targets.compiled import CompiledPipeline
from repro.targets.faults import FaultPlan, ResourceGuards
from repro.targets.pipeline import PipelineInstance

#: Recognized execution backend names, in preference-display order.
EXEC_BACKENDS = ("interp", "compiled", "codegen", "vector")

DEFAULT_EXEC_BACKEND = "interp"


def make_pipeline(
    composed: ComposedPipeline,
    exec_backend: str = DEFAULT_EXEC_BACKEND,
    use_table_index: bool = True,
    guards: Optional[ResourceGuards] = None,
    faults: Optional[FaultPlan] = None,
):
    """Build a pipeline executor for ``composed`` under the named
    backend.  Unknown names raise a reason-coded :class:`TargetError`
    instead of silently falling back."""
    if exec_backend == "interp":
        return PipelineInstance(
            composed,
            use_table_index=use_table_index,
            guards=guards,
            faults=faults,
        )
    if exec_backend == "compiled":
        return CompiledPipeline(
            composed,
            use_table_index=use_table_index,
            guards=guards,
            faults=faults,
        )
    if exec_backend == "codegen":
        return CodegenPipeline(
            composed,
            use_table_index=use_table_index,
            guards=guards,
            faults=faults,
        )
    if exec_backend == "vector":
        # Imported lazily: the module is numpy-tolerant, but the other
        # backends should not pay its import on every process start.
        from repro.targets.vector import VectorPipeline

        return VectorPipeline(
            composed,
            use_table_index=use_table_index,
            guards=guards,
            faults=faults,
        )
    err = TargetError(
        f"unknown exec backend {exec_backend!r}; "
        f"known: {', '.join(EXEC_BACKENDS)}"
    )
    err.code = "unknown-backend"
    raise err


def backend_of(pipeline) -> str:
    """The backend name an executor instance was built under."""
    return getattr(pipeline, "backend", DEFAULT_EXEC_BACKEND)
