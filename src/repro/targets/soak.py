"""Soak/fuzz harness: hostile traffic against the contained switch.

Pushes tens of thousands of randomized and fault-injected packets
through compiled catalog compositions (P1–P8) and checks the two
containment invariants the rest of the system relies on:

* **zero uncaught exceptions** — every per-packet failure must surface
  as a reason-coded :class:`~repro.targets.faults.Verdict`, never as an
  exception out of ``Switch.process``;
* **exact drop accounting** — for every packet,
  ``emits + drops-by-reason == units`` (each created packet unit
  terminates exactly once), and the switch-level ledger
  ``units == out + dropped`` balances over the whole run.

The run is fully deterministic: the packet generator and the
:class:`~repro.targets.faults.FaultPlan` both derive from the
configured seed, and the summary includes a SHA-256 digest of the
verdict stream so two runs with the same seed can be compared
bit-for-bit.  The digest covers **only** the verdict stream — never
wall-clock timings or other per-run metadata — so it is a pure function
of the configuration.  ``python -m repro soak`` is the CLI entry point;
``--workers N`` fans the same stream out over switch replicas via
:mod:`repro.targets.engine`.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses us)
    from repro.obs.telemetry import LiveTelemetry, TraceWriter
    from repro.targets.engine import EngineConfig

from repro.errors import TargetError
from repro.lib.catalog import (
    COMPOSITIONS,
    EXTRA_COMPOSITIONS,
    build_monolithic,
    build_pipeline,
)
from repro.net.build import PacketBuilder
from repro.net.packet import Packet
from repro.targets.backends import EXEC_BACKENDS, make_pipeline
from repro.targets.faults import FaultPlan, ResourceGuards
from repro.targets.switch import Switch, SwitchConfig

#: Baseline entries valid for every catalog composition (they all share
#: the eth + l3 + ipv4 + ipv6 base tables).  Mirrors the integration
#: test entry set so routable traffic exercises the full pipeline.
_BASE_ENTRIES = [
    # (table, matches, action_micro, action_mono, args) — the monolithic
    # baseline renames the colliding v4/v6 ``process`` actions.
    ("ipv4_lpm_tbl", [(0x0A000000, 8)], "process", "process_v4", [7]),
    ("ipv4_lpm_tbl", [(0x0A010000, 16)], "process", "process_v4", [8]),
    ("ipv6_lpm_tbl", [(0x20010DB8 << 96, 32)], "process", "process_v6", [9]),
    ("forward_tbl", [7], "forward", "forward", [0x020000000001, 0x020000000002, 2]),
    ("forward_tbl", [8], "forward", "forward", [0x020000000001, 0x020000000002, 3]),
    ("forward_tbl", [9], "forward", "forward", [0x020000000001, 0x020000000002, 4]),
]


#: Recognized packet-mix names (``SoakConfig.traffic``).
TRAFFIC_MIXES = ("mixed", "routable")

#: Ports on every soak switch replica (``build_switch``'s
#: ``SwitchConfig``).  The engine's parent-side dispatcher draws ingress
#: ports from the same constant so the stream it generates is
#: bit-identical to the one a replica would replay itself.
NUM_PORTS = 16


@dataclass
class SoakConfig:
    """One soak run: which programs, how many packets, which faults."""

    programs: List[str] = field(default_factory=lambda: ["P4", "P7"])
    packets: int = 50_000
    seed: int = 1234
    fault_rate: float = 0.1
    fault_spec: Optional[dict] = None
    mode: str = "micro"  # micro | mono
    strict: bool = False
    guards: Optional[ResourceGuards] = None
    #: ``mixed`` is the hostile fuzz corpus; ``routable`` is a cheap
    #: well-formed v4/v6 mix that keeps every packet on the exact/lpm
    #: fast path (the engine-scaling benchmark's exact-heavy workload).
    traffic: str = "mixed"
    #: Execution backend (``interp`` / ``compiled``).  The verdict
    #: stream — and therefore the digest — must not depend on it; the
    #: differential suite pins that equivalence.
    exec_backend: str = "interp"
    #: Flight-recorder capacity: the last N verdicts kept per shard for
    #: post-mortem dumps (on uncaught escapes, ledger mismatch, or
    #: worker death).  0 disables the recorder.
    flight_recorder: int = 64
    #: Lanes per SoA batch handed to ``Switch.process_batch``.  Verdicts
    #: are batch-boundary-independent, so this tunes throughput (larger
    #: batches amortize more per numpy op in the vector backend) without
    #: moving the digest.
    batch_lanes: int = 256

    def validate(self) -> None:
        """Reject config values that would otherwise only fail deep
        inside a run (or inside N forked workers at once).

        Validation is against the live registries — ``EXEC_BACKENDS``
        from the backends seam, ``TRAFFIC_MIXES`` — never local
        literals, so a new backend is accepted here the moment the seam
        knows it.  :func:`run_soak` and the resident pool's parent-side
        ``submit`` both call this up front.
        """
        if self.exec_backend not in EXEC_BACKENDS:
            err = TargetError(
                f"unknown exec backend {self.exec_backend!r}; "
                f"known: {', '.join(EXEC_BACKENDS)}"
            )
            err.code = "unknown-backend"
            raise err
        if self.traffic not in TRAFFIC_MIXES:
            raise TargetError(
                f"unknown traffic mix {self.traffic!r}; "
                f"known: {', '.join(TRAFFIC_MIXES)}"
            )
        if self.mode not in ("micro", "mono"):
            raise TargetError(
                f"unknown compile mode {self.mode!r}; known: micro, mono"
            )
        if not isinstance(self.batch_lanes, int) or isinstance(
            self.batch_lanes, bool
        ) or self.batch_lanes < 1:
            err = TargetError(
                f"batch lane count must be a positive integer, "
                f"got {self.batch_lanes!r}"
            )
            err.code = "bad-batch-lanes"
            raise err


def _fault_plan(
    config: SoakConfig, program: str, seed: Optional[str] = None
) -> Optional[FaultPlan]:
    """Per-program plan so each program's fault stream is independent.

    ``seed`` overrides the derived ``{seed}:{program}`` seed — the
    sharded engine passes ``{seed}:{program}:shard{i}`` so each shard
    owns an independent, replayable fault stream.
    """
    seed = seed if seed is not None else f"{config.seed}:{program}"
    if config.fault_spec is not None:
        spec = dict(config.fault_spec)
        spec.setdefault("seed", seed)
        return FaultPlan.from_spec(spec)
    if config.fault_rate <= 0:
        return None
    return FaultPlan.uniform(config.fault_rate, seed=seed)


# ----------------------------------------------------------------------
# Packet generation
# ----------------------------------------------------------------------
_V4_DSTS = ["10.0.0.5", "10.1.2.3", "172.16.0.1", "192.1.2.3", "10.255.0.1"]
_V6_DSTS = ["2001:db8::5", "fe80::1", "2001:db8::1", "fd00::9"]


def _gen_packet(rng: random.Random) -> Packet:
    """One randomized packet: valid, short, garbage, or odd-typed."""
    roll = rng.random()
    if roll < 0.40:  # plausible IPv4
        return (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
            .ipv4(
                "192.168.0.1",
                rng.choice(_V4_DSTS),
                rng.choice((6, 17, 1)),
                ttl=rng.choice((0, 1, 64, 255)),
            )
            .payload(bytes(rng.randrange(256) for _ in range(rng.randrange(32))))
            .build()
        )
    if roll < 0.65:  # plausible IPv6
        return (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
            .ipv6(
                "fd00::1",
                rng.choice(_V6_DSTS),
                rng.choice((6, 17, 59)),
                payload_len=8,
                hop_limit=rng.choice((0, 1, 64)),
            )
            .payload(b"soakfuzz")
            .build()
        )
    if roll < 0.80:  # valid packet truncated at a random byte
        base = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
            .ipv4("192.168.0.1", rng.choice(_V4_DSTS), 6)
            .payload(b"cutme")
            .build()
        )
        data = base.tobytes()
        return Packet(data[: rng.randrange(len(data))])
    if roll < 0.90:  # unknown etherType
        return (
            PacketBuilder()
            .ethernet(
                "02:00:00:00:00:01", "02:00:00:00:00:02", rng.randrange(0x10000)
            )
            .payload(b"mystery")
            .build()
        )
    # pure garbage bytes, possibly shorter than any header
    return Packet(bytes(rng.randrange(256) for _ in range(rng.randrange(64))))


#: Prebuilt routable packets for ``traffic="routable"``: every v4/v6
#: destination in the soak pools with a sane TTL, built once so stream
#: generation costs one choice + one bytearray copy per packet.  Keeps
#: generation overhead negligible next to pipeline execution — the
#: property the engine-scaling benchmark depends on.
_ROUTABLE_TEMPLATES: List[bytes] = []


def _routable_templates() -> List[bytes]:
    if not _ROUTABLE_TEMPLATES:
        for dst in _V4_DSTS:
            _ROUTABLE_TEMPLATES.append(
                PacketBuilder()
                .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
                .ipv4("192.168.0.1", dst, 6, ttl=64)
                .payload(b"engine!!")
                .build()
                .tobytes()
            )
        for dst in _V6_DSTS:
            _ROUTABLE_TEMPLATES.append(
                PacketBuilder()
                .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
                .ipv6("fd00::1", dst, 6, payload_len=8, hop_limit=64)
                .payload(b"engine!!")
                .build()
                .tobytes()
            )
    return _ROUTABLE_TEMPLATES


def iter_stream_bytes(
    config: SoakConfig, program: str, num_ports: int
) -> Iterator[Tuple[int, bytes, int]]:
    """The run's deterministic ``(index, bytes, in_port)`` stream.

    Derived purely from ``(config.seed, program, config.traffic)``.
    This is the wire form the engine's parent-side dispatcher ships to
    worker rings: already serialized, one ``tobytes()`` per packet for
    the whole run (replay mode re-serializes per *worker* for the shard
    hash).  :func:`iter_stream` wraps the same generator, so the two
    views cannot drift: the RNG call sequence here is exactly the one
    the soak has always used.
    """
    if config.traffic not in TRAFFIC_MIXES:
        raise TargetError(
            f"unknown traffic mix {config.traffic!r}; "
            f"known: {', '.join(TRAFFIC_MIXES)}"
        )
    rng = random.Random(f"{config.seed}:{program}:packets")
    if config.traffic == "routable":
        templates = _routable_templates()
        for index in range(config.packets):
            data = rng.choice(templates)
            yield index, data, rng.randrange(num_ports)
    else:
        for index in range(config.packets):
            data = _gen_packet(rng).tobytes()
            yield index, data, rng.randrange(num_ports)


def iter_stream(
    config: SoakConfig, program: str, num_ports: int
) -> Iterator[Tuple[int, Packet, int]]:
    """:func:`iter_stream_bytes` with each payload wrapped in a
    :class:`~repro.net.packet.Packet` — the replay-side view (engine
    workers regenerate this stream and keep their shard's packets)."""
    for index, data, in_port in iter_stream_bytes(config, program, num_ports):
        yield index, Packet(data), in_port


def update_digest(digest, index: int, verdict) -> None:
    """Fold one verdict into a verdict-stream digest.

    The digest input is strictly ``(global packet index, verdict kind,
    emit count, reason counts)`` — no timings, no stats, no per-run
    metadata — so same seed (and same sharding parameters) always means
    the same digest.
    """
    digest.update(
        f"{index}|{verdict.kind}|{len(verdict.outputs)}|"
        f"{sorted(verdict.reasons.items())}".encode()
    )


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
def compose_program(config: SoakConfig, program: str):
    """Compile one catalog program for this run's mode.

    Raises the compiler's own error for unknown or non-compiling
    programs — the CLI surfaces it as a structured failure.  The engine
    calls this in the parent before forking workers so a compile failure
    is reported exactly once, from a single process.
    """
    if program not in COMPOSITIONS and program not in EXTRA_COMPOSITIONS:
        known = ", ".join(sorted({*COMPOSITIONS, *EXTRA_COMPOSITIONS}))
        raise TargetError(f"unknown soak program {program!r}; known: {known}")
    return (
        build_pipeline(program)
        if config.mode == "micro"
        else build_monolithic(program)
    )


def build_switch(
    config: SoakConfig,
    program: str,
    composed,
    fault_seed: Optional[str] = None,
) -> Switch:
    """A fully-programmed switch replica around a compiled pipeline."""
    switch = Switch(
        make_pipeline(composed, exec_backend=config.exec_backend),
        SwitchConfig(num_ports=NUM_PORTS, multicast_groups={1: [2, 3]}),
        guards=config.guards or ResourceGuards(),
        faults=_fault_plan(config, program, seed=fault_seed),
        strict=config.strict,
    )
    for table, matches, act_micro, act_mono, args in _BASE_ENTRIES:
        action = act_micro if config.mode == "micro" else act_mono
        switch.api.add_entry(table, matches, action, args)
    return switch


def _build_switch(config: SoakConfig, program: str) -> Switch:
    return build_switch(config, program, compose_program(config, program))


def soak_program(
    config: SoakConfig,
    program: str,
    telemetry: Optional["LiveTelemetry"] = None,
    trace_writer: Optional["TraceWriter"] = None,
    publish_interval_s: float = 1.0,
) -> Dict[str, object]:
    """Soak one program; returns its JSON-able summary block.

    ``telemetry`` receives periodic epoch-stamped cumulative snapshots
    (registry + switch ledger) while the run is in flight;
    ``trace_writer`` streams one JSONL pkttrace record per packet.
    Both are observation-only: they never alter the verdict stream, so
    the digest is identical with or without them.
    """
    from repro.obs.metrics import METRICS
    from repro.obs.pkttrace import PacketTrace
    from repro.obs.telemetry import FlightRecorder

    switch = _build_switch(config, program)
    recorder = (
        FlightRecorder(config.flight_recorder)
        if config.flight_recorder > 0
        else None
    )
    epoch = 0
    next_publish = time.monotonic() + publish_interval_s

    def publish(final: bool = False) -> None:
        nonlocal epoch
        if telemetry is None:
            return
        epoch += 1
        telemetry.publish(
            program,
            0,
            epoch,
            METRICS.snapshot(),
            ledger=dict(switch.stats),
            final=final,
        )

    digest = hashlib.sha256()
    uncaught: List[str] = []
    unbalanced = 0
    kinds = {"emit": 0, "drop": 0, "killed": 0}
    start = time.perf_counter()
    for index, packet, in_port in iter_stream(
        config, program, switch.config.num_ports
    ):
        trace = PacketTrace() if trace_writer is not None else None
        try:
            verdict = switch.process(packet, in_port, trace)
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            if recorder is not None:
                recorder.note(index, "uncaught", f"{type(exc).__name__}: {exc}")
            if len(uncaught) < 10:
                uncaught.append(
                    f"packet {index}: {type(exc).__name__}: {exc}"
                )
            else:
                uncaught.append("...")
                break
            continue
        if recorder is not None:
            recorder.record(index, verdict, trace)
        if trace_writer is not None:
            trace_writer.write(trace, index, program=program, verdict=verdict.kind)
        if not verdict.balanced():
            unbalanced += 1
        kinds[verdict.kind] += 1
        update_digest(digest, index, verdict)
        if telemetry is not None and time.monotonic() >= next_publish:
            publish()
            next_publish = time.monotonic() + publish_interval_s
    elapsed = time.perf_counter() - start
    publish(final=True)
    stats = switch.stats
    ledger_ok = stats["units"] == stats["out"] + stats["dropped"]
    block: Dict[str, object] = {
        "program": program,
        "mode": config.mode,
        "packets": stats["in"],
        "emits": stats["out"],
        "drops": stats["dropped"],
        "units": stats["units"],
        "replicated": stats["replicated"],
        "killed": stats["killed"],
        "verdicts": kinds,
        "drops_by_reason": dict(sorted(switch.drops_by_reason.items())),
        "fault_trips": (
            dict(sorted(switch.faults.trips.items()))
            if switch.faults is not None
            else {}
        ),
        "uncaught": uncaught,
        "unbalanced_verdicts": unbalanced,
        "ledger_ok": ledger_ok and unbalanced == 0,
        "digest": digest.hexdigest(),
        "elapsed_s": round(elapsed, 3),
        "pkts_per_sec": round(config.packets / elapsed, 1) if elapsed else None,
    }
    if recorder is not None and (uncaught or not block["ledger_ok"]):
        block["flight_recorder"] = recorder.dump()
    return block


def run_soak(
    config: SoakConfig,
    engine: Optional["EngineConfig"] = None,
    telemetry: Optional["LiveTelemetry"] = None,
    trace_writer: Optional["TraceWriter"] = None,
) -> Dict[str, object]:
    """Run the whole soak; ``ok`` is True iff every program held both
    containment invariants (no uncaught exceptions, exact accounting).

    With an :class:`~repro.targets.engine.EngineConfig`, each program's
    stream fans out over that many worker processes (switch replicas);
    the merged digest is then a pure function of
    ``(seed, workers, shard_policy)``.

    ``telemetry`` wires a live rolling view over the run (per-shard in
    the engine case); ``trace_writer`` streams per-packet JSONL traces
    and is single-process only — worker processes cannot share one
    output file without interleaving corruption.
    """
    config.validate()
    if engine is not None:
        from repro.targets.engine import run_sharded_program

        if trace_writer is not None:
            raise TargetError(
                "--trace-out requires a single-process run (workers=1 "
                "without an engine); per-worker trace files are not "
                "supported"
            )
        engine.validate()  # reject workers < 1 / unknown policy up front
        if engine.ingest == "dispatch" and not engine.sequential:
            # One resident pool for the whole soak: fork once, then
            # submit every program to the same workers.
            from repro.targets.pool import WorkerPool

            with WorkerPool(engine) as pool:
                programs = {
                    name: pool.submit(config, name, telemetry=telemetry)
                    for name in config.programs
                }
        else:
            programs = {
                name: run_sharded_program(
                    config, name, engine, telemetry=telemetry
                )
                for name in config.programs
            }
    else:
        programs = {
            name: soak_program(
                config, name, telemetry=telemetry, trace_writer=trace_writer
            )
            for name in config.programs
        }
    ok = all(
        not block["uncaught"] and block["ledger_ok"]
        for block in programs.values()
    )
    combined = hashlib.sha256(
        "".join(str(block["digest"]) for block in programs.values()).encode()
    ).hexdigest()
    meta: Dict[str, object] = {
        "packets_per_program": config.packets,
        "seed": config.seed,
        "fault_rate": config.fault_rate,
        "fault_spec": config.fault_spec,
        "mode": config.mode,
        "traffic": config.traffic,
        "exec": config.exec_backend,
        "batch_lanes": config.batch_lanes,
        "guards": (config.guards or ResourceGuards()).to_dict(),
    }
    if engine is not None:
        meta["workers"] = engine.workers
        meta["shard_policy"] = engine.shard_policy
        meta["ingest"] = engine.ingest
        if engine.restart is not None:
            meta["restart_policy"] = engine.restart.to_dict()
        if engine.chaos is not None:
            meta["chaos"] = engine.chaos.to_dict()
    return {
        "soak": meta,
        "programs": programs,
        "digest": combined,
        "ok": ok,
    }


def render_summary(summary: Dict[str, object]) -> str:
    """Human-readable soak report."""
    lines = []
    meta = summary["soak"]
    lines.append(
        f"soak: {meta['packets_per_program']} packets/program, "
        f"seed={meta['seed']}, fault_rate={meta['fault_rate']}, "
        f"mode={meta['mode']}"
        + (
            f", workers={meta['workers']} ({meta['shard_policy']})"
            if "workers" in meta
            else ""
        )
    )
    for name, block in summary["programs"].items():  # type: ignore[union-attr]
        lines.append(
            f"\n{name}: {block['packets']} in -> {block['emits']} out, "
            f"{block['drops']} dropped, {block['killed']} killed "
            f"({block['pkts_per_sec']} pkt/s)"
        )
        for shard in block.get("shards", ()):
            lines.append(
                f"  shard {shard['shard']}: {shard['packets']} pkts -> "
                f"{shard['emits']} out, {shard['drops']} dropped "
                f"[{shard['digest'][:12]}...]"
            )
        restarts = block.get("restarts") or {}
        if restarts:
            counts = ", ".join(
                f"shard{s}={n}" for s, n in sorted(restarts.items())
            )
            lines.append(
                f"  supervised restarts: {counts} "
                f"(digest unchanged by recovery)"
            )
        for reason, count in block["drops_by_reason"].items():
            lines.append(f"  drop[{reason}]: {count}")
        if block["fault_trips"]:
            trips = ", ".join(
                f"{site}={n}" for site, n in block["fault_trips"].items()
            )
            lines.append(f"  fault trips: {trips}")
        lines.append(
            f"  accounting: units={block['units']} "
            f"emits+drops={block['emits'] + block['drops']} "
            f"{'OK' if block['ledger_ok'] else 'MISMATCH'}"
        )
        if block["uncaught"]:
            lines.append(f"  UNCAUGHT: {block['uncaught']}")
    lines.append(f"\ndigest: {summary['digest']}")
    lines.append("result: " + ("OK" if summary["ok"] else "FAILED"))
    return "\n".join(lines)
