"""Behavioral target: executes compiled pipelines over byte packets.

This subpackage is the reproduction's stand-in for BMv2's
``simple_switch`` (V1Model) and for a Tofino device: it interprets the
composed IR produced by the midend/backends directly.

* :mod:`~repro.targets.tables` — match-action table runtime (exact,
  lpm, ternary, range) with const and runtime-installed entries.
* :mod:`~repro.targets.interpreter` — expression/statement evaluator.
* :mod:`~repro.targets.pipeline` — packet-in/packet-out execution of a
  :class:`~repro.midend.inline.ComposedPipeline`.
* :mod:`~repro.targets.compiled` — the closure-compiled execution
  backend: same semantics, pre-bound closures instead of tree-walking.
* :mod:`~repro.targets.backends` — the ``ExecBackend`` seam mapping
  backend names (``interp`` / ``compiled``) to executors.
* :mod:`~repro.targets.switch` — a V1Model-style switch: ports, packet
  replication engine (multicast groups), recirculation.
* :mod:`~repro.targets.runtime_api` — the "control API" of the paper's
  Fig. 4: table entry installation and multicast group programming.
* :mod:`~repro.targets.faults` — fault containment (per-packet
  :class:`Verdict`, :class:`ResourceGuards`) and the deterministic
  :class:`FaultPlan` injector.
* :mod:`~repro.targets.soak` — the soak/fuzz harness behind
  ``python -m repro soak``.
* :mod:`~repro.targets.engine` — the sharded traffic engine: fans a
  soak stream over N worker processes, each owning a switch replica,
  with deterministic shard seeds and mergeable results.
"""

from repro.targets.tables import TableRuntime, Entry
from repro.targets.faults import (
    FaultError,
    FaultPlan,
    ResourceGuards,
    Verdict,
)
from repro.targets.pipeline import PipelineInstance, PacketOut
from repro.targets.compiled import CompiledPipeline
from repro.targets.backends import EXEC_BACKENDS, make_pipeline
from repro.targets.switch import Switch
from repro.targets.runtime_api import RuntimeAPI
from repro.targets.orchestration import OrchestrationRunner
from repro.targets.engine import (
    EngineConfig,
    EngineError,
    assign_shard,
    run_sharded_program,
    shard_seed,
)

__all__ = [
    "EngineConfig",
    "EngineError",
    "assign_shard",
    "run_sharded_program",
    "shard_seed",
    "TableRuntime",
    "Entry",
    "FaultError",
    "FaultPlan",
    "ResourceGuards",
    "Verdict",
    "PipelineInstance",
    "CompiledPipeline",
    "EXEC_BACKENDS",
    "make_pipeline",
    "PacketOut",
    "Switch",
    "RuntimeAPI",
    "OrchestrationRunner",
]
