"""Match-action table runtime.

Supports the four match kinds µP4 requires of targets (§6.4): ``exact``,
``lpm``, ``ternary`` and ``range``.  Entries come from two sources:

* const entries compiled into the program (matched in declaration order,
  i.e. first-match priority — this is what the parser-MAT transformation
  relies on), and
* runtime entries installed through the control API, inserted after the
  const entries in priority order (higher ``priority`` first, insertion
  order among equals).

Lookup semantics
----------------

A lookup evaluates each key expression, then:

* without an ``lpm`` key, the **first** matching entry in the combined
  const-then-runtime order wins;
* with an ``lpm`` key, the matching entry with the **longest prefix**
  wins, and equal prefix lengths fall back to the same first-match
  order (const before runtime, then priority, then insertion order).

Key values are expected to already fit their declared key widths — the
interpreter guarantees this through ``bit<W>`` wrap-around semantics.

Indexed fast path
-----------------

Hardware MATs resolve every lookup in O(1) — exact match hashes, lpm and
ternary live in TCAM (Bosshart et al., RMT).  A linear scan over
``const_entries + runtime_entries`` instead collapses under the
homogenization passes that turn parsers and deparsers into large MATs
(§5.3), so :class:`TableRuntime` mirrors the hardware cost model with a
per-match-kind index, built lazily on first lookup and invalidated by
any entry mutation:

* exact-only tables hash the full key tuple (``_ExactIndex``);
* tables with one ``lpm`` key and otherwise-exact keys bucket entries by
  prefix length and probe buckets longest-first (``_LpmIndex``);
* everything else keeps the priority-ordered list but precompiles each
  entry's specs into flat ``(position, mask, value)`` /
  ``(position, lo, hi)`` check tuples (``_CompiledScan``), avoiding the
  per-spec kind branch of the reference scan.

Entries whose specs do not fit an index's fast map (e.g. a don't-care
spec on an exact key) go to a small residual list that is scanned in
priority order, so every strategy reproduces the reference semantics
bit-for-bit.  :meth:`TableRuntime.lookup_scan_full` keeps the reference
scan alive for differential tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.obs.metrics import METRICS

# A match spec per key, normalized by kind:
#   exact   -> ("exact", value)
#   lpm     -> ("lpm", value, prefix_len)
#   ternary -> ("ternary", value, mask)
#   range   -> ("range", lo, hi)
#   any     -> ("any",)          (don't care, any kind)
MatchSpec = Tuple


@dataclass
class Entry:
    """One table entry."""

    matches: List[MatchSpec]
    action_name: str
    action_args: List[int] = field(default_factory=list)
    priority: int = 0
    is_const: bool = False

    def matches_key(self, key_values: Sequence[int], key_widths: Sequence[int]) -> bool:
        for spec, value, width in zip(self.matches, key_values, key_widths):
            kind = spec[0]
            if kind == "any":
                continue
            if kind == "exact":
                if value != spec[1]:
                    return False
            elif kind == "lpm":
                _, prefix_value, prefix_len = spec
                if prefix_len == 0:
                    continue
                shift = width - prefix_len
                if (value >> shift) != (prefix_value >> shift):
                    return False
            elif kind == "ternary":
                _, tvalue, mask = spec
                if (value & mask) != (tvalue & mask):
                    return False
            elif kind == "range":
                _, lo, hi = spec
                if not (lo <= value <= hi):
                    return False
            else:
                raise TargetError(f"unknown match kind {kind!r}")
        return True

    def lpm_length(self) -> int:
        for spec in self.matches:
            if spec[0] == "lpm":
                return spec[2]
        return 0


# ======================================================================
# Compiled entry checks (shared by every index strategy)
# ======================================================================


def _prefix_mask(width: int, prefix_len: int) -> int:
    return ((1 << prefix_len) - 1) << (width - prefix_len)


def _compile_checks(entry: Entry, key_widths: Sequence[int]):
    """Flatten an entry's specs into ``(pos, mask, value)`` ternary checks
    and ``(pos, lo, hi)`` range checks — no kind branch left at lookup
    time."""
    tchecks: List[Tuple[int, int, int]] = []
    rchecks: List[Tuple[int, int, int]] = []
    for pos, spec in enumerate(entry.matches):
        kind = spec[0]
        if kind == "any":
            continue
        width = key_widths[pos]
        full = (1 << width) - 1
        if kind == "exact":
            tchecks.append((pos, full, spec[1] & full))
        elif kind == "lpm":
            mask = _prefix_mask(width, spec[2])
            if mask:
                tchecks.append((pos, mask, spec[1] & mask))
        elif kind == "ternary":
            mask = spec[2] & full
            if mask:
                tchecks.append((pos, mask, spec[1] & mask))
        elif kind == "range":
            rchecks.append((pos, spec[1], spec[2]))
        else:
            raise TargetError(f"unknown match kind {kind!r}")
    return tuple(tchecks), tuple(rchecks)


def _checks_match(key_values, tchecks, rchecks) -> bool:
    for pos, mask, want in tchecks:
        if key_values[pos] & mask != want:
            return False
    for pos, lo, hi in rchecks:
        if not lo <= key_values[pos] <= hi:
            return False
    return True


class _ExactIndex:
    """All keys ``exact``: one dict probe on the full key tuple."""

    metric = "interp.lookup.indexed"
    strategy = "exact-hash"

    def __init__(self, entries: Sequence[Entry], key_widths: Sequence[int]) -> None:
        # key tuple -> (order, entry); first entry per tuple wins.
        self.map: Dict[Tuple[int, ...], Tuple[int, Entry]] = {}
        # Entries with a don't-care spec cannot live in the hash; they
        # stay in a (usually empty) priority-ordered residual list.
        self.residual: List[tuple] = []
        for order, entry in enumerate(entries):
            if all(spec[0] == "exact" for spec in entry.matches):
                key = tuple(spec[1] for spec in entry.matches)
                if key not in self.map:
                    self.map[key] = (order, entry)
            else:
                tchecks, rchecks = _compile_checks(entry, key_widths)
                self.residual.append((order, entry, tchecks, rchecks))

    def lookup(self, key_values) -> Optional[Entry]:
        best = self.map.get(tuple(key_values))
        for order, entry, tchecks, rchecks in self.residual:
            if best is not None and best[0] < order:
                break
            if _checks_match(key_values, tchecks, rchecks):
                best = (order, entry)
                break
        return best[1] if best is not None else None


class _LpmIndex:
    """One ``lpm`` key, rest ``exact``: per-prefix-length hash buckets on
    the masked key tuple, probed longest-first."""

    metric = "interp.lookup.indexed"
    strategy = "lpm-buckets"

    def __init__(
        self, entries: Sequence[Entry], key_widths: Sequence[int], lpm_pos: int
    ) -> None:
        self.lpm_pos = lpm_pos
        width = key_widths[lpm_pos]
        # prefix_len -> {masked key tuple: (order, entry)}
        self.buckets: Dict[int, Dict[Tuple[int, ...], Tuple[int, Entry]]] = {}
        self.masks: Dict[int, int] = {}
        # Entries with a don't-care on an exact key position.
        self.residual: List[tuple] = []
        for order, entry in enumerate(entries):
            prefix_len, fast = self._classify(entry, lpm_pos)
            if fast:
                mask = _prefix_mask(width, prefix_len)
                key = tuple(
                    (spec[1] & mask if spec[0] == "lpm" else 0)
                    if pos == lpm_pos
                    else spec[1]
                    for pos, spec in enumerate(entry.matches)
                )
                bucket = self.buckets.setdefault(prefix_len, {})
                self.masks[prefix_len] = mask
                if key not in bucket:
                    bucket[key] = (order, entry)
            else:
                tchecks, rchecks = _compile_checks(entry, key_widths)
                self.residual.append((order, prefix_len, entry, tchecks, rchecks))
        self.lengths = sorted(self.buckets, reverse=True)

    @staticmethod
    def _classify(entry: Entry, lpm_pos: int) -> Tuple[int, bool]:
        prefix_len = 0
        fast = True
        for pos, spec in enumerate(entry.matches):
            if pos == lpm_pos:
                if spec[0] == "lpm":
                    prefix_len = spec[2]
                elif spec[0] != "any":
                    fast = False
            elif spec[0] != "exact":
                fast = False
        return prefix_len, fast

    def lookup(self, key_values) -> Optional[Entry]:
        key_values = tuple(key_values)
        lpm_pos = self.lpm_pos
        best_len, best_order, best_entry = -1, -1, None
        for prefix_len in self.lengths:
            probe = (
                key_values[:lpm_pos]
                + (key_values[lpm_pos] & self.masks[prefix_len],)
                + key_values[lpm_pos + 1 :]
            )
            hit = self.buckets[prefix_len].get(probe)
            if hit is not None:
                # Longest-first probing: no shorter bucket can win now.
                best_len, best_order, best_entry = prefix_len, hit[0], hit[1]
                break
        for order, prefix_len, entry, tchecks, rchecks in self.residual:
            if prefix_len < best_len or (prefix_len == best_len and order > best_order):
                continue
            if _checks_match(key_values, tchecks, rchecks):
                best_len, best_order, best_entry = prefix_len, order, entry
        return best_entry


class _CompiledScan:
    """Ternary/range/mixed tables: priority-ordered scan over precompiled
    flat check tuples."""

    metric = "interp.lookup.scan"
    strategy = "compiled-scan"

    def __init__(
        self, entries: Sequence[Entry], key_widths: Sequence[int], has_lpm: bool
    ) -> None:
        self.has_lpm = has_lpm
        self.rows = []
        for entry in entries:
            tchecks, rchecks = _compile_checks(entry, key_widths)
            self.rows.append((entry.lpm_length(), entry, tchecks, rchecks))

    def lookup(self, key_values) -> Optional[Entry]:
        if not self.has_lpm:
            for _, entry, tchecks, rchecks in self.rows:
                if _checks_match(key_values, tchecks, rchecks):
                    return entry
            return None
        best_entry = None
        best_len = -1
        for prefix_len, entry, tchecks, rchecks in self.rows:
            # Strict > keeps the earliest entry among equal lengths.
            if prefix_len > best_len and _checks_match(key_values, tchecks, rchecks):
                best_entry, best_len = entry, prefix_len
        return best_entry


class TableRuntime:
    """Runtime state of one MAT."""

    def __init__(
        self,
        decl: ast.TableDecl,
        key_widths: Optional[List[int]] = None,
        use_index: bool = True,
    ) -> None:
        self.decl = decl
        self.name = decl.name
        self.match_kinds = [k.match_kind for k in decl.keys]
        self.key_exprs = tuple(k.expr for k in decl.keys)
        if key_widths is None:
            key_widths = getattr(decl, "_key_width_cache", None)
            if key_widths is None:
                key_widths = tuple(
                    _width_of(k.expr, table=decl.name, key=_key_name(k.expr))
                    for k in decl.keys
                )
                decl._key_width_cache = key_widths  # type: ignore[attr-defined]
        self.key_widths = tuple(key_widths)
        self._key_names = [_key_name(k.expr) for k in decl.keys]
        self._has_lpm = "lpm" in self.match_kinds
        self.use_index = use_index
        self._index = None
        # Bumped on every mutation so batch executors that pre-compile
        # per-table lookup structures (the vector backend) can tell when
        # a cached structure is stale without comparing entry lists.
        self.version = 0
        self.const_entries: List[Entry] = [
            self._convert_const_entry(e) for e in decl.const_entries
        ]
        self.runtime_entries: List[Entry] = []
        self.default_action = decl.default_action or "NoAction"
        self.default_args: List[int] = [
            _literal_value(a) for a in decl.default_action_args
        ]

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _convert_const_entry(self, entry: ast.TableEntry) -> Entry:
        matches = [
            _keyset_to_spec(ks, kind, width, table=self.name, key=name)
            for ks, kind, width, name in zip(
                entry.keysets, self.match_kinds, self.key_widths, self._key_names
            )
        ]
        return Entry(
            matches=matches,
            action_name=entry.action_name,
            action_args=[_literal_value(a) for a in entry.action_args],
            is_const=True,
        )

    def add_entry(
        self,
        matches: Sequence,
        action_name: str,
        action_args: Optional[Sequence[int]] = None,
        priority: int = 0,
    ) -> None:
        """Install a runtime entry.

        ``matches`` items may be: an int (exact), a ``(value, length)``
        tuple for lpm keys, a ``(value, mask)`` tuple for ternary keys, a
        ``(lo, hi)`` tuple for range keys, or ``None`` for don't-care.
        Values are masked to the key width; lpm prefix lengths and range
        bounds are validated here so bad entries fail at install time.
        """
        if len(matches) != len(self.match_kinds):
            raise TargetError(
                f"table {self.name!r}: {len(matches)} matches for "
                f"{len(self.match_kinds)} keys"
            )
        if action_name not in self.decl.actions and action_name != "NoAction":
            raise TargetError(
                f"table {self.name!r} has no action {action_name!r}"
            )
        specs: List[MatchSpec] = []
        for m, kind, width, name in zip(
            matches, self.match_kinds, self.key_widths, self._key_names
        ):
            specs.append(
                _runtime_match_to_spec(m, kind, width, table=self.name, key=name)
            )
        self.runtime_entries.append(
            Entry(
                matches=specs,
                action_name=action_name,
                action_args=list(action_args or []),
                priority=priority,
            )
        )
        # Higher priority wins; stable for equal priorities.
        self.runtime_entries.sort(key=lambda e: -e.priority)
        self._index = None
        self.version += 1

    def set_default(self, action_name: str, args: Optional[Sequence[int]] = None) -> None:
        if action_name not in self.decl.actions and action_name != "NoAction":
            raise TargetError(
                f"table {self.name!r} has no action {action_name!r}"
            )
        self.default_action = action_name
        self.default_args = list(args or [])
        self._index = None
        self.version += 1

    def clear_runtime_entries(self) -> None:
        self.runtime_entries = []
        self._index = None
        self.version += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key_values: Sequence[int]) -> Tuple[str, List[int], bool]:
        """Return ``(action, args, hit)`` for the given key values."""
        action, args, hit, _ = self.lookup_full(key_values)
        return action, args, hit

    def lookup_full(
        self, key_values: Sequence[int]
    ) -> Tuple[str, List[int], bool, Optional[Entry]]:
        """Like :meth:`lookup`, but also returns the matched entry (or
        ``None`` on a default-action miss) for packet tracing."""
        if not self.use_index:
            return self.lookup_scan_full(key_values)
        index = self._index
        if index is None:
            index = self._build_index()
        if METRICS.enabled:
            METRICS.inc(index.metric)
        entry = index.lookup(key_values)
        if entry is None:
            return self.default_action, list(self.default_args), False, None
        return entry.action_name, list(entry.action_args), True, entry

    def lookup_scan_full(
        self, key_values: Sequence[int]
    ) -> Tuple[str, List[int], bool, Optional[Entry]]:
        """Reference linear scan over ``const + runtime`` entries.

        This is the semantic ground truth the indexed strategies must
        reproduce; differential tests and the lookup-throughput benchmark
        call it directly.
        """
        if METRICS.enabled:
            METRICS.inc("interp.lookup.scan")
        entry = self._scan_match(key_values)
        if entry is None:
            return self.default_action, list(self.default_args), False, None
        return entry.action_name, list(entry.action_args), True, entry

    def _scan_match(self, key_values: Sequence[int]) -> Optional[Entry]:
        key_widths = self.key_widths
        has_lpm = self._has_lpm
        best = None
        best_len = -1
        for entry in [*self.const_entries, *self.runtime_entries]:
            if not entry.matches_key(key_values, key_widths):
                continue
            if not has_lpm:
                return entry
            prefix_len = entry.lpm_length()
            # Longest prefix wins; equal lengths keep the first match in
            # the combined const-then-runtime priority order.
            if prefix_len > best_len:
                best, best_len = entry, prefix_len
        return best

    def _build_index(self):
        combined = [*self.const_entries, *self.runtime_entries]
        kinds = self.match_kinds
        if all(kind == "exact" for kind in kinds):
            index = _ExactIndex(combined, self.key_widths)
        elif kinds.count("lpm") == 1 and all(
            kind in ("exact", "lpm") for kind in kinds
        ):
            index = _LpmIndex(combined, self.key_widths, kinds.index("lpm"))
        else:
            index = _CompiledScan(combined, self.key_widths, self._has_lpm)
        self._index = index
        return index

    def index_info(self) -> Dict[str, object]:
        """Strategy and entry stats for reporting (CLI, control API)."""
        info: Dict[str, object] = {
            "entries": len(self.const_entries) + len(self.runtime_entries),
            "indexed": self.use_index,
        }
        if self.use_index:
            index = self._index if self._index is not None else self._build_index()
            info["strategy"] = index.strategy
            info["residual"] = len(getattr(index, "residual", ()))
        else:
            info["strategy"] = "reference-scan"
        return info

    def entry_index(self, entry: Entry) -> int:
        """Position of an entry in the const+runtime priority order."""
        combined = [*self.const_entries, *self.runtime_entries]
        for index, candidate in enumerate(combined):
            if candidate is entry:
                return index
        return -1

    def __repr__(self) -> str:
        return (
            f"TableRuntime({self.name!r}, {len(self.const_entries)} const + "
            f"{len(self.runtime_entries)} runtime entries)"
        )


# ======================================================================
# Spec conversion helpers
# ======================================================================


def _key_name(expr: ast.Expr) -> str:
    """Dotted-path rendering of a key expression for error messages."""
    if isinstance(expr, ast.PathExpr):
        return expr.name
    if isinstance(expr, ast.MemberExpr):
        return f"{_key_name(expr.base)}.{expr.member}"
    if isinstance(expr, ast.SliceExpr):
        return f"{_key_name(expr.base)}[{expr.hi}:{expr.lo}]"
    if isinstance(expr, ast.BinaryExpr):
        return f"{_key_name(expr.left)}{expr.op}{_key_name(expr.right)}"
    return type(expr).__name__


def _width_of(expr: ast.Expr, table: str, key: str) -> int:
    t = expr.type
    if isinstance(t, ast.BitType):
        return t.width
    if isinstance(t, ast.BoolType):
        return 1
    raise TargetError(
        f"table {table!r} key {key!r}: match key has no bit width "
        f"(type {t!r}); only bit<W> and bool keys are matchable"
    )


def _literal_value(expr: ast.Expr) -> int:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.PathExpr):
        decl = getattr(expr, "decl", None)
        value = getattr(decl, "value", None)
        if value is not None:
            return value
    raise TargetError("table entry arguments must be compile-time values")


def _keyset_to_spec(
    keyset: ast.Expr, kind: str, width: int, table: str, key: str
) -> MatchSpec:
    full_mask = (1 << width) - 1
    if isinstance(keyset, ast.DefaultExpr):
        return ("any",)
    if isinstance(keyset, ast.MaskExpr):
        if kind != "ternary":
            raise TargetError(
                f"table {table!r} key {key!r}: mask keyset on a {kind!r} "
                f"key (masks are only valid on ternary keys)"
            )
        mask = _literal_value(keyset.mask) & full_mask
        return ("ternary", _literal_value(keyset.value) & full_mask, mask)
    if isinstance(keyset, ast.RangeExpr):
        if kind != "range":
            raise TargetError(
                f"table {table!r} key {key!r}: range keyset on a {kind!r} "
                f"key (ranges are only valid on range keys)"
            )
        lo = _literal_value(keyset.lo) & full_mask
        hi = _literal_value(keyset.hi) & full_mask
        if lo > hi:
            raise TargetError(
                f"table {table!r} key {key!r}: empty range {lo}..{hi} "
                f"after masking to {width} bits"
            )
        return ("range", lo, hi)
    value = _literal_value(keyset) & full_mask
    if kind == "exact":
        return ("exact", value)
    if kind == "ternary":
        return ("ternary", value, full_mask)
    if kind == "lpm":
        return ("lpm", value, width)
    if kind == "range":
        return ("range", value, value)
    raise TargetError(f"unknown match kind {kind!r}")


def _runtime_match_to_spec(
    match, kind: str, width: int, table: str, key: str
) -> MatchSpec:
    full_mask = (1 << width) - 1
    if match is None:
        return ("any",)
    if isinstance(match, int):
        value = match & full_mask
        if kind == "exact":
            return ("exact", value)
        if kind == "ternary":
            return ("ternary", value, full_mask)
        if kind == "lpm":
            return ("lpm", value, width)
        if kind == "range":
            return ("range", value, value)
    if isinstance(match, tuple) and len(match) == 2:
        a, b = match
        if kind == "lpm":
            if not 0 <= b <= width:
                raise TargetError(
                    f"table {table!r} key {key!r}: lpm prefix length {b} "
                    f"out of range for a {width}-bit key"
                )
            return ("lpm", a & full_mask, b)
        if kind == "ternary":
            mask = b & full_mask
            return ("ternary", a & full_mask, mask)
        if kind == "range":
            lo = a & full_mask
            hi = b & full_mask
            if lo > hi:
                raise TargetError(
                    f"table {table!r} key {key!r}: empty range {lo}..{hi} "
                    f"after masking to {width} bits"
                )
            return ("range", lo, hi)
        raise TargetError(f"tuple match not valid for {kind!r} key")
    raise TargetError(f"cannot interpret match {match!r} for {kind!r} key")
