"""Match-action table runtime.

Supports the four match kinds µP4 requires of targets (§6.4): ``exact``,
``lpm``, ``ternary`` and ``range``.  Entries come from two sources:

* const entries compiled into the program (matched in declaration order,
  i.e. first-match priority — this is what the parser-MAT transformation
  relies on), and
* runtime entries installed through the control API, inserted after the
  const entries in priority order.

A lookup evaluates each key expression, then returns the first matching
entry; if an ``lpm`` key is present, the longest prefix among matching
entries wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import TargetError
from repro.frontend import astnodes as ast

# A match spec per key, normalized by kind:
#   exact   -> ("exact", value)
#   lpm     -> ("lpm", value, prefix_len)
#   ternary -> ("ternary", value, mask)
#   range   -> ("range", lo, hi)
#   any     -> ("any",)          (don't care, any kind)
MatchSpec = Tuple


@dataclass
class Entry:
    """One table entry."""

    matches: List[MatchSpec]
    action_name: str
    action_args: List[int] = field(default_factory=list)
    priority: int = 0
    is_const: bool = False

    def matches_key(self, key_values: Sequence[int], key_widths: Sequence[int]) -> bool:
        for spec, value, width in zip(self.matches, key_values, key_widths):
            kind = spec[0]
            if kind == "any":
                continue
            if kind == "exact":
                if value != spec[1]:
                    return False
            elif kind == "lpm":
                _, prefix_value, prefix_len = spec
                if prefix_len == 0:
                    continue
                shift = width - prefix_len
                if (value >> shift) != (prefix_value >> shift):
                    return False
            elif kind == "ternary":
                _, tvalue, mask = spec
                if (value & mask) != (tvalue & mask):
                    return False
            elif kind == "range":
                _, lo, hi = spec
                if not (lo <= value <= hi):
                    return False
            else:
                raise TargetError(f"unknown match kind {kind!r}")
        return True

    def lpm_length(self) -> int:
        for spec in self.matches:
            if spec[0] == "lpm":
                return spec[2]
        return 0


class TableRuntime:
    """Runtime state of one MAT."""

    def __init__(
        self,
        decl: ast.TableDecl,
        key_widths: Optional[List[int]] = None,
    ) -> None:
        self.decl = decl
        self.name = decl.name
        self.match_kinds = [k.match_kind for k in decl.keys]
        self.key_widths = key_widths or [
            _width_of(k.expr) for k in decl.keys
        ]
        self.const_entries: List[Entry] = [
            self._convert_const_entry(e) for e in decl.const_entries
        ]
        self.runtime_entries: List[Entry] = []
        self.default_action = decl.default_action or "NoAction"
        self.default_args: List[int] = [
            _literal_value(a) for a in decl.default_action_args
        ]

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _convert_const_entry(self, entry: ast.TableEntry) -> Entry:
        matches = [
            _keyset_to_spec(ks, kind, width)
            for ks, kind, width in zip(
                entry.keysets, self.match_kinds, self.key_widths
            )
        ]
        return Entry(
            matches=matches,
            action_name=entry.action_name,
            action_args=[_literal_value(a) for a in entry.action_args],
            is_const=True,
        )

    def add_entry(
        self,
        matches: Sequence,
        action_name: str,
        action_args: Optional[Sequence[int]] = None,
        priority: int = 0,
    ) -> None:
        """Install a runtime entry.

        ``matches`` items may be: an int (exact), a ``(value, length)``
        tuple for lpm keys, a ``(value, mask)`` tuple for ternary keys, a
        ``(lo, hi)`` tuple for range keys, or ``None`` for don't-care.
        """
        if len(matches) != len(self.match_kinds):
            raise TargetError(
                f"table {self.name!r}: {len(matches)} matches for "
                f"{len(self.match_kinds)} keys"
            )
        if action_name not in self.decl.actions and action_name != "NoAction":
            raise TargetError(
                f"table {self.name!r} has no action {action_name!r}"
            )
        specs: List[MatchSpec] = []
        for m, kind, width in zip(matches, self.match_kinds, self.key_widths):
            specs.append(_runtime_match_to_spec(m, kind, width))
        self.runtime_entries.append(
            Entry(
                matches=specs,
                action_name=action_name,
                action_args=list(action_args or []),
                priority=priority,
            )
        )
        # Higher priority wins; stable for equal priorities.
        self.runtime_entries.sort(key=lambda e: -e.priority)

    def set_default(self, action_name: str, args: Optional[Sequence[int]] = None) -> None:
        if action_name not in self.decl.actions and action_name != "NoAction":
            raise TargetError(
                f"table {self.name!r} has no action {action_name!r}"
            )
        self.default_action = action_name
        self.default_args = list(args or [])

    def clear_runtime_entries(self) -> None:
        self.runtime_entries = []

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key_values: Sequence[int]) -> Tuple[str, List[int], bool]:
        """Return ``(action, args, hit)`` for the given key values."""
        action, args, hit, _ = self.lookup_full(key_values)
        return action, args, hit

    def lookup_full(
        self, key_values: Sequence[int]
    ) -> Tuple[str, List[int], bool, Optional[Entry]]:
        """Like :meth:`lookup`, but also returns the matched entry (or
        ``None`` on a default-action miss) for packet tracing."""
        candidates = [
            e
            for e in [*self.const_entries, *self.runtime_entries]
            if e.matches_key(key_values, self.key_widths)
        ]
        if not candidates:
            return self.default_action, list(self.default_args), False, None
        if "lpm" in self.match_kinds:
            best = max(candidates, key=lambda e: e.lpm_length())
            return best.action_name, list(best.action_args), True, best
        entry = candidates[0]
        return entry.action_name, list(entry.action_args), True, entry

    def entry_index(self, entry: Entry) -> int:
        """Position of an entry in the const+runtime priority order."""
        combined = [*self.const_entries, *self.runtime_entries]
        for index, candidate in enumerate(combined):
            if candidate is entry:
                return index
        return -1

    def __repr__(self) -> str:
        return (
            f"TableRuntime({self.name!r}, {len(self.const_entries)} const + "
            f"{len(self.runtime_entries)} runtime entries)"
        )


# ======================================================================
# Spec conversion helpers
# ======================================================================


def _width_of(expr: ast.Expr) -> int:
    t = expr.type
    if isinstance(t, ast.BitType):
        return t.width
    if isinstance(t, ast.BoolType):
        return 1
    return 32


def _literal_value(expr: ast.Expr) -> int:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.PathExpr):
        decl = getattr(expr, "decl", None)
        value = getattr(decl, "value", None)
        if value is not None:
            return value
    raise TargetError("table entry arguments must be compile-time values")


def _keyset_to_spec(keyset: ast.Expr, kind: str, width: int) -> MatchSpec:
    full_mask = (1 << width) - 1
    if isinstance(keyset, ast.DefaultExpr):
        return ("any",)
    if isinstance(keyset, ast.MaskExpr):
        return ("ternary", _literal_value(keyset.value), _literal_value(keyset.mask))
    if isinstance(keyset, ast.RangeExpr):
        return ("range", _literal_value(keyset.lo), _literal_value(keyset.hi))
    value = _literal_value(keyset)
    if kind == "exact":
        return ("exact", value)
    if kind == "ternary":
        return ("ternary", value, full_mask)
    if kind == "lpm":
        return ("lpm", value, width)
    if kind == "range":
        return ("range", value, value)
    raise TargetError(f"unknown match kind {kind!r}")


def _runtime_match_to_spec(match, kind: str, width: int) -> MatchSpec:
    full_mask = (1 << width) - 1
    if match is None:
        return ("any",)
    if isinstance(match, int):
        if kind == "exact":
            return ("exact", match)
        if kind == "ternary":
            return ("ternary", match, full_mask)
        if kind == "lpm":
            return ("lpm", match, width)
        if kind == "range":
            return ("range", match, match)
    if isinstance(match, tuple) and len(match) == 2:
        a, b = match
        if kind == "lpm":
            return ("lpm", a, b)
        if kind == "ternary":
            return ("ternary", a, b)
        if kind == "range":
            return ("range", a, b)
        raise TargetError(f"tuple match not valid for {kind!r} key")
    raise TargetError(f"cannot interpret match {match!r} for {kind!r} key")
