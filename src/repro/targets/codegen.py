"""Source-codegen execution backend: the composed pipeline as one
generated Python function.

The closure backend (:mod:`repro.targets.compiled`) already moved all
AST dispatch and name resolution to build time, but each statement is
still one Python *call* over a shared register list.  This module goes
one step further down the µP4C "do it at compile time" ladder: a
:class:`CodegenPipeline` renders the composed program into **Python
source** — parser, table dispatch, inlined action bodies, and deparser
as one module-level function per pipeline — then ``compile()``s and
``exec``s it once.  Per-packet work after that is plain local-variable
bytecode:

* every pipeline variable is a function **local** (no ``ctx.regs``
  indexing);
* widths, masks, pack/unpack plans, fault-site strings and trace labels
  are inlined **constants**;
* the micro-pipeline byte stack is **scalarized** into one local per
  byte (no per-field dict traffic) whenever the program only touches it
  through field reads/writes and header ops;
* action bodies are inlined at each table-apply site, so a hit runs
  straight-line code instead of a dict lookup plus invoker call.

The generated function preserves the interpreter's observable contract
(the differential suite in ``tests/targets/test_compiled_equiv.py``
enforces it across all ``EXEC_BACKENDS``): identical verdict streams,
drop reasons, ``PacketTrace`` events, fault-site trip order, error
strings, and statement-exact step accounting against
``interp_step_budget``.

Batched struct-of-arrays mode
-----------------------------

For scalarizable micro pipelines that never recirculate, a second
function ``_cg_run_batch`` is generated: stage A parses N packets into
one flat ``bytearray`` arena (struct-of-arrays: lane-major byte cells),
stage B runs match-action bodies lane by lane over the arena, stage C
deparses the survivors.  Digest parity with per-packet mode holds
because the micro parse/deparse stages draw **no** fault sites, and all
per-site ``FaultPlan`` streams ("table"/"extern" in stage B, "buffer"
and mutation sites in the switch) see lanes in submission order — the
same visit order per-packet execution produces.

Metrics are emitted under ``codegen.*`` (``codegen.packets``,
``codegen.table_hits``/``misses``, ``codegen.builds``) alongside the
``interp.*`` and ``compiled.*`` families.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import re
import tempfile
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Symbol
from repro.midend.bytestack import BS_INSTANCE, BS_LEN_VAR, PARSER_ERR_VAR
from repro.midend.inline import IM_VAR, PKT_VAR, ComposedPipeline
from repro.net.packet import Packet
from repro.obs.metrics import LATENCY_SAMPLE_EVERY, METRICS
from repro.obs.pkttrace import PacketTrace
from repro.targets.compiled import (
    _IM_FAST,
    _factory_for,
    _pack_plan,
    _unpack_plan,
)
from repro.targets.faults import (
    DEFAULT_STEP_BUDGET,
    FaultError,
    FaultPlan,
    ResourceGuards,
)
from repro.targets.interpreter import (
    ExitSignal,
    HeaderValue,
    ImState,
    McEngine,
    PktObject,
    RegisterState,
    ReturnSignal,
)
from repro.targets.pipeline import PacketOut, ParserErrorSignal, _expr_name
from repro.targets.tables import TableRuntime

#: Strings safe to re-emit without pinning into a temp: evaluating them
#: is side-effect free and order-independent (bare locals, literals).
_ATOM = re.compile(r"(?:[A-Za-z_][A-Za-z0-9_]*|\d+|'[^'\\]*')\Z")


# ======================================================================
# Runtime helpers injected into every generated namespace
# ======================================================================


def _te(message, code=None, *_evaluated):
    """Raise a (possibly reason-coded) TargetError; usable in expression
    position since it never returns.  Extra args exist so Python's
    left-to-right call evaluation forces operand side effects first."""
    err = TargetError(message)
    if code is not None:
        err.code = code
    raise err


def _te_after(message, *_evaluated):
    """Raise after evaluating the operand arguments — the interpreter
    evaluates sub-expressions before discovering a missing width or an
    unsupported cast."""
    raise TargetError(message)


def _mem(target, m):
    """Untyped member read with the interpreter's exact error texts."""
    try:
        return target.fields[m]
    except KeyError:
        raise TargetError(f"no field {m!r} in {target!r}") from None
    except AttributeError:
        raise TargetError(f"cannot read member {m!r} of {target!r}") from None


def _stm(value, target, m, mask=None):
    """Untyped member store; ``value`` is the first parameter so the
    generated call evaluates it before the base, like the interpreter."""
    try:
        flds = target.fields
    except AttributeError:
        raise TargetError(f"cannot assign member of {target!r}") from None
    if m not in flds:
        raise TargetError(f"no field {m!r} in {target!r}")
    flds[m] = value if mask is None else int(value) & mask
    return None


def _div(lv, rv, mask):
    if rv == 0:
        raise TargetError("division by zero in dataplane expression")
    return (int(lv) // int(rv)) & mask


def _mod(lv, rv, mask):
    if rv == 0:
        raise TargetError("modulo by zero in dataplane expression")
    return (int(lv) % int(rv)) & mask


class _Block:
    """Indentation context manager for :class:`_SourceGen`."""

    __slots__ = ("gen",)

    def __init__(self, gen) -> None:
        self.gen = gen

    def __enter__(self):
        self.gen.ind += 1
        return self

    def __exit__(self, *exc):
        self.gen.ind -= 1
        return False


# ======================================================================
# Escape analysis for byte-stack scalarization
# ======================================================================


def _bs_escapes(composed: ComposedPipeline) -> bool:
    """True when the byte-stack instance is used in any way other than
    field access (``bs.bN``) or a header op on the stack itself — the
    only shapes the scalarized representation can express."""
    bs = composed.byte_stack
    if bs is None:
        return True
    size = bs.size
    field_re = re.compile(r"b(\d+)\Z")

    def walk(node) -> bool:
        if isinstance(node, (list, tuple)):
            return any(walk(n) for n in node)
        if not isinstance(node, ast.Node):
            return False
        if isinstance(node, ast.PathExpr):
            return node.name == BS_INSTANCE
        if isinstance(node, ast.VarDeclStmt):
            if node.name == BS_INSTANCE:
                return True
            return walk(node.init)
        if isinstance(node, ast.MemberExpr):
            base = node.base
            if isinstance(base, ast.PathExpr) and base.name == BS_INSTANCE:
                m = field_re.match(node.member)
                return not (m and int(m.group(1)) < size)
            return walk(base)
        if isinstance(node, ast.MethodCallExpr):
            resolved = getattr(node, "resolved", None)
            target = node.target
            if (
                isinstance(target, ast.MemberExpr)
                and isinstance(target.base, ast.PathExpr)
                and target.base.name == BS_INSTANCE
            ):
                if resolved is not None and resolved[0] == "header_op":
                    return any(walk(a) for a in node.args)
                return True
            return walk(target) or any(walk(a) for a in node.args)
        if isinstance(node, ast.Type):
            return False
        for attr, value in vars(node).items():
            # Resolution back-references would re-walk whole declarations.
            if attr in ("decl", "resolved"):
                continue
            if walk(value):
                return True
        return False

    roots: List[object] = [composed.statements]
    for adecl in composed.actions.values():
        roots.append(adecl.params)
        roots.append(adecl.body)
    for tdecl in composed.tables.values():
        roots.append(tdecl)
    for adecl in composed.actions.values():
        for p in adecl.params:
            if p.name == BS_INSTANCE:
                return True
    return any(walk(r) for r in roots)


# ======================================================================
# The source generator
# ======================================================================


class _SourceGen:
    """Renders one :class:`ComposedPipeline` into Python source.

    Mirrors the scoping model of ``compiled._Compiler``: lexical frames
    map pipeline names to generated function locals, redeclaration in
    the same frame reuses the local, shadowing in a child frame gets a
    fresh one.  Every emitted statement carries the same three-line step
    accounting the closure backend performs, and all dynamic error
    messages are rendered with ``%`` formatting so the strings are
    byte-identical to the interpreter's f-strings.
    """

    def __init__(
        self, composed: ComposedPipeline, tables: Dict[str, TableRuntime]
    ) -> None:
        self.composed = composed
        self.tables = tables
        self.namespace: Dict[str, object] = {
            "_TErr": TargetError,
            "_FErr": FaultError,
            "_PErr": ParserErrorSignal,
            "_Exit": ExitSignal,
            "_Return": ReturnSignal,
            "_HV": HeaderValue,
            "_IM": ImState,
            "_Reg": RegisterState,
            "_PktObj": PktObject,
            "_Pkt": Packet,
            "_POut": PacketOut,
            "_obs": METRICS.observe,
            "_perf": perf_counter,
            "_ifb": int.from_bytes,
            "_te": _te,
            "_te_after": _te_after,
            "_mem": _mem,
            "_stm": _stm,
            "_div": _div,
            "_mod": _mod,
            "_ACTS": frozenset(composed.actions),
        }
        self._out: List[Tuple[int, str]] = []
        self._cur = self._out
        self._bufstack: List[Tuple[List[Tuple[int, str]], int]] = []
        self.ind = 0
        self.nlocals = 0
        self._n = 0
        self._frames: List[Dict[str, Tuple[str, bool]]] = []
        self._labels: List[str] = []
        self._pool_ids: Dict[int, str] = {}
        self.in_parser = False
        self.uses_recirc = False
        # Byte-stack scalarization plan (micro mode only).
        self.bs_scalar = False
        self.bs_size = 0
        self.bs_extract_len = 0
        if composed.mode == "micro" and composed.byte_stack is not None:
            self.bs_size = composed.byte_stack.size
            self.bs_extract_len = composed.region.extract_length
            self.bs_scalar = (
                self.bs_extract_len <= self.bs_size
                and not _bs_escapes(composed)
            )
        self.bs_locals = tuple(f"_bs{i}" for i in range(self.bs_size))

    # ------------------------------------------------------------------
    # Emission plumbing
    # ------------------------------------------------------------------
    def line(self, text: str) -> None:
        self._cur.append((self.ind, text))

    def block(self) -> _Block:
        return _Block(self)

    def _buf_push(self) -> None:
        self._bufstack.append((self._cur, self.ind))
        self._cur = []

    def _buf_pop(self) -> Tuple[List[Tuple[int, str]], int]:
        lines = self._cur
        self._cur, base = self._bufstack.pop()
        return lines, base

    def _splice(self, buf: Tuple[List[Tuple[int, str]], int]) -> None:
        lines, base = buf
        delta = self.ind - base
        for ind, text in lines:
            self._cur.append((ind + delta, text))

    def tmp(self) -> str:
        self._n += 1
        return f"_t{self._n}"

    def render(self) -> str:
        return "\n".join("    " * ind + text for ind, text in self._out)

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    def _push_frame(self, label: Optional[str] = None) -> None:
        if label is None:
            label = self._labels[-1] if self._labels else "pipeline"
        self._frames.append({})
        self._labels.append(label)

    def _pop_frame(self) -> None:
        self._frames.pop()
        self._labels.pop()

    def _define(self, name: str, is_int: bool) -> str:
        frame = self._frames[-1]
        ent = frame.get(name)
        if ent is not None:
            # Same-frame redeclaration reuses the local, like
            # ``Env.define`` overwriting a slot.
            frame[name] = (ent[0], is_int)
            return ent[0]
        self._n += 1
        self.nlocals += 1
        local = f"v{self._n}"
        frame[name] = (local, is_int)
        return local

    def _define_special(self, name: str, marker: str) -> None:
        self._frames[-1][name] = (marker, False)

    def _find(self, name: str) -> Optional[Tuple[str, bool]]:
        for frame in reversed(self._frames):
            ent = frame.get(name)
            if ent is not None:
                return ent
        return None

    def _undef(self, name: str, doing: str) -> str:
        msg = (
            f"{doing} undefined name {name!r} at runtime "
            f"(in {self._labels[-1]})"
        )
        return f"_te({msg!r}, 'undefined-name')"

    def pooled(self, obj, prefix: str) -> str:
        key = id(obj)
        got = self._pool_ids.get(key)
        if got is None:
            self._n += 1
            got = f"{prefix}{self._n}"
            self._pool_ids[key] = got
            self.namespace[got] = obj
        return got

    # ------------------------------------------------------------------
    # Evaluation-order machinery
    # ------------------------------------------------------------------
    def _eval_all(self, nodes: List[ast.Expr]) -> List[str]:
        """Compile ``nodes`` left to right.  Any operand whose value
        must exist before a *later* operand's emitted pre-lines run is
        pinned into a temp, so side effects keep interpreter order."""
        staged = []
        for node in nodes:
            self._buf_push()
            s = self.expr(node)
            staged.append((self._buf_pop(), s))
        last_pre = -1
        for i, (buf, _s) in enumerate(staged):
            if buf[0]:
                last_pre = i
        out = []
        for i, (buf, s) in enumerate(staged):
            self._splice(buf)
            if i < last_pre and not _ATOM.match(s):
                t = self.tmp()
                self.line(f"{t} = {s}")
                s = t
            out.append(s)
        return out

    # ------------------------------------------------------------------
    # Static int-ness (for eliding ``int()`` exactly where the closure
    # backend's semantics make it a no-op)
    # ------------------------------------------------------------------
    def is_int(self, node: ast.Expr) -> bool:
        if isinstance(node, ast.IntLit):
            return True
        if isinstance(node, ast.PathExpr):
            decl = getattr(node, "decl", None)
            if isinstance(decl, Symbol) and decl.kind == "const":
                return isinstance(decl.value, int) and not isinstance(
                    decl.value, bool
                )
            ent = self._find(node.name)
            return ent is not None and ent[1]
        if isinstance(node, ast.MemberExpr):
            base = node.base
            if (
                self.bs_scalar
                and isinstance(base, ast.PathExpr)
                and self._find(base.name) == ("__BS__", False)
            ):
                return True
            return False
        if isinstance(node, ast.SliceExpr):
            return True
        if isinstance(node, ast.CastExpr):
            return isinstance(node.target, ast.BitType)
        if isinstance(node, ast.UnaryExpr):
            if node.op not in ("~", "-"):
                return False
            t = node.type if node.type else node.operand.type
            return isinstance(t, ast.BitType)
        if isinstance(node, ast.BinaryExpr):
            op = node.op
            if op in ("&", "|", "^", ">>", "++"):
                return True
            if op in ("+", "-", "*", "<<", "/", "%"):
                return isinstance(node.type, ast.BitType)
            return False
        return False

    def as_int(self, node: ast.Expr, s: str) -> str:
        return s if self.is_int(node) else f"int({s})"

    # ------------------------------------------------------------------
    # Expressions (may emit pre-lines; return an expression string)
    # ------------------------------------------------------------------
    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            return repr(e.value)
        if isinstance(e, ast.BoolLit):
            return repr(e.value)
        if isinstance(e, ast.PathExpr):
            decl = getattr(e, "decl", None)
            if isinstance(decl, Symbol) and decl.kind == "const":
                v = decl.value
                if v is None or isinstance(v, (bool, int, str)):
                    return repr(v)
                return self.pooled(v, "_K")
            ent = self._find(e.name)
            if ent is None:
                return self._undef(e.name, "read of")
            return ent[0]
        if isinstance(e, ast.MemberExpr):
            return self._member(e)
        if isinstance(e, ast.SliceExpr):
            b = self.expr(e.base)
            mask = (1 << (e.hi - e.lo + 1)) - 1
            return f"(({b} >> {e.lo}) & {mask})"
        if isinstance(e, ast.UnaryExpr):
            return self._unary(e)
        if isinstance(e, ast.CastExpr):
            if isinstance(e.target, ast.BitType):
                o = self.expr(e.operand)
                mask = (1 << e.target.width) - 1
                return f"({self.as_int(e.operand, o)} & {mask})"
            if isinstance(e.target, ast.BoolType):
                o = self.expr(e.operand)
                return f"bool({o})"
            o = self.expr(e.operand)
            msg = f"unsupported cast to {e.target}"
            return f"_te_after({msg!r}, {o})"
        if isinstance(e, ast.BinaryExpr):
            return self._binary(e)
        if isinstance(e, ast.MethodCallExpr):
            return self.call(e)
        msg = f"cannot evaluate {type(e).__name__}"
        return f"_te({msg!r})"

    def _member(self, e: ast.MemberExpr) -> str:
        base = e.base
        if isinstance(base, ast.PathExpr):
            decl = getattr(base, "decl", None)
            if (
                isinstance(decl, Symbol)
                and decl.kind == "type"
                and isinstance(decl.type, ast.EnumType)
            ):
                return repr(e.member)
            if self.bs_scalar and self._find(base.name) == ("__BS__", False):
                return self.bs_locals[int(e.member[1:])]
        bt = getattr(base, "type", None)
        b = self.expr(base)
        if isinstance(bt, (ast.HeaderType, ast.StructType)) and any(
            n == e.member for n, _t in bt.fields
        ):
            # Statically present field: the runtime dict always holds
            # every declared field, so the guarded helper is pure cost.
            return f"{b}.fields[{e.member!r}]"
        return f"_mem({b}, {e.member!r})"

    def _unary(self, e: ast.UnaryExpr) -> str:
        if e.op == "!":
            o = self.expr(e.operand)
            return f"(not {o})"
        t = e.type if e.type else e.operand.type
        if not isinstance(t, ast.BitType):
            o = self.expr(e.operand)
            msg = f"unary has no bit width at runtime (type {t})"
            return f"_te_after({msg!r}, {o})"
        mask = (1 << t.width) - 1
        o = self.expr(e.operand)
        if e.op == "~":
            return f"(~{o} & {mask})"
        if e.op == "-":
            return f"(-{o} & {mask})"
        msg = f"unknown unary op {e.op!r}"
        return f"_te({msg!r})"

    _CMP = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

    def _binary(self, e: ast.BinaryExpr) -> str:
        op = e.op
        if op in ("&&", "||"):
            self._buf_push()
            ls = self.expr(e.left)
            lbuf = self._buf_pop()
            self._buf_push()
            rs = self.expr(e.right)
            rbuf = self._buf_pop()
            self._splice(lbuf)
            if not rbuf[0]:
                kw = "and" if op == "&&" else "or"
                return f"(bool({ls}) {kw} bool({rs}))"
            t = self.tmp()
            self.line(f"{t} = bool({ls})")
            self.line(f"if {t}:" if op == "&&" else f"if not {t}:")
            with self.block():
                self._splice(rbuf)
                self.line(f"{t} = bool({rs})")
            return t
        ls, rs = self._eval_all([e.left, e.right])
        cmp = self._CMP.get(op)
        if cmp is not None:
            return f"({ls} {cmp} {rs})"
        li = self.as_int(e.left, ls)
        ri = self.as_int(e.right, rs)
        if op == "++":
            rt = e.right.type
            if not isinstance(rt, ast.BitType):
                msg = f"concat operand has no bit width at runtime (type {rt})"
                return f"_te_after({msg!r}, {ls}, {rs})"
            return f"(({li} << {rt.width}) | {ri})"
        if op in ("&", "|", "^", ">>"):
            return f"({li} {op} {ri})"
        if not isinstance(e.type, ast.BitType):
            msg = (
                f"result of {op!r} has no bit width at runtime "
                f"(type {e.type})"
            )
            return f"_te_after({msg!r}, {ls}, {rs})"
        mask = (1 << e.type.width) - 1
        if op in ("+", "-", "*", "<<"):
            return f"(({li} {op} {ri}) & {mask})"
        if op == "/":
            return f"_div({ls}, {rs}, {mask})"
        if op == "%":
            return f"_mod({ls}, {rs}, {mask})"
        msg = f"unknown binary op {op!r}"
        return f"_te({msg!r})"

    # ------------------------------------------------------------------
    # Stores.  Callers must fully evaluate the value first (temp it when
    # non-atomic) — the interpreter computes the RHS before any lvalue
    # base expression runs.
    # ------------------------------------------------------------------
    def store(self, lhs: ast.Expr, vs: str, v_int: bool) -> None:
        if isinstance(lhs, ast.PathExpr):
            ent = self._find(lhs.name)
            if ent is None:
                self.line(self._undef(lhs.name, "assignment to"))
                return
            if ent[0] == "__BS__":
                self.line(self._undef(lhs.name, "assignment to"))
                return
            if isinstance(lhs.type, ast.BitType):
                mask = (1 << lhs.type.width) - 1
                vi = vs if v_int else f"int({vs})"
                self.line(f"{ent[0]} = {vi} & {mask}")
            else:
                self.line(f"{ent[0]} = {vs}")
            return
        if isinstance(lhs, ast.MemberExpr):
            base = lhs.base
            if (
                self.bs_scalar
                and isinstance(base, ast.PathExpr)
                and self._find(base.name) == ("__BS__", False)
            ):
                local = self.bs_locals[int(lhs.member[1:])]
                vi = vs if v_int else f"int({vs})"
                mask = (1 << lhs.type.width) - 1 if isinstance(
                    lhs.type, ast.BitType
                ) else 255
                self.line(f"{local} = {vi} & {mask}")
                return
            bt = getattr(base, "type", None)
            typed = isinstance(bt, (ast.HeaderType, ast.StructType)) and any(
                n == lhs.member for n, _t in bt.fields
            )
            if typed:
                b = self.expr(base)
                if isinstance(lhs.type, ast.BitType):
                    mask = (1 << lhs.type.width) - 1
                    vi = vs if v_int else f"int({vs})"
                    self.line(f"{b}.fields[{lhs.member!r}] = {vi} & {mask}")
                else:
                    self.line(f"{b}.fields[{lhs.member!r}] = {vs}")
                return
            b = self.expr(base)
            if isinstance(lhs.type, ast.BitType):
                mask = (1 << lhs.type.width) - 1
                self.line(f"_stm({vs}, {b}, {lhs.member!r}, {mask})")
            else:
                self.line(f"_stm({vs}, {b}, {lhs.member!r})")
            return
        if isinstance(lhs, ast.SliceExpr):
            width = lhs.hi - lhs.lo + 1
            smask = (1 << width) - 1
            keep = ~(smask << lhs.lo)
            cur = self.expr(lhs.base)
            ci = self.as_int(lhs.base, cur)
            vi = vs if v_int else f"int({vs})"
            t = self.tmp()
            self.line(
                f"{t} = ({ci} & {keep}) | (({vi} & {smask}) << {lhs.lo})"
            )
            self.store(lhs.base, t, True)
            return
        msg = f"unsupported lvalue {type(lhs).__name__}"
        self.line(f"_te({msg!r})")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def step(self) -> None:
        """The same statement-exact accounting the closure backend
        performs; the format happens only on the cold path."""
        self.line("steps += 1")
        self.line("if steps > step_limit:")
        with self.block():
            self.line(
                "raise _FErr('step-budget', 'interpreter exceeded "
                "%d statements for one packet' % step_limit)"
            )

    def stmts(self, body: List[ast.Stmt]) -> None:
        for s in body:
            self.stmt(s)

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.BlockStmt):
            self.step()
            self._push_frame()
            self.stmts(s.stmts)
            self._pop_frame()
            return
        if isinstance(s, ast.AssignStmt):
            self.step()
            self._buf_push()
            vs = self.expr(s.rhs)
            buf = self._buf_pop()
            self._splice(buf)
            v_int = self.is_int(s.rhs)
            if not isinstance(s.lhs, ast.PathExpr) and not _ATOM.match(vs):
                t = self.tmp()
                self.line(f"{t} = {vs}")
                vs = t
            self.store(s.lhs, vs, v_int)
            return
        if isinstance(s, ast.VarDeclStmt):
            self.step()
            if s.init is not None:
                vs = self.expr(s.init)
                local = self._define(s.name, self.is_int(s.init))
                self.line(f"{local} = {vs}")
                return
            t = s.var_type
            if isinstance(t, ast.BitType):
                local = self._define(s.name, True)
                self.line(f"{local} = 0")
            elif isinstance(t, ast.BoolType):
                local = self._define(s.name, False)
                self.line(f"{local} = False")
            elif isinstance(t, ast.EnumType):
                local = self._define(s.name, False)
                self.line(f"{local} = {(t.members[0] if t.members else '')!r}")
            else:
                factory = self.pooled(_factory_for(t), "_K")
                local = self._define(s.name, False)
                self.line(f"{local} = {factory}()")
            return
        if isinstance(s, ast.MethodCallStmt):
            self.step()
            self._buf_push()
            cs = self.call(s.call)
            buf = self._buf_pop()
            self._splice(buf)
            if cs != "None" and not _ATOM.match(cs):
                self.line(cs)
            return
        if isinstance(s, ast.IfStmt):
            self.step()
            cond = self.expr(s.cond)
            self.line(f"if {cond}:")
            with self.block():
                self.stmt(s.then_body)
            if s.else_body is not None:
                self.line("else:")
                with self.block():
                    self.stmt(s.else_body)
            return
        if isinstance(s, ast.SwitchStmt):
            self._switch(s)
            return
        if isinstance(s, ast.EmptyStmt):
            self.step()
            return
        if isinstance(s, ast.ExitStmt):
            self.step()
            self.line("raise _Exit()")
            return
        if isinstance(s, ast.ReturnStmt):
            self.step()
            self.line("raise _Return()")
            return
        self.step()
        msg = f"cannot execute {type(s).__name__}"
        self.line(f"raise _TErr({msg!r})")

    def _switch(self, s: ast.SwitchStmt) -> None:
        self.step()
        subj = self.expr(s.subject)
        t = self.tmp()
        self.line(f"{t} = {subj}")
        # Resolve fallthrough statically: a match on case i executes the
        # first non-empty body at or after i, like the closure backend.
        bodies = [case.body for case in s.cases]
        resolved = [
            next((b for b in bodies[i:] if b is not None), None)
            for i in range(len(bodies))
        ]
        arms: List[Tuple[Optional[ast.Expr], Optional[ast.Stmt]]] = []
        for index, case in enumerate(s.cases):
            for keyset in case.keysets:
                matcher = (
                    None if isinstance(keyset, ast.DefaultExpr) else keyset
                )
                arms.append((matcher, resolved[index]))
        self._switch_arms(arms, t)

    def _switch_arms(self, arms, t: str) -> None:
        if not arms:
            return
        matcher, body = arms[0]
        if matcher is None:
            # default arm: always matches, later arms are unreachable.
            if body is not None:
                self.stmt(body)
            else:
                self.line("pass")
            return
        ms = self.expr(matcher)
        self.line(f"if {ms} == {t}:")
        with self.block():
            if body is not None:
                self.stmt(body)
            else:
                self.line("pass")
        if len(arms) > 1:
            self.line("else:")
            with self.block():
                self._switch_arms(arms[1:], t)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(self, c: ast.MethodCallExpr) -> str:
        resolved = getattr(c, "resolved", None)
        if resolved is None:
            return "_te('unresolved call reached the interpreter')"
        kind = resolved[0]
        if kind == "header_op":
            return self._header_op(c, resolved[1])
        if kind == "table":
            return self._table_apply(resolved[1])
        if kind == "action":
            return self._action_call(c, resolved[1])
        if kind == "extern":
            return self._extern(c, resolved[1], resolved[2])
        if kind == "builtin":
            return self._builtin(c, resolved[1])
        if kind == "module":
            return (
                "_te('module apply survived inlining; "
                "run the composer first')"
            )
        if kind == "stack_op":
            return (
                "_te('header-stack op survived lowering; "
                "run the hdr_stack pass')"
            )
        msg = f"cannot execute call kind {kind!r}"
        return f"_te({msg!r})"

    def _header_op(self, c: ast.MethodCallExpr, op: str) -> str:
        target = c.target
        assert isinstance(target, ast.MemberExpr)
        base = target.base
        if (
            self.bs_scalar
            and isinstance(base, ast.PathExpr)
            and self._find(base.name) == ("__BS__", False)
        ):
            if op == "isValid":
                return "_bsvld"
            if op == "setValid":
                self.line("_bsvld = True")
                return "None"
            if op == "setInvalid":
                self.line("_bsvld = False")
                return "None"
            msg = f"unknown header op {op!r}"
            self.line(f"raise _TErr({msg!r})")
            return "None"
        b = self.expr(base)
        if not _ATOM.match(b):
            t = self.tmp()
            self.line(f"{t} = {b}")
            b = t
        if op == "isValid":
            msg = "isValid on a non-header value %r"
            return (
                f"({b}.valid if isinstance({b}, _HV) "
                f"else _te({msg!r} % ({b},)))"
            )
        if op in ("setValid", "setInvalid"):
            self.line(f"if isinstance({b}, _HV):")
            with self.block():
                self.line(
                    f"{b}.valid = {'True' if op == 'setValid' else 'False'}"
                )
            self.line("else:")
            with self.block():
                msg = f"{op} on a non-header value %r"
                self.line(f"raise _TErr({msg!r} % ({b},))")
            return "None"
        self.line(f"if not isinstance({b}, _HV):")
        with self.block():
            msg = f"{op} on a non-header value %r"
            self.line(f"raise _TErr({msg!r} % ({b},))")
        msg = f"unknown header op {op!r}"
        self.line(f"raise _TErr({msg!r})")
        return "None"

    def _table_apply(self, decl) -> str:
        runtime = self.tables.get(decl.name)
        if runtime is None:
            msg = f"table {decl.name!r} has no runtime state"
            return f"_te({msg!r})"
        name = decl.name
        pool = self.pooled(runtime, "_TR")
        lk = f"_LK{pool[3:]}"
        ei = f"_EI{pool[3:]}"
        self.namespace[lk] = runtime.lookup_full
        self.namespace[ei] = runtime.entry_index
        fmsg = f"injected lookup failure in table {name!r}"
        self.line(f"if faults is not None and faults.trip('table', {name!r}):")
        with self.block():
            self.line(
                f"raise _FErr('extern-fault', {fmsg!r}, "
                f"site={('table:' + name)!r})"
            )
        lt = self.tmp()
        self.line("if lat_on:")
        with self.block():
            self.line(f"{lt} = _perf()")
        keys = self._eval_all(list(runtime.key_exprs))
        ints = [
            self.as_int(node, ks)
            for node, ks in zip(runtime.key_exprs, keys)
        ]
        kv = self.tmp()
        if ints:
            self.line(f"{kv} = ({', '.join(ints)},)")
        else:
            self.line(f"{kv} = ()")
        an, aa, hit, en = self.tmp(), self.tmp(), self.tmp(), self.tmp()
        self.line(f"{an}, {aa}, {hit}, {en} = {lk}({kv})")
        self.line("if lat_on:")
        with self.block():
            self.line(
                f"_obs('pipeline.latency_us.lookup', "
                f"(_perf() - {lt}) * 1e6)"
            )
        self.line(f"_ttrace.append({(name + ':')!r} + {an})")
        self.line("if trace is not None:")
        with self.block():
            self.line(
                f"trace.table({name!r}, {kv}, {an}, {hit}, "
                f"entry={ei}({en}) if {en} is not None else None, "
                f"const={en}.is_const if {en} is not None else None, "
                f"args={aa})"
            )
        self.line(f"if {hit}:")
        with self.block():
            self.line("_hits += 1")
        self.line("else:")
        with self.block():
            self.line("_misses += 1")
        self.line(f"if {an} != 'NoAction':")
        with self.block():
            self.line(f"if {an} not in _ACTS:")
            with self.block():
                umsg = f"table {name!r} selected unknown action %r"
                self.line(f"raise _TErr({umsg!r} % ({an},))")
            self.line("if lat_on:")
            with self.block():
                self.line(f"{lt} = _perf()")
            first = True
            for aname, adecl in self.composed.actions.items():
                self.line(f"{'if' if first else 'elif'} {an} == {aname!r}:")
                with self.block():
                    self._inline_action(adecl, aa)
                first = False
            self.line("if lat_on:")
            with self.block():
                self.line(
                    f"_obs('pipeline.latency_us.action', "
                    f"(_perf() - {lt}) * 1e6)"
                )
        return hit

    def _inline_action(self, adecl, args_tmp: str) -> None:
        """One action body, inlined at a table-apply dispatch arm."""
        n = len(adecl.params)
        amsg = f"action {adecl.name!r} expects {n} args, got %d"
        self.line(f"if len({args_tmp}) != {n}:")
        with self.block():
            self.line(f"raise _TErr({amsg!r} % len({args_tmp}))")
        self._push_frame(f"action {adecl.name!r}")
        for i, p in enumerate(adecl.params):
            local = self._define(p.name, False)
            self.line(f"{local} = {args_tmp}[{i}]")
        self.stmts(adecl.body.stmts)
        self._pop_frame()

    def _action_call(self, c: ast.MethodCallExpr, adecl) -> str:
        vals = self._eval_all(list(c.args))
        n = len(adecl.params)
        if len(vals) != n:
            # The invoker raises only after evaluating every argument.
            for vs in vals:
                if not _ATOM.match(vs):
                    self.line(vs)
            msg = f"action {adecl.name!r} expects {n} args, got {len(vals)}"
            self.line(f"raise _TErr({msg!r})")
            return "None"
        self._push_frame(f"action {adecl.name!r}")
        for p, vs in zip(adecl.params, vals):
            local = self._define(p.name, False)
            self.line(f"{local} = {vs}")
        self.stmts(adecl.body.stmts)
        self._pop_frame()
        return "None"

    def _builtin(self, c: ast.MethodCallExpr, name: str) -> str:
        if name != "recirculate":
            msg = f"unknown builtin function {name!r}"
            return f"_te({msg!r})"
        self.uses_recirc = True
        ent = self._find(IM_VAR)
        if ent is None:
            return self._undef(IM_VAR, "read of")
        t = self.tmp()
        self.line(f"{t} = {ent[0]}")
        self.line(f"if isinstance({t}, _IM):")
        with self.block():
            self.line(f"{t}.recirculate_requested = True")
        for a in c.args:
            vs = self.expr(a)
            if not _ATOM.match(vs):
                self.line(vs)
        return "None"

    # ------------------------------------------------------------------
    # Externs
    # ------------------------------------------------------------------
    def _trip_extern(self, extern: str, site: str, fmsg: str) -> None:
        self.line(
            f"if faults is not None and faults.trip('extern', {extern!r}):"
        )
        with self.block():
            self.line(f"raise _FErr('extern-fault', {fmsg!r}, site={site!r})")

    def _generic_extern(self, c, extern: str, method: str, r: str) -> None:
        """The interpreter's dynamic-dispatch fallback: evaluate the
        base, then the arguments, then ``obj.call`` or the missing-
        instance error."""
        b = self.expr(c.target.base)
        o = self.tmp()
        self.line(f"{o} = {b}")
        vals = self._eval_all(list(c.args))
        a = self.tmp()
        self.line(f"{a} = [{', '.join(vals)}]")
        self.line(f"if hasattr({o}, 'call'):")
        with self.block():
            self.line(f"{r} = {o}.call({method!r}, {a})")
        self.line("else:")
        with self.block():
            msg = f"extern instance {extern!r} missing at runtime"
            self.line(f"raise _TErr({msg!r})")

    def _extern(self, c: ast.MethodCallExpr, extern: str, method: str) -> str:
        target = c.target
        assert isinstance(target, ast.MemberExpr)
        site = f"extern:{extern}"
        fmsg = f"injected fault in extern {extern!r}.{method}"
        if extern == "extractor":
            if self.in_parser:
                return self._extract(c, site, fmsg)
            self._trip_extern("extractor", site, fmsg)
            self.line(
                "raise _TErr('extractor.extract outside a native "
                "parser context')"
            )
            return "None"
        if extern == "emitter":
            self._trip_extern(extern, site, fmsg)
            self.line(
                "raise _TErr('emitter.emit outside a native "
                "deparser context')"
            )
            return "None"
        if extern == "register" and method == "read" and len(c.args) == 2:
            self._trip_extern(extern, site, fmsg)
            b = self.expr(target.base)
            o = self.tmp()
            self.line(f"{o} = {b}")
            r = self.tmp()
            self.line(f"if isinstance({o}, _Reg):")
            with self.block():
                idx = self.expr(c.args[1])
                idx_i = self.as_int(c.args[1], idx)
                v = self.tmp()
                self.line(f"{v} = {o}.cells.get({idx_i} % {o}.size, 0)")
                self.store(c.args[0], v, True)
                self.line(f"{r} = None")
            self.line("else:")
            with self.block():
                self._generic_extern(c, extern, method, r)
            return r
        if (
            extern == "im_t"
            and method in _IM_FAST
            and len(c.args) <= 1
            and (method != "set_out_port" or len(c.args) == 1)
        ):
            self._trip_extern(extern, site, fmsg)
            b = self.expr(target.base)
            o = self.tmp()
            self.line(f"{o} = {b}")
            r = self.tmp()
            self.line(f"if {o}.__class__ is _IM:")
            with self.block():
                if method == "set_out_port":
                    a0 = self.expr(c.args[0])
                    p = self.tmp()
                    self.line(f"{p} = {self.as_int(c.args[0], a0)}")
                    self.line(f"{o}.out_port = {p}")
                    self.line(f"if {p} == 255:")
                    with self.block():
                        self.line(f"{o}.dropped = True")
                    self.line(f"{r} = None")
                elif method == "drop":
                    self.line(f"{o}.dropped = True")
                    self.line(f"{r} = None")
                else:
                    attr = (
                        "out_port" if method == "get_out_port" else "in_port"
                    )
                    self.line(f"{r} = {o}.{attr}")
            self.line("else:")
            with self.block():
                self._generic_extern(c, extern, method, r)
            return r
        self._trip_extern(extern, site, fmsg)
        r = self.tmp()
        self._generic_extern(c, extern, method, r)
        return r

    def _extract(self, c: ast.MethodCallExpr, site: str, fmsg: str) -> str:
        self._trip_extern("extractor", site, fmsg)
        lvalue = c.args[1]
        htype = getattr(lvalue, "type", None)
        if not isinstance(htype, ast.HeaderType):
            g = self.expr(lvalue)
            if not _ATOM.match(g):
                self.line(g)
            self.line("raise _TErr('extract target is not a header')")
            return "None"
        size = htype.byte_width
        plan = _unpack_plan(htype)
        name = _expr_name(lvalue)
        g = self.expr(lvalue)
        h = self.tmp()
        self.line(f"{h} = {g}")
        self.line(f"if {h}.__class__ is not _HV:")
        with self.block():
            self.line("raise _TErr('extract target is not a header')")
        e = self.tmp()
        self.line(f"{e} = _cursor + {size}")
        self.line(f"if {e} > _dl:")
        with self.block():
            self.line("raise _PErr('truncated-extract')")
        acc = self.tmp()
        self.line(f"{acc} = _ifb(data[_cursor:{e}], 'big')")
        f = self.tmp()
        self.line(f"{f} = {h}.fields")
        for fname, shift, fmask in plan:
            if shift:
                self.line(f"{f}[{fname!r}] = ({acc} >> {shift}) & {fmask}")
            else:
                self.line(f"{f}[{fname!r}] = {acc} & {fmask}")
        self.line(f"{h}.valid = True")
        self.line("if trace is not None:")
        with self.block():
            self.line(f"trace.extract({name!r}, {size}, offset=_cursor)")
        self.line(f"_cursor = {e}")
        return "None"

    # ------------------------------------------------------------------
    # Native parser (monolithic mode)
    # ------------------------------------------------------------------
    def _default_init(self, name: str, t: ast.Type) -> None:
        if isinstance(t, ast.BitType):
            local = self._define(name, True)
            self.line(f"{local} = 0")
        elif isinstance(t, ast.BoolType):
            local = self._define(name, False)
            self.line(f"{local} = False")
        elif isinstance(t, ast.EnumType):
            local = self._define(name, False)
            self.line(f"{local} = {(t.members[0] if t.members else '')!r}")
        else:
            factory = self.pooled(_factory_for(t), "_K")
            local = self._define(name, False)
            self.line(f"{local} = {factory}()")

    def _parser_emit(self, parser) -> None:
        """State machine as an integer-dispatched loop: states index
        0.., ``accept`` is -1, ``reject`` -2, unknown targets get raise
        arms below -2."""
        self._push_frame(f"parser {parser.name!r}")
        self.in_parser = True
        for local in parser.locals:
            if not isinstance(local, ast.VarLocal):
                continue
            if local.init is not None:
                vs = self.expr(local.init)
                loc = self._define(local.name, self.is_int(local.init))
                self.line(f"{loc} = {vs}")
            else:
                self._default_init(local.name, local.var_type)
        index = {st.name: i for i, st in enumerate(parser.states)}
        unknowns: Dict[str, int] = {}

        def target_index(name: str) -> int:
            got = index.get(name)
            if got is not None:
                return got
            if name == "accept":
                return -1
            if name == "reject":
                return -2
            got = unknowns.get(name)
            if got is None:
                got = -3 - len(unknowns)
                unknowns[name] = got
            return got

        self.line(f"_st = {target_index('start')}")
        self.line("for _ in range(parser_budget):")
        with self.block():
            self.line("if _st == -1:")
            with self.block():
                self.line("break")
            self.line("elif _st == -2:")
            with self.block():
                self.line("raise _PErr('parser-reject')")
            for i, st in enumerate(parser.states):
                self.line(f"elif _st == {i}:")
                with self.block():
                    self.line("if trace is not None:")
                    with self.block():
                        self.line(f"trace.parser_state({st.name!r})")
                    self.stmts(st.stmts)
                    self._transition(st, target_index)
            for uname, code in sorted(unknowns.items(), key=lambda kv: -kv[1]):
                self.line(f"elif _st == {code}:")
                with self.block():
                    msg = f"parser reached unknown state {uname!r}"
                    self.line(f"raise _TErr({msg!r})")
        self.line("else:")
        with self.block():
            self.line(
                "raise _FErr('parse-depth', 'native parser exceeded its "
                "%d-state step budget' % parser_budget)"
            )
        self.in_parser = False
        self._pop_frame()

    def _transition(self, st, target_index) -> None:
        if st.direct_next is not None:
            self.line(f"_st = {target_index(st.direct_next)}")
            return
        if not st.select_exprs:
            self.line("_st = -2")
            return
        subs = []
        for e in st.select_exprs:
            s = self.expr(e)
            if not _ATOM.match(s):
                t = self.tmp()
                self.line(f"{t} = {s}")
                s = t
            subs.append((e, s))
        first = True
        for keysets, target in st.select_cases:
            conds = []
            for ks, (snode, sname) in zip(keysets, subs):
                if isinstance(ks, ast.DefaultExpr):
                    continue
                si = self.as_int(snode, sname)
                if isinstance(ks, ast.MaskExpr):
                    vs = self.expr(ks.value)
                    if not _ATOM.match(vs):
                        t = self.tmp()
                        self.line(f"{t} = {vs}")
                        vs = t
                    vi = self.as_int(ks.value, vs)
                    ms = self.expr(ks.mask)
                    mi = self.as_int(ks.mask, ms)
                    if not _ATOM.match(mi):
                        t = self.tmp()
                        self.line(f"{t} = {mi}")
                        mi = t
                    conds.append(f"(({si} & {mi}) == ({vi} & {mi}))")
                elif isinstance(ks, ast.RangeExpr):
                    los = self.expr(ks.lo)
                    if not _ATOM.match(los):
                        t = self.tmp()
                        self.line(f"{t} = {los}")
                        los = t
                    his = self.expr(ks.hi)
                    if not _ATOM.match(his):
                        t = self.tmp()
                        self.line(f"{t} = {his}")
                        his = t
                    loi = self.as_int(ks.lo, los)
                    hii = self.as_int(ks.hi, his)
                    conds.append(f"({loi} <= {si} <= {hii})")
                else:
                    vs = self.expr(ks)
                    conds.append(f"({vs} == {sname})")
            cond = " and ".join(conds) if conds else "True"
            self.line(f"{'if' if first else 'elif'} {cond}:")
            with self.block():
                self.line(f"_st = {target_index(target)}")
            first = False
        self.line("else:")
        with self.block():
            self.line("_st = -2")

    # ------------------------------------------------------------------
    # Whole-function emission
    # ------------------------------------------------------------------
    def _root_inits(self, in_port_s: str, pktlen_s: str, pktobj_s: str) -> None:
        """Per-packet locals for IM/pkt/root variables, in the same order
        ``compiled._fresh_ctx`` evaluates them: scalars and factories in
        declaration order, register externs next, mc wiring last."""
        im = self._define(IM_VAR, False)
        self.line(f"{im} = _IM(in_port={in_port_s}, pkt_len={pktlen_s})")
        pk = self._define(PKT_VAR, False)
        self.line(f"{pk} = _PktObj({pktobj_s})")
        mc_wires = []
        reg_inits = []
        for name, vtype in self.composed.variables.items():
            if self.bs_scalar and name == BS_INSTANCE:
                self._define_special(name, "__BS__")
                continue
            if isinstance(vtype, ast.ExternType):
                if vtype.name == "register":
                    local = self._define(name, False)
                    reg_inits.append((local, name))
                elif vtype.name == "mc_engine":
                    factory = self.pooled(_factory_for(vtype), "_K")
                    local = self._define(name, False)
                    self.line(f"{local} = {factory}()")
                    mc_wires.append(local)
                else:
                    local = self._define(name, False)
                    self.line(f"{local} = None")
                continue
            if isinstance(vtype, ast.BitType):
                local = self._define(name, True)
                self.line(f"{local} = 0")
                continue
            if isinstance(vtype, ast.BoolType):
                local = self._define(name, False)
                self.line(f"{local} = False")
                continue
            if isinstance(vtype, ast.EnumType):
                local = self._define(name, False)
                self.line(f"{local} = {(vtype.members[0] if vtype.members else '')!r}")
                continue
            factory = self.pooled(_factory_for(vtype), "_K")
            local = self._define(name, False)
            self.line(f"{local} = {factory}()")
        for local, name in reg_inits:
            self.line(f"{local} = _pers.setdefault({name!r}, _Reg())")
        for local in mc_wires:
            self.line(f"{local}.im = {im}")

    def _micro_scalar_prologue(self) -> None:
        E, S = self.bs_extract_len, self.bs_size
        names = self.bs_locals
        if E > 0:
            head = ", ".join(names[:E]) + ("," if E == 1 else "")
            self.line(f"if _dl >= {E}:")
            with self.block():
                self.line(f"_loaded = {E}")
                self.line(f"{head} = data[:{E}]")
            self.line("else:")
            with self.block():
                self.line("_loaded = _dl")
                self.line(f"{head} = data.ljust({E}, b'\\x00')")
        else:
            self.line("_loaded = 0")
        if E < S:
            chain = " = ".join(names[E:])
            self.line(f"{chain} = 0")
        self.line("_bsvld = True")
        self.line(f"{self._find(BS_LEN_VAR)[0]} = _loaded")
        self.line(f"payload = data[{E}:]")

    def _micro_object_prologue(self) -> None:
        E, S = self.bs_extract_len, self.bs_size
        bs = self._find(BS_INSTANCE)[0]
        self.namespace["_BN"] = tuple(f"b{i}" for i in range(S))
        self.line(f"_loaded = _dl if _dl < {E} else {E}")
        self.line(f"{bs}.valid = True")
        self.line(f"_bf = {bs}.fields")
        self.line("for _i in range(_loaded):")
        with self.block():
            self.line("_bf[_BN[_i]] = data[_i]")
        self.line(f"{self._find(BS_LEN_VAR)[0]} = _loaded")
        self.line(f"payload = data[{E}:]")

    def _micro_per_packet(self) -> None:
        E, S = self.bs_extract_len, self.bs_size
        self.line("if lat_on:")
        with self.block():
            self.line("_pt = _perf()")
        if self.bs_scalar:
            self._micro_scalar_prologue()
        else:
            self._micro_object_prologue()
        self.line("if lat_on:")
        with self.block():
            self.line("_obs('pipeline.latency_us.parse', (_perf() - _pt) * 1e6)")
        self.line("if trace is not None:")
        with self.block():
            self.line(f"trace.extract('byte_stack', _loaded, extract_length={E})")
        self.line("try:")
        with self.block():
            self.stmts(self.composed.statements)
        self.line("except (_Exit, _Return):")
        with self.block():
            self.line("pass")
        im = self._find(IM_VAR)[0]
        perr = self._find(PARSER_ERR_VAR)[0]
        self.line(f"if {perr} == 1 or {im}.dropped:")
        with self.block():
            self.line(f"_reason = 'parser-error' if {perr} == 1 else 'pipeline-drop'")
            self.line("pipe.last_drop_reason = _reason")
            self.line("if trace is not None:")
            with self.block():
                self.line("trace.drop(_reason)")
            self.line("return []")
        blen = self._find(BS_LEN_VAR)
        self.line(f"out_len = {blen[0] if blen[1] else 'int(%s)' % blen[0]}")
        self.line(f"if out_len > {S} or out_len < 0:")
        with self.block():
            self.line(
                "raise _FErr('bytestack-bounds', "
                f"'byte-stack length %d outside stack size {S}' % out_len)"
            )
        self.line("if lat_on:")
        with self.block():
            self.line("_pt = _perf()")
        if self.bs_scalar:
            tup = ", ".join(self.bs_locals)
            self.line(f"out_bytes = bytes(({tup},)[:out_len]) + payload")
        else:
            self.line("out_bytes = bytes(map(_bf.__getitem__, _BN[:out_len])) + payload")
        self.line("if lat_on:")
        with self.block():
            self.line("_obs('pipeline.latency_us.deparse', (_perf() - _pt) * 1e6)")
        self.line("if trace is not None:")
        with self.block():
            self.line("trace.deparse(out_len, len(payload))")
            self.line(
                f"trace.output({im}.out_port, len(out_bytes), "
                f"{im}.mcast_grp, {im}.recirculate_requested)"
            )
        self.line(
            f"return [_POut(_Pkt(out_bytes), {im}.out_port, {im}.mcast_grp, "
            f"recirculate={im}.recirculate_requested)]"
        )

    def _mono_per_packet(self) -> None:
        self.line("_cursor = 0")
        parser = self.composed.native_parser
        if parser is not None:
            self.line("_prr = None")
            self.line("if lat_on:")
            with self.block():
                self.line("_pt = _perf()")
            self.line("try:")
            with self.block():
                self._parser_emit(parser)
            self.line("except _PErr as _sig:")
            with self.block():
                self.line("_prr = _sig.reason")
            self.line("finally:")
            with self.block():
                self.line("if lat_on:")
                with self.block():
                    self.line("_obs('pipeline.latency_us.parse', (_perf() - _pt) * 1e6)")
            self.line("if _prr is not None:")
            with self.block():
                self.line("pipe.last_drop_reason = _prr")
                self.line("if trace is not None:")
                with self.block():
                    self.line("trace.drop(_prr)")
                self.line("return []")
        self.line("payload = data[_cursor:]")
        self.line("try:")
        with self.block():
            self.stmts(self.composed.statements)
        self.line("except (_Exit, _Return):")
        with self.block():
            self.line("pass")
        im = self._find(IM_VAR)[0]
        self.line(f"if {im}.dropped:")
        with self.block():
            self.line("pipe.last_drop_reason = 'pipeline-drop'")
            self.line("if trace is not None:")
            with self.block():
                self.line("trace.drop('pipeline-drop')")
            self.line("return []")
        self.line("if lat_on:")
        with self.block():
            self.line("_pt = _perf()")
        self.line("_parts = []")
        for emit in self.composed.native_emits or ():
            htype = getattr(emit, "type", None)
            g = self.expr(emit)
            h = self.tmp()
            self.line(f"{h} = {g}")
            self.line(f"if not isinstance({h}, _HV):")
            with self.block():
                self.line("raise _TErr('native emit of a non-header value')")
            self.line(f"if {h}.valid:")
            with self.block():
                if isinstance(htype, ast.HeaderType):
                    plan = _pack_plan(htype)
                    nbytes = htype.fixed_bit_width // 8
                else:
                    plan = ()
                    nbytes = 0
                f = self.tmp()
                self.line(f"{f} = {h}.fields")
                fold = "0"
                for fname, width, fmask in plan:
                    term = f"({f}[{fname!r}] & {fmask})"
                    fold = term if fold == "0" else f"(({fold} << {width}) | {term})"
                name = _expr_name(emit)
                self.line(f"_pk = ({fold}).to_bytes({nbytes}, 'big')")
                self.line("if trace is not None:")
                with self.block():
                    self.line(f"trace.emit({name!r}, {nbytes})")
                self.line("_parts.append(_pk)")
        self.line("_parts.append(payload)")
        self.line("out_bytes = b''.join(_parts)")
        self.line("if lat_on:")
        with self.block():
            self.line("_obs('pipeline.latency_us.deparse', (_perf() - _pt) * 1e6)")
        self.line("if trace is not None:")
        with self.block():
            self.line(
                f"trace.output({im}.out_port, len(out_bytes), "
                f"{im}.mcast_grp, {im}.recirculate_requested)"
            )
        self.line(
            f"return [_POut(_Pkt(out_bytes), {im}.out_port, {im}.mcast_grp, "
            f"recirculate={im}.recirculate_requested)]"
        )

    def _gen_run(self) -> None:
        self.line(
            "def _cg_run(pipe, packet, in_port, trace, lat_on, step_limit, "
            "faults, parser_budget):"
        )
        with self.block():
            self.line("data = packet.tobytes()")
            self.line("_dl = len(data)")
            self.line("steps = 0")
            self.line("_hits = 0")
            self.line("_misses = 0")
            self.line("_ttrace = pipe.table_trace")
            self.line("_pers = pipe.persistent")
            self.line("try:")
            with self.block():
                self._push_frame("pipeline")
                self._root_inits("in_port", "_dl", "packet")
                if self.composed.mode == "micro":
                    self._micro_per_packet()
                else:
                    self._mono_per_packet()
                self._pop_frame()
            self.line("finally:")
            with self.block():
                self.line("pipe._hits_out = _hits")
                self.line("pipe._misses_out = _misses")

    def _gen_run_batch(self) -> None:
        E, S = self.bs_extract_len, self.bs_size
        names = self.bs_locals
        tup = ", ".join(names) + ("," if S == 1 else "")
        self.line("")
        self.line("")
        self.line("def _cg_run_batch(pipe, datas, ports, pkts, step_limit, faults):")
        with self.block():
            self.line("trace = None")
            self.line("lat_on = False")
            self.line("_hits = 0")
            self.line("_misses = 0")
            self.line("_ttrace = pipe.table_trace")
            self.line("_pers = pipe.persistent")
            self.line("_n = len(datas)")
            self.line("_results = [None] * _n")
            self.line("_lens = [0] * _n")
            self.line("_outlens = [0] * _n")
            self.line("_pays = [b''] * _n")
            self.line("_ims = [None] * _n")
            self.line(f"_cells = bytearray(_n * {S})")
            self.line("try:")
            with self.block():
                # Stage A: parse every lane into the flat cell arena.
                self.line("_off = 0")
                self.line("for _lane in range(_n):")
                with self.block():
                    self.line("data = datas[_lane]")
                    self.line("_dl = len(data)")
                    if E > 0:
                        self.line(f"if _dl >= {E}:")
                        with self.block():
                            self.line(f"_cells[_off:_off + {E}] = data[:{E}]")
                            self.line(f"_lens[_lane] = {E}")
                        self.line("else:")
                        with self.block():
                            self.line("_cells[_off:_off + _dl] = data")
                            self.line("_lens[_lane] = _dl")
                    self.line(f"_pays[_lane] = data[{E}:]")
                    self.line(f"_off += {S}")
                # Stage B: match-action body per lane.
                self.line("_off = 0")
                self.line("for _lane in range(_n):")
                with self.block():
                    self.line("_dl = len(datas[_lane])")
                    self.line("try:")
                    with self.block():
                        self.line("steps = 0")
                        self.line(f"{tup} = _cells[_off:_off + {S}]")
                        self.line("_bsvld = True")
                        self._push_frame("pipeline")
                        self._root_inits("ports[_lane]", "_dl", "pkts[_lane]")
                        self.line(f"{self._find(BS_LEN_VAR)[0]} = _lens[_lane]")
                        self.line("try:")
                        with self.block():
                            self.stmts(self.composed.statements)
                        self.line("except (_Exit, _Return):")
                        with self.block():
                            self.line("pass")
                        im = self._find(IM_VAR)[0]
                        perr = self._find(PARSER_ERR_VAR)[0]
                        self.line(f"if {perr} == 1 or {im}.dropped:")
                        with self.block():
                            self.line(
                                "_results[_lane] = ([], 'parser-error' if "
                                f"{perr} == 1 else 'pipeline-drop', None)"
                            )
                        self.line("else:")
                        with self.block():
                            blen = self._find(BS_LEN_VAR)
                            self.line(
                                f"out_len = {blen[0] if blen[1] else 'int(%s)' % blen[0]}"
                            )
                            self.line(f"if out_len > {S} or out_len < 0:")
                            with self.block():
                                self.line(
                                    "raise _FErr('bytestack-bounds', "
                                    f"'byte-stack length %d outside stack size {S}'"
                                    " % out_len)"
                                )
                            self.line(f"_cells[_off:_off + {S}] = ({tup})")
                            self.line("_outlens[_lane] = out_len")
                            self.line(f"_ims[_lane] = {im}")
                        self._pop_frame()
                    self.line("except Exception as _exc:")
                    with self.block():
                        self.line("_results[_lane] = (None, None, _exc)")
                    self.line(f"_off += {S}")
                # Stage C: deparse the surviving lanes.
                self.line("_off = 0")
                self.line("for _lane in range(_n):")
                with self.block():
                    self.line("if _results[_lane] is None:")
                    with self.block():
                        self.line("_im = _ims[_lane]")
                        self.line(
                            "_ob = bytes(_cells[_off:_off + _outlens[_lane]]) "
                            "+ _pays[_lane]"
                        )
                        self.line(
                            "_results[_lane] = ([_POut(_Pkt(_ob), _im.out_port, "
                            "_im.mcast_grp, recirculate=_im.recirculate_requested)], "
                            "None, None)"
                        )
                    self.line(f"_off += {S}")
            self.line("finally:")
            with self.block():
                self.line("pipe._hits_out = _hits")
                self.line("pipe._misses_out = _misses")
            self.line("return _results")

    def generate(self) -> str:
        self._gen_run()
        self.batch_ok = (
            self.composed.mode == "micro"
            and self.bs_scalar
            and self.bs_size > 0
            and not self.uses_recirc
        )
        if self.batch_ok:
            self._gen_run_batch()
        return self.render()


class SoaLayout:
    """The struct-of-arrays arena contract for one composed pipeline.

    One cell per byte-stack slot, ``extract_len`` cells loaded from the
    wire, lanes packed row-major (``lane * size + cell``).  Both the
    generated ``_cg_run_batch`` body and the vector backend slice the
    same layout, so it is exported here as a named object instead of
    being re-derived from private ``_SourceGen`` fields.
    """

    __slots__ = ("size", "extract_len", "scalar", "batch_ok")

    def __init__(self, size: int, extract_len: int, scalar: bool, batch_ok: bool) -> None:
        self.size = size
        self.extract_len = extract_len
        self.scalar = scalar
        self.batch_ok = batch_ok


# ---------------------------------------------------------------------------
# Build cache
#
# Generating source is cheap (~0.06s) but ``compile()`` dominates the
# build (~0.26s) and every sharded worker replica used to pay it again
# for the same program.  The generated module text is deterministic per
# composed pipeline and contains no per-instance state (runtime objects
# are injected through the exec namespace), so code objects can be
# shared: an in-process dict serves repeat builds in one process, and a
# marshal file under the tempdir serves fresh worker processes.  Keyed
# on the interpreter's bytecode magic + the exact source, so stale or
# foreign cache files can never produce wrong code.  Disable with
# ``REPRO_CODEGEN_CACHE=0``; relocate with ``REPRO_CODEGEN_CACHE_DIR``.
# ---------------------------------------------------------------------------

_CODE_CACHE: Dict[str, Any] = {}


def _disk_cache_dir() -> Optional[str]:
    if os.environ.get("REPRO_CODEGEN_CACHE", "1") == "0":
        return None
    root = os.environ.get("REPRO_CODEGEN_CACHE_DIR")
    if not root:
        uid = getattr(os, "getuid", lambda: 0)()
        root = os.path.join(tempfile.gettempdir(), f"repro-codegen-{uid}")
    try:
        os.makedirs(root, mode=0o700, exist_ok=True)
    except OSError:
        return None
    return root


def _compile_cached(source: str, filename: str):
    key = hashlib.sha256(
        importlib.util.MAGIC_NUMBER + filename.encode() + b"\x00" + source.encode()
    ).hexdigest()
    code = _CODE_CACHE.get(key)
    if code is not None:
        if METRICS.enabled:
            METRICS.inc("codegen.build_cache_hits")
        return code
    root = _disk_cache_dir()
    path = os.path.join(root, key + ".pyc") if root else None
    if path is not None:
        try:
            with open(path, "rb") as fh:
                code = marshal.loads(fh.read())
        except Exception:
            code = None  # missing, truncated, or foreign: recompile
        if code is not None:
            _CODE_CACHE[key] = code
            if METRICS.enabled:
                METRICS.inc("codegen.build_cache_hits")
            return code
    if METRICS.enabled:
        METRICS.inc("codegen.build_cache_misses")
    code = compile(source, filename, "exec")
    _CODE_CACHE[key] = code
    if path is not None:
        try:
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "wb") as fh:
                fh.write(marshal.dumps(code))
            os.replace(tmp, path)
        except Exception:
            pass  # cache is best-effort; the compiled code is in hand
    return code


class CodegenPipeline:
    """Composed pipeline translated to generated Python source.

    Observationally identical to the interpreter and the closure backend:
    same verdicts, drop reasons, traces, fault-trip order, step counting,
    and error strings. ``source`` holds the generated module text for
    debugging; ``batch_supported`` is True when the struct-of-arrays
    ``process_soa`` fast path was generated for this pipeline.
    """

    backend = "codegen"

    def __init__(
        self,
        composed: ComposedPipeline,
        use_table_index: bool = True,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.composed = composed
        self.tables = {
            name: TableRuntime(decl, use_index=use_table_index)
            for name, decl in composed.tables.items()
        }
        self.persistent: Dict[str, RegisterState] = {}
        self.last_drop_reason: Optional[str] = None
        self.table_trace: List[str] = []
        self._lat_tick = 0
        self.step_limit = DEFAULT_STEP_BUDGET
        self.faults: Optional[FaultPlan] = None
        self.guards = ResourceGuards()
        self._hits_out = 0
        self._misses_out = 0
        # Metric family follows the registered backend name so subclasses
        # (the vector backend) report under their own keys even on paths
        # inherited from here — the CLI/engine summaries read
        # ``{exec_backend}.table_hits`` etc.
        self._m_packets = f"{self.backend}.packets"
        self._m_hits = f"{self.backend}.table_hits"
        self._m_misses = f"{self.backend}.table_misses"
        gen = _SourceGen(composed, self.tables)
        self.source = gen.generate()
        ns = gen.namespace
        code = _compile_cached(self.source, f"<codegen:{composed.name}>")
        exec(code, ns)
        self._run = ns["_cg_run"]
        self._run_batch = ns.get("_cg_run_batch")
        self.batch_supported = self._run_batch is not None
        self.soa_layout = SoaLayout(
            gen.bs_size, gen.bs_extract_len, gen.bs_scalar, gen.batch_ok
        )
        self.configure_faults(guards=guards, faults=faults)
        if METRICS.enabled:
            METRICS.inc("codegen.builds")
            METRICS.set_gauge("codegen.locals", gen.nlocals)

    def configure_faults(
        self,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if guards is not None:
            self.guards = guards
        self.step_limit = self.guards.interp_step_budget
        self.faults = faults

    def process(self, packet: Packet, in_port: int = 0, trace=None) -> List[PacketOut]:
        lat_on = False
        if METRICS.enabled:
            METRICS.inc(self._m_packets)
            tick = self._lat_tick
            self._lat_tick = tick + 1
            lat_on = tick % LATENCY_SAMPLE_EVERY == 0
        self.last_drop_reason = None
        self._hits_out = 0
        self._misses_out = 0
        try:
            return self._run(
                self,
                packet,
                in_port,
                trace,
                lat_on,
                self.step_limit,
                self.faults,
                self.guards.parser_step_budget,
            )
        finally:
            if METRICS.enabled:
                if self._hits_out:
                    METRICS.inc(self._m_hits, self._hits_out)
                if self._misses_out:
                    METRICS.inc(self._m_misses, self._misses_out)

    def process_traced(self, packet: Packet, in_port: int = 0):
        trace = PacketTrace()
        outputs = self.process(packet, in_port, trace=trace)
        return outputs, trace

    def process_soa(self, datas, ports, pkts):
        """Batch fast path: returns one ``(outputs, reason, exc)`` triple
        per lane. ``outputs`` is None when the lane raised, ``reason`` is
        the drop reason when the lane dropped with no outputs."""
        if self._run_batch is None:
            raise TargetError("batch execution is not supported for this pipeline")
        if METRICS.enabled:
            n = len(datas)
            METRICS.inc(self._m_packets, n)
            self._lat_tick += n
        self.last_drop_reason = None
        self._hits_out = 0
        self._misses_out = 0
        try:
            return self._run_batch(self, datas, ports, pkts, self.step_limit, self.faults)
        finally:
            if METRICS.enabled:
                if self._hits_out:
                    METRICS.inc(self._m_hits, self._hits_out)
                if self._misses_out:
                    METRICS.inc(self._m_misses, self._misses_out)
