"""Vectorized numpy execution backend over the SoA lane arena.

The codegen backend's batch mode (``_cg_run_batch``) already amortizes
Python call overhead: Stage A parses every lane into a flat byte arena,
Stage B runs the generated per-lane body, Stage C deparses survivors.
Stage B is still a Python loop.  This backend replaces it with *one*
columnwise program over the whole batch: header fields become int64
column arrays sliced from the cell arena (:class:`~repro.targets.codegen.
SoaLayout` is the shared contract), statements become mask-threaded
numpy closures, exact-match lookups become sorted-key ``searchsorted``
probes, and LPM/ternary/range tables become per-entry masked compares
mirroring the reference scan's first-match / longest-prefix semantics.

Divergence splitting
--------------------

The per-packet backends interleave *effects* (stores, traces, lookup
counters) with *faults* (injected trips, runtime errors) lane by lane;
the vector path cannot, so it splits the two phases:

1. **Speculate.**  Execute the whole batch columnwise with no RNG access
   and no externally visible side effects.  Every point where a lane
   *could* diverge — a fault site, a division by zero, a bad table
   entry, a byte-stack bounds violation — is recorded as an *event*
   carrying the lane mask it applies to, in program order.
2. **Resolve.**  Walk the recorded events lane-major (all of lane 0's
   events in program order, then lane 1's, ...), drawing from the
   per-site fault RNG streams exactly where the per-packet loop would
   have.  The first event that fires kills the lane; killed lanes are
   split out of the vector results and reported as ``(None, None, exc)``
   triples, identical to the codegen batch body.
3. **Commit.**  Table traces, hit/miss counters and lookup metrics are
   replayed lane-major from the bookkeeping events, honouring each
   lane's kill ordinal, so observable state matches per-packet
   execution bit for bit (DESIGN.md §15/§16).

Fault sites whose rate is zero (or that resolve to no site) never draw
from the RNG in the per-packet path, so they are filtered out of the
walk statically — a fault-free batch skips the walk entirely.

Pipelines the compiler cannot lower (registers, multicast, generic
externs, enum-typed state, native parsers) *decline* at build time and
fall back to the inherited codegen batch path; batches whose static
step bound exceeds the configured step budget fall back per batch so
step-budget kills keep their per-lane accounting.  numpy itself is an
optional extra (``pip install .[vector]``); constructing the backend
without it raises a reason-coded ``error[vector-unavailable]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Symbol
from repro.midend.bytestack import BS_INSTANCE, BS_LEN_VAR, PARSER_ERR_VAR
from repro.midend.inline import IM_VAR, PKT_VAR, ComposedPipeline
from repro.net.packet import Packet
from repro.obs.metrics import METRICS
from repro.targets.codegen import CodegenPipeline
from repro.targets.compiled import _IM_FAST
from repro.targets.faults import FaultError, FaultPlan, ResourceGuards
from repro.targets.pipeline import PacketOut
from repro.targets.tables import TableRuntime, _checks_match, _compile_checks

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

NUMPY_AVAILABLE = _np is not None

# Entry count past which the vectorized compiled scan loses to the
# per-lane reference lookup (O(entries) column ops vs O(lanes) probes).
VECTOR_SCAN_LIMIT = 512

_I63 = 1 << 63
_HUGE = 1 << 62  # sentinel kill ordinal: later than any event


class _Unvectorizable(Exception):
    """The composed program uses a construct the columnwise compiler
    does not lower; the pipeline falls back to the codegen batch body."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------------------
# Small value helpers.  Values are Python scalars (uniform across lanes)
# or numpy arrays: int64 for narrow ints, object for widths > 63 bits,
# bool for conditions.  Masks are ``None`` (all lanes), ``False`` (no
# lanes) or a bool array.
# ----------------------------------------------------------------------


def _truthy(v):
    if isinstance(v, _np.ndarray):
        if v.dtype == _np.bool_:
            return v
        r = v != 0
        return r if r.dtype == _np.bool_ else r.astype(bool)
    if isinstance(v, bool):
        return v
    return bool(v)


def _toint(v):
    if isinstance(v, _np.ndarray):
        if v.dtype == _np.bool_:
            return v.astype(_np.int64)
        return v
    if isinstance(v, bool):
        return int(v)
    return v


def _obj(v):
    """Promote to arbitrary-precision elements (numpy object dtype /
    Python int) so > 63-bit arithmetic cannot overflow int64."""
    if isinstance(v, _np.ndarray):
        return v.astype(object) if v.dtype != object else v
    if isinstance(v, _np.integer):
        return int(v)
    return v


def _masker(width: int):
    """``v & ((1 << width) - 1)`` honouring int64 limits: for wide
    fields an int64 array already fits under the mask, and masking it
    with a > 63-bit Python int would overflow the dtype conversion."""
    mask = (1 << width) - 1
    if width <= 63:
        def apply(v, _mask=mask):
            return _toint(v) & _mask
    else:
        def apply(v, _mask=mask):
            v = _toint(v)
            if isinstance(v, _np.ndarray):
                return v & _mask if v.dtype == object else v
            return int(v) & _mask
    return apply


def _mand(m, c):
    """Mask AND condition.  Returns ``None`` (all), ``False`` (none), or
    a bool array."""
    if isinstance(c, _np.ndarray):
        if c.dtype != _np.bool_:
            c = c.astype(bool)
        return c if m is None else (m & c)
    if c:
        return m
    return False


def _many(m) -> bool:
    if m is None:
        return True
    if m is False:
        return False
    return bool(m.any())


def _aslist(v, n):
    if isinstance(v, _np.ndarray):
        return v.tolist()
    return [v] * n


def _intarr(values):
    """int64 array, or object dtype when any value exceeds int64."""
    if any(abs(int(v)) >= _I63 for v in values):
        return _np.array([int(v) for v in values], dtype=object)
    return _np.array([int(v) for v in values], dtype=_np.int64)


def _mk_terr(msg: str):
    def make(_lane: int) -> TargetError:
        return TargetError(msg)
    return make


def _bitw(t) -> Optional[int]:
    return t.width if isinstance(t, ast.BitType) else None


# ----------------------------------------------------------------------
# Per-table vectorized lookup structures
# ----------------------------------------------------------------------


class _VecIndex:
    """Vectorized lookup over one table's entry snapshot.

    Maps the whole batch's key columns to an entry *slot* per lane:
    0..E-1 in const-then-runtime priority order, -1 for a default-action
    miss.  Rebuilt whenever :attr:`TableRuntime.version` moves.  Three
    strategies, all reproducing ``TableRuntime._scan_match`` semantics:

    * all-exact entries: keys encoded into one integer (object dtype for
      > 63-bit key tuples) and probed via sorted-array ``searchsorted``;
    * small mixed/lpm/ternary/range tables: per-entry masked compares in
      priority order (first match without lpm, strict longest-prefix
      with);
    * large non-exact tables: per-lane probes through the runtime's own
      index (or reference scan when indexing is disabled).
    """

    def __init__(self, runtime: TableRuntime, arm_index: Dict[str, Tuple[int, int]]):
        self.version = runtime.version
        self.name = runtime.name
        self.widths = tuple(runtime.key_widths)
        entries = [*runtime.const_entries, *runtime.runtime_entries]
        self.nentries = len(entries)
        # Row data per slot; row -1 (the default action) is last, so
        # negative indexing resolves it on both lists and arrays.
        acts = [e.action_name for e in entries] + [runtime.default_action]
        argses = [list(e.action_args) for e in entries] + [list(runtime.default_args)]
        self.strs = [f"{runtime.name}:{an}" for an in acts]
        aidx: List[int] = []
        self.bad: List[tuple] = []
        for row, (an, args_row) in enumerate(zip(acts, argses)):
            slot_id = row if row < self.nentries else -1
            if an == "NoAction":
                aidx.append(-1)
                continue
            arm = arm_index.get(an)
            if arm is None:
                self.bad.append((slot_id, _mk_terr(
                    f"table {runtime.name!r} selected unknown action {an!r}"
                )))
                aidx.append(-2)
                continue
            ai, nparams = arm
            if len(args_row) != nparams:
                self.bad.append((slot_id, _mk_terr(
                    f"action {an!r} expects {nparams} args, got {len(args_row)}"
                )))
                aidx.append(-2)
                continue
            aidx.append(ai)
        self.aidx = _np.array(aidx, dtype=_np.int64)
        self.used = sorted({a for a in aidx if a >= 0})
        max_arity = max((len(a) for a in argses), default=0)
        self.args = [
            _intarr([a[j] if j < len(a) else 0 for a in argses])
            for j in range(max_arity)
        ]
        # One metric tick per counted lane, named after the probe the
        # per-packet runtime would have used for the same lookup.
        if runtime.use_index:
            index = runtime._index
            if index is None:
                index = runtime._build_index()
            self.metric = index.metric
        else:
            self.metric = "interp.lookup.scan"

        all_exact = all(k == "exact" for k in runtime.match_kinds) and all(
            all(sp[0] == "exact" for sp in e.matches) for e in entries
        )
        self._runtime = None
        self.rows = None
        if all_exact:
            self.strategy = "exact-sorted"
            self.wide = sum(self.widths) > 63
            first: Dict[int, int] = {}
            for order, entry in enumerate(entries):
                enc = self._fold([sp[1] for sp in entry.matches])
                if enc not in first:
                    first[enc] = order
            self.map = first
            ordered = sorted(first)
            self.keys_sorted = _intarr(ordered) if ordered else None
            self.slots_sorted = _np.array(
                [first[k] for k in ordered], dtype=_np.int64
            )
        elif self.nentries <= VECTOR_SCAN_LIMIT:
            self.strategy = "masked-scan"
            self.has_lpm = runtime._has_lpm
            self.rows = [
                (entry.lpm_length(), order)
                + _compile_checks(entry, runtime.key_widths)
                for order, entry in enumerate(entries)
            ]
        else:
            self.strategy = "per-lane"
            self._runtime = runtime
            self._slot_of = {id(e): order for order, e in enumerate(entries)}

    # -- key encoding (exact strategy) ---------------------------------
    def _fold(self, kv):
        enc = None
        for v, w in zip(kv, self.widths):
            v = _toint(v)
            if self.wide:
                v = _obj(v)
            enc = v if enc is None else ((enc << w) | v)
        return 0 if enc is None else enc

    def lookup(self, kv, n: int):
        """Slot per lane: int64 array, or a plain int when every key is
        uniform across the batch."""
        if self.strategy == "exact-sorted":
            enc = self._fold(kv)
            if not isinstance(enc, _np.ndarray):
                return self.map.get(int(enc), -1)
            if self.keys_sorted is None:
                return _np.full(n, -1, _np.int64)
            if self.wide and enc.dtype != object:
                enc = enc.astype(object)
            pos = _np.minimum(
                _np.searchsorted(self.keys_sorted, enc),
                len(self.keys_sorted) - 1,
            )
            found = self.keys_sorted[pos] == enc
            if found.dtype != _np.bool_:
                found = found.astype(bool)
            return _np.where(found, self.slots_sorted[pos], -1)
        if self.strategy == "masked-scan":
            return self._scan(kv, n)
        return self._per_lane(kv, n)

    def _scan(self, kv, n: int):
        kv = [_toint(v) for v in kv]
        if not any(isinstance(v, _np.ndarray) for v in kv):
            # Uniform keys: the reference scalar scan, verbatim.
            key = tuple(int(v) for v in kv)
            if not self.has_lpm:
                for _plen, order, tchecks, rchecks in self.rows:
                    if _checks_match(key, tchecks, rchecks):
                        return order
                return -1
            best, best_len = -1, -1
            for plen, order, tchecks, rchecks in self.rows:
                if plen > best_len and _checks_match(key, tchecks, rchecks):
                    best, best_len = order, plen
            return best
        slot = _np.full(n, -1, _np.int64)
        if not self.has_lpm:
            unassigned = _np.ones(n, bool)
            for _plen, order, tchecks, rchecks in self.rows:
                c = self._row_match(kv, tchecks, rchecks, n)
                take = unassigned & c
                if take.any():
                    slot[take] = order
                    unassigned &= ~c
                    if not unassigned.any():
                        break
            return slot
        best_len = _np.full(n, -1, _np.int64)
        for plen, order, tchecks, rchecks in self.rows:
            c = self._row_match(kv, tchecks, rchecks, n)
            upd = c & (plen > best_len)
            if upd.any():
                slot[upd] = order
                best_len[upd] = plen
        return slot

    @staticmethod
    def _row_match(kv, tchecks, rchecks, n: int):
        c = None
        for pos, mask, want in tchecks:
            v = kv[pos]
            if isinstance(v, _np.ndarray):
                if mask >= _I63 and v.dtype != object:
                    v = v.astype(object)
                cc = (v & mask) == want
                if cc.dtype != _np.bool_:
                    cc = cc.astype(bool)
            else:
                cc = (int(v) & mask) == want
                if not cc:
                    return _np.zeros(n, bool)
            c = cc if c is None else (c & cc)
        for pos, lo, hi in rchecks:
            v = kv[pos]
            cc = (lo <= v) & (v <= hi)
            if not isinstance(cc, _np.ndarray) and not cc:
                return _np.zeros(n, bool)
            c = cc if c is None else (c & cc)
        if c is None:
            return _np.ones(n, bool)
        if not isinstance(c, _np.ndarray):
            return _np.full(n, bool(c))
        return c

    def _per_lane(self, kv, n: int):
        runtime = self._runtime
        if runtime.use_index:
            index = runtime._index
            if index is None:
                index = runtime._build_index()
            probe = index.lookup
        else:
            probe = runtime._scan_match
        cols = [_aslist(_toint(v), n) for v in kv]
        slot = _np.full(n, -1, _np.int64)
        slot_of = self._slot_of
        for lane in range(n):
            entry = probe(tuple(int(col[lane]) for col in cols))
            if entry is not None:
                slot[lane] = slot_of[id(entry)]
        return slot


# ----------------------------------------------------------------------
# Runtime context + compiled plan
# ----------------------------------------------------------------------


class _Ctx:
    __slots__ = (
        "n", "cols", "bsvld", "slots", "in_port", "out_port",
        "dropped", "exited", "events",
    )


class _VectorPlan:
    """Compiled columnwise program: Stage A (arena load) plus the
    mask-threaded statement closures.  ``step_bound`` is a conservative
    static bound on the per-packet statement count, used to gate batches
    whose step budget could actually kill a lane."""

    __slots__ = (
        "size", "extract_len", "nslots", "consts", "body",
        "step_bound", "perr_slot", "bslen_slot",
    )

    def __init__(self, size, extract_len, nslots, consts, body,
                 step_bound, perr_slot, bslen_slot):
        self.size = size
        self.extract_len = extract_len
        self.nslots = nslots
        self.consts = consts
        self.body = body
        self.step_bound = step_bound
        self.perr_slot = perr_slot
        self.bslen_slot = bslen_slot

    def run(self, datas, ports):
        n = len(datas)
        E, S = self.extract_len, self.size
        cols: List[object] = []
        if E > 0:
            buf = b"".join(
                d if len(d) == E else
                (d[:E] if len(d) > E else d.ljust(E, b"\x00"))
                for d in datas
            )
            arena = _np.frombuffer(buf, _np.uint8).reshape(n, E)
            cols = [arena[:, i].astype(_np.int64) for i in range(E)]
        cols.extend([0] * (S - E))
        lens = _np.fromiter(
            (len(d) if len(d) < E else E for d in datas), _np.int64, count=n
        )
        ctx = _Ctx()
        ctx.n = n
        ctx.cols = cols
        ctx.bsvld = True
        ctx.slots = slots = [None] * self.nslots
        for s, v in self.consts:
            slots[s] = v
        slots[self.bslen_slot] = lens
        ctx.in_port = _np.asarray(ports, dtype=_np.int64)
        ctx.out_port = 0
        ctx.dropped = _np.zeros(n, bool)
        ctx.exited = None
        ctx.events = []
        self.body(ctx, None)
        return ctx, [d[E:] for d in datas]


# ----------------------------------------------------------------------
# The compiler: AST -> mask-threaded closures
# ----------------------------------------------------------------------


class _VectorCompiler:
    """Lowers the composed micro statements to closures ``f(ctx, mask)``.

    Frames mirror ``_SourceGen``'s scope semantics exactly (same-frame
    redeclaration reuses the slot, sibling blocks get fresh slots), so
    slot liveness matches the generated per-lane code.  Values are
    computed for *all* lanes; masks gate stores, events and control
    flow.  Anything the model cannot express raises
    :class:`_Unvectorizable` with a reason, and the whole plan declines.
    """

    _CMP = {"==", "!=", "<", "<=", ">", ">="}

    def __init__(self, composed: ComposedPipeline, tables: Dict[str, TableRuntime],
                 layout) -> None:
        self.composed = composed
        self.tables = tables
        self.layout = layout
        self._frames: List[Dict[str, object]] = []
        self.nslots = 0

    # -- scopes --------------------------------------------------------
    def _push_frame(self) -> None:
        self._frames.append({})

    def _pop_frame(self) -> None:
        self._frames.pop()

    def _define(self, name: str) -> int:
        frame = self._frames[-1]
        ent = frame.get(name)
        if isinstance(ent, int):
            return ent
        if ent is not None:
            raise _Unvectorizable(f"redeclared special name {name!r}")
        slot = self.nslots
        self.nslots += 1
        frame[name] = slot
        return slot

    def _define_special(self, name: str, marker: str) -> None:
        self._frames[-1][name] = marker

    def _find(self, name: str):
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        return None

    # -- entry point ---------------------------------------------------
    def build(self) -> _VectorPlan:
        layout = self.layout
        if not layout.batch_ok:
            raise _Unvectorizable("batch layout unsupported")
        consts: List[Tuple[int, object]] = []
        self._push_frame()
        self._define_special(IM_VAR, "__IM__")
        self._define_special(PKT_VAR, "__PKT__")
        for name, vtype in self.composed.variables.items():
            if name == BS_INSTANCE:
                self._define_special(name, "__BS__")
                continue
            if isinstance(vtype, ast.BitType):
                consts.append((self._define(name), 0))
            elif isinstance(vtype, ast.BoolType):
                consts.append((self._define(name), False))
            elif isinstance(vtype, ast.StructType):
                # Parsed-header structs flatten to one slot per leaf
                # field plus a validity slot per header (fields start 0,
                # headers start invalid — _factory_for semantics).
                desc = self._flatten_struct(vtype, consts)
                self._define_special(name, ("__STRUCT__", desc))
            else:
                raise _Unvectorizable(
                    f"root variable {name!r} of type {type(vtype).__name__}"
                )
        body, steps = self.stmts(self.composed.statements)
        perr = self._find(PARSER_ERR_VAR)
        blen = self._find(BS_LEN_VAR)
        self._pop_frame()
        if not isinstance(perr, int) or not isinstance(blen, int):
            raise _Unvectorizable("missing parser-error/byte-stack variables")
        return _VectorPlan(
            layout.size, layout.extract_len, self.nslots, tuple(consts),
            body, steps, perr, blen,
        )

    # -- flattened structs/headers -------------------------------------
    def _flatten_struct(self, stype, consts) -> Dict[str, tuple]:
        desc: Dict[str, tuple] = {}
        for fname, ftype in stype.fields:
            if isinstance(ftype, ast.HeaderType):
                vslot = self.nslots
                self.nslots += 1
                consts.append((vslot, False))
                fields: Dict[str, Tuple[int, int]] = {}
                for hfname, hftype in ftype.fields:
                    if not isinstance(hftype, ast.BitType):
                        raise _Unvectorizable(
                            f"header field {hfname!r} of "
                            f"{type(hftype).__name__}"
                        )
                    slot = self.nslots
                    self.nslots += 1
                    consts.append((slot, 0))
                    fields[hfname] = (slot, hftype.width)
                desc[fname] = ("hdr", vslot, fields)
            elif isinstance(ftype, ast.BitType):
                slot = self.nslots
                self.nslots += 1
                consts.append((slot, 0))
                desc[fname] = ("val", slot, ftype.width)
            elif isinstance(ftype, ast.BoolType):
                slot = self.nslots
                self.nslots += 1
                consts.append((slot, False))
                desc[fname] = ("val", slot, None)
            elif isinstance(ftype, ast.StructType):
                desc[fname] = ("struct", self._flatten_struct(ftype, consts))
            else:
                raise _Unvectorizable(
                    f"struct field {fname!r} of {type(ftype).__name__}"
                )
        return desc

    def _resolve_member(self, e) -> Optional[tuple]:
        """Compile-time resolution of a member chain rooted at a
        flattened struct variable; ``None`` when the chain is rooted
        elsewhere."""
        if isinstance(e, ast.PathExpr):
            ent = self._find(e.name)
            if isinstance(ent, tuple) and ent[0] == "__STRUCT__":
                return ("struct", ent[1])
            return None
        if isinstance(e, ast.MemberExpr):
            base = self._resolve_member(e.base)
            if base is not None and base[0] == "struct":
                return base[1].get(e.member)
            if base is not None and base[0] == "hdr":
                hit = base[2].get(e.member)
                if hit is not None:
                    return ("val",) + hit
            return None
        return None

    # -- statements ----------------------------------------------------
    def stmts(self, body) -> Tuple[object, int]:
        fns = []
        total = 0
        for s in body:
            fn, st = self.stmt(s)
            if fn is not None:
                fns.append(fn)
            total += st

        def run(ctx, m, _fns=tuple(fns)):
            for f in _fns:
                e = ctx.exited
                if e is None:
                    f(ctx, m)
                else:
                    # A lane that hit exit/return skips everything after.
                    m2 = ~e if m is None else (m & ~e)
                    if m2.any():
                        f(ctx, m2)
        return run, total

    def stmt(self, s) -> Tuple[Optional[object], int]:
        if isinstance(s, ast.BlockStmt):
            self._push_frame()
            fn, st = self.stmts(s.stmts)
            self._pop_frame()
            return fn, st + 1
        if isinstance(s, ast.AssignStmt):
            v, vst = self.expr(s.rhs)
            store, sst = self.store(s.lhs)

            def run(ctx, m, _v=v, _store=store):
                _store(ctx, m, _v(ctx, m))
            return run, vst + sst + 1
        if isinstance(s, ast.VarDeclStmt):
            if s.init is not None:
                v, vst = self.expr(s.init)
                slot = self._define(s.name)

                def run(ctx, m, _v=v, _slot=slot):
                    # Full-width store: the slot is fresh per batch, and
                    # lanes outside the mask never reach a read of it.
                    ctx.slots[_slot] = _v(ctx, m)
                return run, vst + 1
            t = s.var_type
            if isinstance(t, ast.BitType):
                init = 0
            elif isinstance(t, ast.BoolType):
                init = False
            else:
                raise _Unvectorizable(
                    f"declaration of {type(t).__name__} local {s.name!r}"
                )
            slot = self._define(s.name)

            def run(ctx, m, _slot=slot, _init=init):
                ctx.slots[_slot] = _init
            return run, 1
        if isinstance(s, ast.MethodCallStmt):
            v, vst = self.call(s.call)

            def run(ctx, m, _v=v):
                _v(ctx, m)
            return run, vst + 1
        if isinstance(s, ast.IfStmt):
            c, cst = self.expr(s.cond)
            tfn, tst = self.stmt(s.then_body)
            if s.else_body is not None:
                efn, est = self.stmt(s.else_body)
            else:
                efn, est = None, 0

            def run(ctx, m, _c=c, _t=tfn, _e=efn):
                cv = _truthy(_c(ctx, m))
                if not isinstance(cv, _np.ndarray):
                    if cv:
                        if _t is not None:
                            _t(ctx, m)
                    elif _e is not None:
                        _e(ctx, m)
                    return
                tm = cv if m is None else (m & cv)
                em = ~cv if m is None else (m & ~cv)
                t_any = bool(tm.any())
                e_any = bool(em.any())
                if t_any and not e_any:
                    if _t is not None:
                        _t(ctx, m)
                elif e_any and not t_any:
                    if _e is not None:
                        _e(ctx, m)
                else:
                    if t_any and _t is not None:
                        _t(ctx, tm)
                    if e_any and _e is not None:
                        _e(ctx, em)
            return run, cst + 1 + max(tst, est)
        if isinstance(s, ast.SwitchStmt):
            return self._switch(s)
        if isinstance(s, ast.EmptyStmt):
            return None, 1
        if isinstance(s, (ast.ExitStmt, ast.ReturnStmt)):
            def run(ctx, m):
                e = ctx.exited
                if e is None:
                    e = ctx.exited = _np.zeros(ctx.n, bool)
                if m is None:
                    e[:] = True
                else:
                    e |= m
            return run, 1
        raise _Unvectorizable(f"statement {type(s).__name__}")

    def _switch(self, s) -> Tuple[object, int]:
        subj, sst = self.expr(s.subject)
        # Resolve fallthrough statically, like the codegen backend: a
        # match on case i executes the first non-empty body at/after i.
        bodies = [case.body for case in s.cases]
        resolved = [
            next((b for b in bodies[i:] if b is not None), None)
            for i in range(len(bodies))
        ]
        arms = []
        matcher_steps = 0
        arm_bound = 0
        done = False
        for index, case in enumerate(s.cases):
            if done:
                break
            for keyset in case.keysets:
                if isinstance(keyset, ast.DefaultExpr):
                    mfn = None
                else:
                    mfn, mst = self.expr(keyset)
                    matcher_steps += mst
                if resolved[index] is not None:
                    bfn, bst = self.stmt(resolved[index])
                else:
                    bfn, bst = None, 0
                arm_bound = max(arm_bound, bst)
                arms.append((mfn, bfn))
                if mfn is None:
                    # Default arm consumes the rest; later arms are
                    # unreachable in the generated if/elif chain too.
                    done = True
                    break

        def run(ctx, m, _subj=subj, _arms=tuple(arms)):
            t = _subj(ctx, m)
            rem = m
            for mfn, bfn in _arms:
                if mfn is None:
                    if bfn is not None:
                        bfn(ctx, rem)
                    return
                eq = mfn(ctx, rem) == t
                if isinstance(eq, _np.ndarray):
                    if eq.dtype != _np.bool_:
                        eq = eq.astype(bool)
                    am = eq if rem is None else (rem & eq)
                    if am.any() and bfn is not None:
                        bfn(ctx, am)
                    rem = ~eq if rem is None else (rem & ~eq)
                    if not rem.any():
                        return
                elif eq:
                    if bfn is not None:
                        bfn(ctx, rem)
                    return
        return run, sst + matcher_steps + 1 + arm_bound

    # -- stores --------------------------------------------------------
    def store(self, lhs) -> Tuple[object, int]:
        if isinstance(lhs, ast.PathExpr):
            ent = self._find(lhs.name)
            if not isinstance(ent, int):
                raise _Unvectorizable(f"assignment to {lhs.name!r}")
            if isinstance(lhs.type, ast.BitType):
                fm = _masker(lhs.type.width)

                def run(ctx, m, v, _slot=ent, _fm=fm):
                    v = _fm(v)
                    old = ctx.slots[_slot]
                    ctx.slots[_slot] = v if m is None else _np.where(m, v, old)
            else:
                def run(ctx, m, v, _slot=ent):
                    old = ctx.slots[_slot]
                    ctx.slots[_slot] = v if m is None else _np.where(m, v, old)
            return run, 0
        if isinstance(lhs, ast.MemberExpr):
            base = lhs.base
            if not (isinstance(base, ast.PathExpr)
                    and self._find(base.name) == "__BS__"):
                ent = self._resolve_member(lhs)
                if ent is None or ent[0] != "val":
                    raise _Unvectorizable(
                        f"store to member of {type(base).__name__}"
                    )
                slot = ent[1]
                width = ent[2]
                if width is not None:
                    fm = _masker(width)

                    def run(ctx, m, v, _slot=slot, _fm=fm):
                        v = _fm(v)
                        old = ctx.slots[_slot]
                        ctx.slots[_slot] = (
                            v if m is None else _np.where(m, v, old)
                        )
                else:
                    def run(ctx, m, v, _slot=slot):
                        old = ctx.slots[_slot]
                        ctx.slots[_slot] = (
                            v if m is None else _np.where(m, v, old)
                        )
                return run, 0
            cell = int(lhs.member[1:])
            width = lhs.type.width if isinstance(lhs.type, ast.BitType) else 8
            fm = _masker(width)

            def run(ctx, m, v, _i=cell, _fm=fm):
                v = _fm(v)
                old = ctx.cols[_i]
                ctx.cols[_i] = v if m is None else _np.where(m, v, old)
            return run, 0
        if isinstance(lhs, ast.SliceExpr):
            width = lhs.hi - lhs.lo + 1
            smask = (1 << width) - 1
            keep = ~(smask << lhs.lo)
            lo = lhs.lo
            big = lhs.hi > 62  # (smask << lo) must fit int64 otherwise
            base_read, bst = self.expr(lhs.base)
            base_store, sst = self.store(lhs.base)

            def run(ctx, m, v, _r=base_read, _s=base_store, _keep=keep,
                    _smask=smask, _lo=lo, _big=big):
                cur = _toint(_r(ctx, m))
                vi = _toint(v)
                if _big:
                    cur = _obj(cur)
                    vi = _obj(vi)
                merged = (cur & _keep) | ((vi & _smask) << _lo)
                _s(ctx, m, merged)
            return run, bst + sst
        raise _Unvectorizable(f"lvalue {type(lhs).__name__}")

    # -- expressions ---------------------------------------------------
    def expr(self, e) -> Tuple[object, int]:
        if isinstance(e, ast.IntLit):
            v = e.value
            return (lambda ctx, m, _v=v: _v), 0
        if isinstance(e, ast.BoolLit):
            v = e.value
            return (lambda ctx, m, _v=v: _v), 0
        if isinstance(e, ast.PathExpr):
            decl = getattr(e, "decl", None)
            if isinstance(decl, Symbol) and decl.kind == "const":
                v = decl.value
                if isinstance(v, bool) or isinstance(v, int):
                    return (lambda ctx, m, _v=v: _v), 0
                raise _Unvectorizable(
                    f"const {e.name!r} of {type(v).__name__}"
                )
            ent = self._find(e.name)
            if not isinstance(ent, int):
                raise _Unvectorizable(f"read of {e.name!r}")
            return (lambda ctx, m, _s=ent: ctx.slots[_s]), 0
        if isinstance(e, ast.MemberExpr):
            base = e.base
            if isinstance(base, ast.PathExpr):
                decl = getattr(base, "decl", None)
                if (isinstance(decl, Symbol) and decl.kind == "type"
                        and isinstance(decl.type, ast.EnumType)):
                    raise _Unvectorizable("enum member value")
                if self._find(base.name) == "__BS__":
                    cell = int(e.member[1:])
                    return (lambda ctx, m, _i=cell: ctx.cols[_i]), 0
            ent = self._resolve_member(e)
            if ent is not None and ent[0] == "val":
                return (lambda ctx, m, _s=ent[1]: ctx.slots[_s]), 0
            raise _Unvectorizable(f"member of {type(base).__name__}")
        if isinstance(e, ast.SliceExpr):
            b, bst = self.expr(e.base)
            fm = _masker(e.hi - e.lo + 1)
            lo = e.lo

            def fn(ctx, m, _b=b, _fm=fm, _lo=lo):
                return _fm(_toint(_b(ctx, m)) >> _lo)
            return fn, bst
        if isinstance(e, ast.CastExpr):
            if isinstance(e.target, ast.BitType):
                o, ost = self.expr(e.operand)
                fm = _masker(e.target.width)
                return (lambda ctx, m, _o=o, _fm=fm: _fm(_o(ctx, m))), ost
            if isinstance(e.target, ast.BoolType):
                o, ost = self.expr(e.operand)
                return (lambda ctx, m, _o=o: _truthy(_o(ctx, m))), ost
            raise _Unvectorizable(f"cast to {e.target}")
        if isinstance(e, ast.UnaryExpr):
            return self._unary(e)
        if isinstance(e, ast.BinaryExpr):
            return self._binary(e)
        if isinstance(e, ast.MethodCallExpr):
            return self.call(e)
        raise _Unvectorizable(f"expression {type(e).__name__}")

    def _unary(self, e) -> Tuple[object, int]:
        if e.op == "!":
            o, ost = self.expr(e.operand)

            def fn(ctx, m, _o=o):
                v = _truthy(_o(ctx, m))
                return (~v) if isinstance(v, _np.ndarray) else (not v)
            return fn, ost
        t = e.type if e.type else e.operand.type
        if not isinstance(t, ast.BitType):
            raise _Unvectorizable(f"unary {e.op!r} on {t}")
        w = t.width
        mask = (1 << w) - 1
        wide = w > 62  # ~/- produce negatives; & needs headroom
        o, ost = self.expr(e.operand)
        if e.op == "~":
            def fn(ctx, m, _o=o, _mask=mask, _wide=wide):
                v = _toint(_o(ctx, m))
                if _wide:
                    v = _obj(v)
                return (~v) & _mask
            return fn, ost
        if e.op == "-":
            def fn(ctx, m, _o=o, _mask=mask, _wide=wide):
                v = _toint(_o(ctx, m))
                if _wide:
                    v = _obj(v)
                return (-v) & _mask
            return fn, ost
        raise _Unvectorizable(f"unary op {e.op!r}")

    def _binary(self, e) -> Tuple[object, int]:
        op = e.op
        l, lst = self.expr(e.left)
        if op in ("&&", "||"):
            r, rst = self.expr(e.right)
            is_and = op == "&&"

            def fn(ctx, m, _l=l, _r=r, _and=is_and):
                lv = _truthy(_l(ctx, m))
                if not isinstance(lv, _np.ndarray):
                    # Uniform left side: Python short-circuit, like the
                    # generated ``bool(l) and bool(r)``.
                    if _and != bool(lv):
                        return lv
                    return _truthy(_r(ctx, m))
                # The right side runs only for lanes the per-packet code
                # would evaluate it in, so its events stay masked.
                rm = _mand(m, lv if _and else ~lv)
                if not _many(rm):
                    return lv
                rv = _truthy(_r(ctx, rm))
                return (lv & rv) if _and else (lv | rv)
            return fn, lst + rst
        r, rst = self.expr(e.right)
        st = lst + rst
        if op in self._CMP:
            import operator as _op_mod
            cmp = {
                "==": _op_mod.eq, "!=": _op_mod.ne, "<": _op_mod.lt,
                "<=": _op_mod.le, ">": _op_mod.gt, ">=": _op_mod.ge,
            }[op]

            def fn(ctx, m, _l=l, _r=r, _c=cmp):
                return _c(_l(ctx, m), _r(ctx, m))
            return fn, st
        if op == "++":
            rt = e.right.type
            if not isinstance(rt, ast.BitType):
                raise _Unvectorizable("concat operand without bit width")
            rw = rt.width
            wide = not (isinstance(e.type, ast.BitType) and e.type.width <= 62)

            def fn(ctx, m, _l=l, _r=r, _rw=rw, _wide=wide):
                lv = _toint(_l(ctx, m))
                rv = _toint(_r(ctx, m))
                if _wide:
                    lv = _obj(lv)
                return (lv << _rw) | rv
            return fn, st
        if op in ("&", "|", "^", ">>"):
            import operator as _op_mod
            bop = {
                "&": _op_mod.and_, "|": _op_mod.or_,
                "^": _op_mod.xor, ">>": _op_mod.rshift,
            }[op]

            def fn(ctx, m, _l=l, _r=r, _b=bop):
                return _b(_toint(_l(ctx, m)), _toint(_r(ctx, m)))
            return fn, st
        if not isinstance(e.type, ast.BitType):
            raise _Unvectorizable(f"result of {op!r} without bit width")
        w = e.type.width
        fm = _masker(w)
        if op in ("+", "-", "*", "<<"):
            # Promote to object wherever int64 could overflow before the
            # mask is applied; operands of these ops carry the result's
            # width in typechecked µP4.
            if op in ("+", "-"):
                wide = w > 62
            elif op == "*":
                wide = 2 * w > 62
            else:  # <<
                wide = (
                    w > 62
                    or not isinstance(e.right, ast.IntLit)
                    or w + e.right.value > 62
                )
            import operator as _op_mod
            aop = {
                "+": _op_mod.add, "-": _op_mod.sub,
                "*": _op_mod.mul, "<<": _op_mod.lshift,
            }[op]

            def fn(ctx, m, _l=l, _r=r, _a=aop, _fm=fm, _wide=wide):
                lv = _toint(_l(ctx, m))
                rv = _toint(_r(ctx, m))
                if _wide:
                    lv = _obj(lv)
                    rv = _obj(rv)
                return _fm(_a(lv, rv))
            return fn, st
        if op in ("/", "%"):
            wide = w > 63
            is_div = op == "/"
            text = ("division by zero in dataplane expression" if is_div
                    else "modulo by zero in dataplane expression")
            make = _mk_terr(text)

            def fn(ctx, m, _l=l, _r=r, _fm=fm, _wide=wide, _div=is_div,
                   _make=make):
                lv = _toint(_l(ctx, m))
                rv = _toint(_r(ctx, m))
                if isinstance(rv, _np.ndarray):
                    z = rv == 0
                    if z.dtype != _np.bool_:
                        z = z.astype(bool)
                    zm = z if m is None else (m & z)
                    if zm.any():
                        ctx.events.append((zm, "E", _make))
                    safe = _np.where(z, 1, rv)
                elif rv == 0:
                    if _many(m):
                        ctx.events.append((m, "E", _make))
                    safe = 1
                else:
                    safe = rv
                if _wide:
                    lv = _obj(lv)
                    safe = _obj(safe)
                return _fm(lv // safe if _div else lv % safe)
            return fn, st
        raise _Unvectorizable(f"binary op {op!r}")

    # -- calls ---------------------------------------------------------
    def call(self, c) -> Tuple[object, int]:
        resolved = getattr(c, "resolved", None)
        if resolved is None:
            raise _Unvectorizable("unresolved call")
        kind = resolved[0]
        if kind == "header_op":
            return self._header_op(c, resolved[1])
        if kind == "table":
            return self._table_apply(resolved[1])
        if kind == "action":
            return self._action_call(c, resolved[1])
        if kind == "extern":
            return self._extern(c, resolved[1], resolved[2])
        raise _Unvectorizable(f"call kind {kind!r}")

    def _header_op(self, c, op: str) -> Tuple[object, int]:
        target = c.target
        base = target.base
        if (isinstance(base, ast.PathExpr)
                and self._find(base.name) == "__BS__"):
            if op == "isValid":
                return (lambda ctx, m: ctx.bsvld), 0
            if op in ("setValid", "setInvalid"):
                val = op == "setValid"

                def fn(ctx, m, _v=val):
                    if m is None:
                        ctx.bsvld = _v
                    else:
                        cur = ctx.bsvld
                        if not isinstance(cur, _np.ndarray):
                            cur = _np.full(ctx.n, cur)
                        ctx.bsvld = _np.where(m, _v, cur)
                    return None
                return fn, 0
            raise _Unvectorizable(f"header op {op!r}")
        ent = self._resolve_member(base)
        if ent is None or ent[0] != "hdr":
            raise _Unvectorizable(f"header op on {type(base).__name__}")
        vslot = ent[1]
        if op == "isValid":
            return (lambda ctx, m, _s=vslot: ctx.slots[_s]), 0
        if op in ("setValid", "setInvalid"):
            val = op == "setValid"

            def fn(ctx, m, _s=vslot, _v=val):
                if m is None:
                    ctx.slots[_s] = _v
                else:
                    old = ctx.slots[_s]
                    ctx.slots[_s] = _np.where(m, _v, old)
                return None
            return fn, 0
        raise _Unvectorizable(f"header op {op!r}")

    def _action_call(self, c, adecl) -> Tuple[object, int]:
        if len(c.args) != len(adecl.params):
            raise _Unvectorizable(
                f"action {adecl.name!r} arity mismatch"
            )
        vals = [self.expr(a) for a in c.args]
        self._push_frame()
        slots = [self._define(p.name) for p in adecl.params]
        body, bst = self.stmts(adecl.body.stmts)
        self._pop_frame()

        def fn(ctx, m, _vals=tuple(v for v, _ in vals),
               _slots=tuple(slots), _body=body):
            for vf, slot in zip(_vals, _slots):
                ctx.slots[slot] = vf(ctx, m)
            _body(ctx, m)
            return None
        return fn, sum(s for _, s in vals) + bst

    def _extern(self, c, extern: str, method: str) -> Tuple[object, int]:
        if extern != "im_t":
            raise _Unvectorizable(f"extern {extern!r}")
        target = c.target
        base = target.base
        if not (isinstance(base, ast.PathExpr)
                and self._find(base.name) == "__IM__"):
            raise _Unvectorizable("im_t call on a non-metadata value")
        if method not in _IM_FAST or len(c.args) > 1 or (
                method == "set_out_port") != (len(c.args) == 1):
            raise _Unvectorizable(f"im_t method {method!r}")
        fmsg = f"injected fault in extern {extern!r}.{method}"
        site = f"extern:{extern}"
        fev = ("F", "extern", "im_t", fmsg, site)
        if method == "set_out_port":
            a, ast_ = self.expr(c.args[0])

            def fn(ctx, m, _a=a, _f=fev):
                if _many(m):
                    ctx.events.append((m,) + _f)
                v = _toint(_a(ctx, m))
                ctx.out_port = v if m is None else _np.where(m, v, ctx.out_port)
                dm = _mand(m, v == 255)
                if dm is None:
                    ctx.dropped[:] = True
                elif dm is not False:
                    ctx.dropped |= dm
                return None
            return fn, ast_
        if method == "drop":
            def fn(ctx, m, _f=fev):
                if _many(m):
                    ctx.events.append((m,) + _f)
                if m is None:
                    ctx.dropped[:] = True
                else:
                    ctx.dropped |= m
                return None
            return fn, 0
        attr = "out_port" if method == "get_out_port" else "in_port"

        def fn(ctx, m, _f=fev, _attr=attr):
            if _many(m):
                ctx.events.append((m,) + _f)
            return ctx.in_port if _attr == "in_port" else ctx.out_port
        return fn, 0

    def _table_apply(self, decl) -> Tuple[object, int]:
        runtime = self.tables.get(decl.name)
        if runtime is None:
            raise _Unvectorizable(f"table {decl.name!r} without runtime")
        name = runtime.name
        key_fns = [self.expr(k) for k in runtime.key_exprs]
        arms = []
        arm_index: Dict[str, Tuple[int, int]] = {}
        arm_bound = 0
        for ai, (aname, adecl) in enumerate(self.composed.actions.items()):
            self._push_frame()
            slots = tuple(self._define(p.name) for p in adecl.params)
            body, bst = self.stmts(adecl.body.stmts)
            self._pop_frame()
            arms.append((slots, body))
            arm_index[aname] = (ai, len(adecl.params))
            arm_bound = max(arm_bound, bst)
        fmsg = f"injected lookup failure in table {name!r}"
        site = f"table:{name}"
        cache: List[Optional[_VecIndex]] = [None]

        def fn(ctx, m, _keys=tuple(k for k, _ in key_fns), _rt=runtime,
               _arms=tuple(arms), _ai=arm_index, _cache=cache,
               _name=name, _fmsg=fmsg, _site=site):
            if _many(m):
                ctx.events.append((m, "F", "table", _name, _fmsg, _site))
            kv = [kf(ctx, m) for kf in _keys]
            vi = _cache[0]
            if vi is None or vi.version != _rt.version:
                vi = _VecIndex(_rt, _ai)
                _cache[0] = vi
            slot = vi.lookup(kv, ctx.n)
            scalar = not isinstance(slot, _np.ndarray)
            hit = slot >= 0
            if _many(m):
                ctx.events.append((m, "T", vi, slot, hit))
            for bad_slot, make in vi.bad:
                bm = _mand(m, slot == bad_slot)
                if _many(bm):
                    ctx.events.append((bm, "E", make))
            if scalar:
                ai = int(vi.aidx[slot])
                if ai >= 0:
                    slots, body = _arms[ai]
                    for j, ps in enumerate(slots):
                        arg = vi.args[j][slot]
                        ctx.slots[ps] = (
                            arg if isinstance(arg, int) else int(arg)
                        )
                    body(ctx, m)
            else:
                av = vi.aidx[slot]
                for ai in vi.used:
                    am = _mand(m, av == ai)
                    if _many(am):
                        slots, body = _arms[ai]
                        for j, ps in enumerate(slots):
                            # Gathered for all lanes; reads are masked to
                            # this arm's lanes, so stray rows are inert.
                            ctx.slots[ps] = vi.args[j][slot]
                        body(ctx, am)
            return hit
        return fn, sum(s for _, s in key_fns) + arm_bound


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


class VectorPipeline(CodegenPipeline):
    """``--exec vector``: codegen per-packet semantics, columnwise batch.

    Subclasses :class:`CodegenPipeline`, so per-packet ``process`` /
    ``process_traced`` (and with them the whole differential suite) are
    literally the codegen backend.  Only ``process_soa`` is replaced:
    when the build-time plan exists and the step budget cannot fire, the
    batch runs columnwise with divergence splitting; otherwise it falls
    back to the inherited per-lane batch body.
    """

    backend = "vector"

    def __init__(
        self,
        composed: ComposedPipeline,
        use_table_index: bool = True,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if _np is None:
            err = TargetError(
                "exec backend 'vector' requires numpy; install the "
                "optional extra (pip install .[vector]) or pick another "
                "backend"
            )
            err.code = "vector-unavailable"
            raise err
        super().__init__(
            composed, use_table_index=use_table_index,
            guards=guards, faults=faults,
        )
        self.vector_plan: Optional[_VectorPlan] = None
        self.vector_decline_reason: Optional[str] = None
        if self.batch_supported:
            try:
                self.vector_plan = _VectorCompiler(
                    composed, self.tables, self.soa_layout
                ).build()
            except _Unvectorizable as exc:
                self.vector_decline_reason = exc.reason
        else:
            self.vector_decline_reason = "batch layout unsupported"
        if METRICS.enabled:
            METRICS.inc(
                "vector.plan_built" if self.vector_plan is not None
                else "vector.plan_declined"
            )

    def process_soa(self, datas, ports, pkts):
        plan = self.vector_plan
        if plan is None or plan.step_bound > self.step_limit:
            if METRICS.enabled:
                METRICS.inc("vector.soa_fallback_batches")
            return super().process_soa(datas, ports, pkts)
        n = len(datas)
        if n == 0:
            return []
        metrics_on = METRICS.enabled
        try:
            # Speculation is pure: no RNG draws, no trace/counter writes.
            # If it blows up (a lowering bug), replaying through the
            # per-lane batch body is still bit-exact.
            ctx, pays = plan.run(datas, ports)
            S = plan.size
            dropped = ctx.dropped
            perr = ctx.slots[plan.perr_slot]
            pe = _mand(None, perr == 1)
            if pe is None:
                drop = _np.ones(n, bool)
            elif pe is False:
                drop = dropped.copy()
            else:
                drop = dropped | pe
            out_len = ctx.slots[plan.bslen_slot]
            oob = _mand(None, (out_len > S) | (out_len < 0)
                        if isinstance(out_len, _np.ndarray)
                        else (out_len > S or out_len < 0))
            obm = False if oob is False else (
                (~drop) if oob is None else (oob & ~drop)
            )
            if _many(obm):
                ol_list = _aslist(out_len, n)

                def _mk_oob(lane, _ol=ol_list, _S=S):
                    return FaultError(
                        "bytestack-bounds",
                        "byte-stack length %d outside stack size %d"
                        % (_ol[lane], _S),
                    )
                ctx.events.append((obm, "E", _mk_oob))
        except Exception:
            if metrics_on:
                METRICS.inc("vector.soa_errors")
            return super().process_soa(datas, ports, pkts)

        if metrics_on:
            METRICS.inc(self._m_packets, n)
            self._lat_tick += n
        self.last_drop_reason = None
        self._hits_out = 0
        self._misses_out = 0
        kill = self._resolve_events(ctx.events, n)
        self._commit_bookkeeping(ctx.events, kill, n, metrics_on)
        if metrics_on:
            if self._hits_out:
                METRICS.inc(self._m_hits, self._hits_out)
            if self._misses_out:
                METRICS.inc(self._m_misses, self._misses_out)
            if kill:
                METRICS.inc("vector.split_lanes", len(kill))

        # Stage C: deparse everything columnwise, slice per lane.
        mat = _np.zeros((n, S), _np.uint8)
        for i, col in enumerate(ctx.cols):
            if isinstance(col, _np.ndarray):
                mat[:, i] = col
            elif col:
                mat[:, i] = col
        buf = mat.tobytes()
        drop_list = drop.tolist()
        pe_list = _aslist(False if pe is False else (
            _np.ones(n, bool) if pe is None else pe), n)
        port_list = _aslist(ctx.out_port, n)
        ol_list = _aslist(out_len, n)
        results: List[tuple] = [None] * n
        for lane in range(n):
            k = kill.get(lane) if kill else None
            if k is not None:
                results[lane] = (None, None, k[1])
            elif drop_list[lane]:
                reason = "parser-error" if pe_list[lane] else "pipeline-drop"
                results[lane] = ([], reason, None)
            else:
                start = lane * S
                ob = buf[start:start + ol_list[lane]] + pays[lane]
                results[lane] = (
                    [PacketOut(Packet(ob), port_list[lane], 0,
                               recirculate=False)],
                    None, None,
                )
        return results

    # -- divergence resolution -----------------------------------------
    def _resolve_events(self, events, n: int):
        """Lane-major walk over fault/error events, drawing from the
        per-site RNG streams in exactly the per-packet order.  Returns
        ``{lane: (event_ordinal, exc)}`` for lanes that die."""
        faults = self.faults
        cand = []
        for ordinal, ev in enumerate(events):
            kind = ev[1]
            if kind == "T":
                continue
            if kind == "F":
                # Sites that cannot draw never touch the RNG per packet
                # either (trip() returns before sampling), so they are
                # exact to skip.
                if faults is None:
                    continue
                site = faults._site_for(ev[2], ev[3])
                if site is None or faults.sites.get(site, 0.0) <= 0.0:
                    continue
            m = ev[0]
            ml = None if m is None else m.tolist()
            cand.append((ordinal, ml, kind, ev))
        if not cand:
            return {}
        kill: Dict[int, tuple] = {}
        trip = faults.trip if faults is not None else None
        for lane in range(n):
            for ordinal, ml, kind, ev in cand:
                if ml is not None and not ml[lane]:
                    continue
                if kind == "E":
                    kill[lane] = (ordinal, ev[2](lane))
                    break
                if trip(ev[2], ev[3]):
                    kill[lane] = (
                        ordinal,
                        FaultError("extern-fault", ev[4], site=ev[5]),
                    )
                    break
        return kill

    def _commit_bookkeeping(self, events, kill, n: int, metrics_on: bool):
        """Replay table bookkeeping lane-major: trace strings, hit/miss
        tallies and lookup metrics, stopping at each lane's kill
        ordinal — identical to per-lane execution order."""
        tev = []
        for ordinal, ev in enumerate(events):
            if ev[1] != "T":
                continue
            m, _k, vi, slot, hit = ev
            ml = None if m is None else m.tolist()
            if isinstance(slot, _np.ndarray):
                strs = vi.strs
                lane_strs = [strs[s] for s in slot.tolist()]
                const_str = None
                hits_l = hit.tolist()
            else:
                lane_strs = None
                const_str = vi.strs[slot]
                hits_l = bool(hit)
            tev.append((ordinal, ml, vi, lane_strs, const_str, hits_l))
        if not tev:
            return
        ap = self.table_trace.append
        hits = misses = 0
        counted = [0] * len(tev)
        if not kill and all(t[1] is None for t in tev):
            # Fast path: every lane sees every lookup.
            for idx, (_o, _m, _vi, lane_strs, const_str, hits_l) in enumerate(tev):
                counted[idx] = n
                if lane_strs is None:
                    h = n if hits_l else 0
                else:
                    h = sum(hits_l)
                hits += h
                misses += n - h
            for lane in range(n):
                for _o, _m, _vi, lane_strs, const_str, _h in tev:
                    ap(const_str if lane_strs is None else lane_strs[lane])
        else:
            for lane in range(n):
                k = kill.get(lane) if kill else None
                ko = k[0] if k is not None else _HUGE
                for idx, (ordinal, ml, _vi, lane_strs, const_str, hits_l) in (
                        enumerate(tev)):
                    if ordinal >= ko:
                        break
                    if ml is not None and not ml[lane]:
                        continue
                    ap(const_str if lane_strs is None else lane_strs[lane])
                    counted[idx] += 1
                    h = hits_l if lane_strs is None else hits_l[lane]
                    if h:
                        hits += 1
                    else:
                        misses += 1
        self._hits_out = hits
        self._misses_out = misses
        if metrics_on:
            for idx, (_o, _m, vi, _ls, _cs, _h) in enumerate(tev):
                if counted[idx]:
                    METRICS.inc(vi.metric, counted[idx])
