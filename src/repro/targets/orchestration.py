"""Runtime execution of Orchestration pipelines (paper §4.1, §5.4).

An orchestration pipeline processes different copies of a packet in
different ways: it manipulates ``pkt`` instances (``copy_from``),
invokes Unicast modules on them, and enqueues results into an
``out_buf``.  The midend's slicing pass (§5.4) plans how a target would
schedule the per-instance threads; this module *executes* the program
in the behavioral target:

* every callee module is compiled standalone into its own
  :class:`~repro.targets.pipeline.PipelineInstance`, with its user
  parameters bound to synthetic argument variables,
* a module ``apply`` at orchestration level runs the callee pipeline on
  the instance's current bytes and writes the (possibly resized) result
  back — the logical input/output buffers of Fig. 3 in action,
* ``out_buf.enqueue`` snapshots the packet and its intrinsic metadata;
  dropped packets are not enqueued (Fig. 3's footnote).

The per-module control APIs are exposed under the instance name, so the
control plane can program ``prog_i``'s tables and ``test_i``'s tables
independently — µP4's per-module control interface (Fig. 4a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError, TargetError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Module
from repro.midend.inline import IM_VAR, compose
from repro.midend.linker import LinkedProgram, LinkedUnit, link_modules
from repro.midend.slicing import ReplicationPlan, plan_replication
from repro.net.packet import Packet
from repro.targets.faults import (
    FaultError,
    FaultPlan,
    ResourceGuards,
    Verdict,
)
from repro.targets.interpreter import (
    Env,
    ExitSignal,
    ImState,
    Interpreter,
    PktObject,
    ReturnSignal,
    default_value,
)
from repro.targets.pipeline import PacketOut, PipelineInstance
from repro.targets.runtime_api import RuntimeAPI


class OutBufState:
    """The ``out_buf`` logical extern: collects (packet, im) pairs.

    ``capacity`` bounds the buffer (``ResourceGuards.max_out_buf``);
    enqueueing past it raises ``FaultError("buffer-exhausted")``, a
    bounded failure the containment boundary converts to a drop.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.items: List[PacketOut] = []
        self.capacity = capacity

    def call(self, method: str, args: List[object]) -> object:
        if method == "enqueue":
            pkt_obj, im = args[0], args[1]
            if not isinstance(pkt_obj, PktObject) or not isinstance(im, ImState):
                raise TargetError("out_buf.enqueue needs (pkt, im_t) arguments")
            if im.dropped:
                return None  # dropped packets are not inserted (Fig. 3)
            if self.capacity is not None and len(self.items) >= self.capacity:
                raise FaultError(
                    "buffer-exhausted",
                    f"out_buf capacity {self.capacity} exceeded",
                )
            self.items.append(
                PacketOut(pkt_obj.packet.copy(), im.out_port, im.mcast_grp)
            )
            return None
        if method == "merge":
            other = args[0]
            if isinstance(other, OutBufState):
                self.items.extend(other.items)
            return None
        if method == "to_in_buf":
            return None  # nested orchestration: buffers share storage here
        raise TargetError(f"out_buf has no method {method!r}")


class ModuleRunner:
    """A standalone-compiled Unicast module, invocable at runtime."""

    def __init__(self, unit: LinkedUnit, linked: LinkedProgram) -> None:
        sub = LinkedProgram(main=unit, providers=linked.providers)
        self.composed = compose(sub)
        self.instance = PipelineInstance(self.composed)
        self.api = RuntimeAPI(self.instance)
        self.user_params = unit.program.user_params

    def invoke(
        self, pkt_obj: PktObject, im: ImState, in_values: Dict[str, object]
    ) -> Dict[str, object]:
        """Run the module over the instance's bytes; returns out-args."""
        presets = {
            self.composed.arg_vars[name]: value
            for name, value in in_values.items()
        }
        outs, env = self.instance.process_with(
            pkt_obj.packet.copy(), im=im, presets=presets
        )
        if outs:
            pkt_obj.packet.copy_from(outs[0].packet)
        # A drop inside the module leaves im.dropped set; the packet
        # bytes stay as-is (the buffer model discards at enqueue time).
        out_values: Dict[str, object] = {}
        for param in self.user_params:
            if param.direction in ("out", "inout"):
                out_values[param.name] = env.get(self.composed.arg_vars[param.name])
        return out_values


@dataclass
class OrchestrationResult:
    outputs: List[PacketOut]
    plan: ReplicationPlan
    # Set when a contained fault emptied the outputs (strict=False).
    verdict: Optional[Verdict] = None


class OrchestrationRunner:
    """Executes an Orchestration main program over real packets.

    ``guards``/``faults`` are threaded into the orchestration-level
    interpreter and every standalone module runner.  With
    ``strict=False`` a per-packet fault is contained: ``process``
    returns an empty result whose ``verdict`` carries the reason code
    instead of raising.
    """

    def __init__(
        self,
        main: Module,
        libraries: Optional[List[Module]] = None,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
        strict: bool = True,
    ) -> None:
        linked = link_modules(main, libraries or [])
        info = linked.main.program
        if info.interface != "Orchestration":
            raise TargetError(
                f"program {info.name!r} implements {info.interface}; "
                f"OrchestrationRunner needs an Orchestration program"
            )
        self.linked = linked
        self.info = info
        self.control = info.control
        self.plan = plan_replication(info.control)
        self.guards = guards or ResourceGuards()
        self.faults = faults
        self.strict = strict
        # One standalone runner per module instance.
        self.runners: Dict[str, ModuleRunner] = {}
        for inst_name, inst in info.instances.items():
            unit = linked.resolve(inst.target)
            runner = ModuleRunner(unit, linked)
            runner.instance.configure_faults(guards=self.guards, faults=faults)
            self.runners[inst_name] = runner
        self.interp = Interpreter({}, {})
        self.interp.step_limit = self.guards.interp_step_budget
        self.interp.faults = faults
        self.interp.module_hook = self._invoke_module  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def api(self, instance_name: str) -> RuntimeAPI:
        """Control API of one module instance (per-module, Fig. 4a)."""
        try:
            return self.runners[instance_name].api
        except KeyError:
            raise TargetError(
                f"no module instance {instance_name!r}; have: "
                f"{', '.join(self.runners)}"
            ) from None

    # ------------------------------------------------------------------
    def process(self, packet: Packet, in_port: int = 0) -> OrchestrationResult:
        env = Env()
        self.interp.steps = 0
        out_bufs: List[OutBufState] = []
        im = ImState(in_port=in_port, pkt_len=len(packet))
        for param in self.control.params:
            ptype = param.param_type
            if isinstance(ptype, ast.ExternType):
                if ptype.name == "pkt":
                    env.define(param.name, PktObject(packet.copy()))
                elif ptype.name == "im_t":
                    env.define(param.name, im)
                elif ptype.name == "out_buf":
                    buf = OutBufState(capacity=self.guards.max_out_buf)
                    out_bufs.append(buf)
                    env.define(param.name, buf)
                elif ptype.name == "in_buf":
                    env.define(param.name, None)
                else:
                    env.define(param.name, default_value(ptype))
            else:
                env.define(param.name, default_value(ptype))
        env.define(IM_VAR, im)
        for local in self.control.locals:
            if isinstance(local, ast.VarLocal):
                vtype = local.var_type
                if isinstance(vtype, ast.ExternType) and vtype.name == "pkt":
                    env.define(local.name, PktObject(Packet()))
                elif isinstance(vtype, ast.ExternType) and vtype.name == "im_t":
                    env.define(local.name, ImState(in_port=in_port))
                else:
                    env.define(local.name, default_value(vtype))
        verdict: Optional[Verdict] = None
        try:
            self.interp.exec_block(self.control.apply_body.stmts, env)
        except (ExitSignal, ReturnSignal):
            pass
        except ReproError as exc:
            if self.strict:
                raise
            reason = exc.reason if isinstance(exc, FaultError) else "internal"
            verdict = Verdict(
                outputs=[],
                reasons={reason: 1},
                units=1,
                killed=True,
                error=f"{type(exc).__name__}: {exc}",
            )
        if verdict is not None:
            return OrchestrationResult(outputs=[], plan=self.plan, verdict=verdict)
        outputs: List[PacketOut] = []
        for buf in out_bufs:
            outputs.extend(buf.items)
        return OrchestrationResult(outputs=outputs, plan=self.plan)

    # ------------------------------------------------------------------
    def _invoke_module(self, call: ast.MethodCallExpr, env: Env):
        inst: ast.InstanceDecl = call.resolved[1]  # type: ignore[attr-defined]
        runner = self.runners.get(inst.name) or self.runners.get(
            getattr(inst, "original_name", inst.name)
        )
        if runner is None:
            raise TargetError(f"no runner for module instance {inst.name!r}")
        pkt_obj = self.interp.eval(call.args[0], env)
        im = self.interp.eval(call.args[1], env)
        if not isinstance(pkt_obj, PktObject) or not isinstance(im, ImState):
            raise TargetError("module apply needs (pkt, im_t) leading args")
        params = runner.user_params
        in_values: Dict[str, object] = {}
        for arg, param in zip(call.args[2:], params):
            if param.direction in ("in", "inout", ""):
                in_values[param.name] = self.interp.eval(arg, env)
        out_values = runner.invoke(pkt_obj, im, in_values)
        for arg, param in zip(call.args[2:], params):
            if param.direction in ("out", "inout"):
                self.interp.assign(arg, out_values[param.name], env)
        return None
