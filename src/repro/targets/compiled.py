"""Closure-compiled execution backend for composed pipelines.

The interpreter (:mod:`repro.targets.interpreter`) re-walks the annotated
AST for every packet: each statement re-dispatches on node type, each
name re-resolves through the ``Env`` chain, and each expression re-reads
its width annotations.  µP4C's whole argument is that composition work
belongs at compile time — this module extends that to *execution*: a
:class:`CompiledPipeline` translates the composed program **once** into
nested pre-bound Python closures, so per-packet work is straight calls
over a flat register file.

Build-time specialization (all resolved before the first packet):

* **AST dispatch** — every statement/expression node becomes a dedicated
  closure; no ``isinstance`` chains at runtime.
* **Name resolution** — lexical scoping is static in the composed IR
  (``Env`` frames are created exactly where blocks/actions/parsers
  nest), so every name compiles to a fixed index into ``ctx.regs``.
* **Widths and masks** — result masks, slice shifts, concat widths, and
  header pack/unpack plans (field, shift, mask) are burned into the
  closures.
* **Table keys** — key expressions compile to a closure vector; an apply
  is one fault check, one tuple build, one
  :meth:`~repro.targets.tables.TableRuntime.lookup_full`, and a dict
  dispatch to a pre-compiled action invoker.

What stays dynamic — exactly the state the interpreter also treats as
runtime state: table contents (``TableRuntime`` with its PR 2 indexes is
shared, not reimplemented), register cells, the fault plan, guards, and
per-packet intrinsic metadata.

Compatibility contract with the interpreter (the differential suite in
``tests/targets/test_compiled_equiv.py`` enforces this):

* identical verdict streams, output bytes/ports and drop reasons;
* identical :class:`~repro.obs.pkttrace.PacketTrace` event streams;
* **fault-site parity** — ``FaultPlan.trip`` draws one sample per named
  site visit, so compiled code must trip the same sites in the same
  order (table trip *before* key eval, extern trip before dispatch);
* **step parity** — every compiled statement closure counts one step
  against the same ``interp_step_budget`` guard, so a step-budget kill
  happens on exactly the same packet under either backend.

Metrics are emitted under ``compiled.*`` (``compiled.packets``,
``compiled.table_hits``/``misses``) alongside the interpreter's
``interp.*`` family.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import Symbol
from repro.midend.bytestack import BS_INSTANCE, BS_LEN_VAR, PARSER_ERR_VAR
from repro.midend.inline import IM_VAR, PKT_VAR, ComposedPipeline
from repro.net.packet import Packet
from repro.obs.metrics import LATENCY_SAMPLE_EVERY, METRICS
from repro.obs.pkttrace import PacketTrace
from repro.targets.faults import (
    DEFAULT_STEP_BUDGET,
    FaultError,
    FaultPlan,
    ResourceGuards,
)
from repro.targets.interpreter import (
    ExitSignal,
    HeaderValue,
    ImState,
    McEngine,
    PktObject,
    RegisterState,
    ReturnSignal,
    StructValue,
)
from repro.targets.pipeline import PacketOut, ParserErrorSignal, _expr_name
from repro.targets.tables import TableRuntime

#: Fast-path ``im_t`` methods compiled to direct attribute access.
_IM_FAST = ("set_out_port", "get_out_port", "get_in_port", "drop")


class _Ctx:
    """Per-packet execution context: the compiled program's only runtime
    state besides the pipeline-owned tables/registers."""

    __slots__ = (
        "regs",
        "steps",
        "step_limit",
        "faults",
        "ptrace",
        "data",
        "cursor",
        "table_trace",
        "lat_on",
        "hits",
        "misses",
    )


def _budget(ctx: _Ctx) -> None:
    """Cold path: the step counter crossed the guard."""
    raise FaultError(
        "step-budget",
        f"interpreter exceeded {ctx.step_limit} statements for one packet",
    )


class _PState:
    """One compiled parser state: its statement closures and a
    transition closure returning the next state's *name*."""

    __slots__ = ("name", "stmts", "transition")

    def __init__(self, name: str, stmts, transition) -> None:
        self.name = name
        self.stmts = stmts
        self.transition = transition


# ======================================================================
# Default-value factories (per-packet fresh values, built once)
# ======================================================================


def _header_factory(htype: ast.HeaderType) -> Callable[[], HeaderValue]:
    template = {name: 0 for name, _ in htype.fields}
    new = HeaderValue.__new__

    def make() -> HeaderValue:
        hv = new(HeaderValue)
        hv.fields = template.copy()
        hv.valid = False
        return hv

    return make


def _struct_factory(stype: ast.StructType) -> Callable[[], StructValue]:
    makers = tuple((name, _factory_for(ftype)) for name, ftype in stype.fields)
    new = StructValue.__new__

    def make() -> StructValue:
        sv = new(StructValue)
        sv.fields = {name: mk() for name, mk in makers}
        return sv

    return make


def _factory_for(t: ast.Type) -> Callable[[], object]:
    """Mirror of :func:`repro.targets.interpreter.default_value` as a
    zero-arg factory; unsupported types raise at *call* time so the
    failure stays inside the containment boundary, like the
    interpreter's per-packet ``default_value`` raise."""
    if isinstance(t, ast.BitType):
        return lambda: 0
    if isinstance(t, ast.BoolType):
        return lambda: False
    if isinstance(t, ast.HeaderType):
        return _header_factory(t)
    if isinstance(t, ast.StructType):
        return _struct_factory(t)
    if isinstance(t, ast.ExternType):
        if t.name == "mc_engine":
            return McEngine
        if t.name == "register":
            return RegisterState
        return lambda: None
    if isinstance(t, ast.EnumType):
        member = t.members[0] if t.members else ""
        return lambda: member
    def unsupported() -> object:
        raise TargetError(f"cannot build a default value for {t}")

    return unsupported


def _pack_plan(htype: ast.HeaderType) -> Tuple[Tuple[str, int, int], ...]:
    """``(field, width, mask)`` in declaration order, for packing."""
    return tuple(
        (fname, ftype.width, (1 << ftype.width) - 1)
        for fname, ftype in htype.fields
        if isinstance(ftype, ast.BitType)
    )


def _unpack_plan(htype: ast.HeaderType) -> Tuple[Tuple[str, int, int], ...]:
    """``(field, shift, mask)`` against the big-endian fixed image."""
    plan = []
    pos = htype.fixed_bit_width
    for fname, ftype in htype.fields:
        if not isinstance(ftype, ast.BitType):
            continue
        pos -= ftype.width
        plan.append((fname, pos, (1 << ftype.width) - 1))
    return tuple(plan)


def _raising(message: str, code: Optional[str] = None) -> Callable:
    """A closure that raises a fresh ``TargetError`` whenever reached —
    used for constructs the interpreter also only rejects at *execution*
    time, so unreached dead code stays equally harmless."""

    def run(ctx, *args):
        err = TargetError(message)
        if code is not None:
            err.code = code
        raise err

    return run


def _raising_after(message: str, *operands: Callable) -> Callable:
    """Like :func:`_raising`, but evaluates ``operands`` first — the
    interpreter evaluates sub-expressions before discovering a missing
    width or an unsupported cast, and those evaluations can have visible
    effects (undefined-name errors, fault-site trips)."""

    def run(ctx, *args):
        for operand in operands:
            operand(ctx)
        raise TargetError(message)

    return run


# ======================================================================
# The compiler
# ======================================================================


class _Compiler:
    """Translates one :class:`ComposedPipeline` into closures over a
    flat register file.

    Scoping note: the interpreter creates an ``Env`` frame exactly where
    a ``BlockStmt``, action invocation, or parser frame nests, so the
    runtime environment chain mirrors the lexical structure — which
    makes every name resolvable to a static slot here.  Redeclaration in
    the *same* frame reuses the slot (``Env.define`` overwrites), while
    shadowing in a child frame gets a fresh one.
    """

    def __init__(
        self,
        composed: ComposedPipeline,
        tables: Dict[str, TableRuntime],
    ) -> None:
        self.composed = composed
        self.tables = tables
        self.nslots = 0
        self._frames: List[Dict[str, int]] = []
        self._labels: List[str] = []
        self._in_parser = False
        # (decl id, defining frame id) -> compiled action invoker.
        self._action_cache: Dict[Tuple[int, int], Callable] = {}
        # Per-packet register-file initialization, built while scanning
        # the root scope (see CompiledPipeline.process).
        self.template: List[object] = []
        self.factories: List[Tuple[int, Callable[[], object]]] = []
        self.register_slots: List[Tuple[int, str]] = []
        self.mc_slots: List[int] = []

    # ------------------------------------------------------------------
    # Scope
    # ------------------------------------------------------------------
    def _push(self, label: Optional[str] = None) -> None:
        if label is None:
            label = self._labels[-1] if self._labels else "pipeline"
        self._frames.append({})
        self._labels.append(label)

    def _pop(self) -> None:
        self._frames.pop()
        self._labels.pop()

    def _define(self, name: str) -> int:
        frame = self._frames[-1]
        slot = frame.get(name)
        if slot is None:
            slot = self.nslots
            self.nslots += 1
            self.template.append(None)
            frame[name] = slot
        return slot

    def _lookup(self, name: str) -> Optional[int]:
        for frame in reversed(self._frames):
            slot = frame.get(name)
            if slot is not None:
                return slot
        return None

    def _undefined(self, name: str, doing: str) -> Callable:
        """Same error the interpreter's ``Env`` raises on a lookup miss."""
        return _raising(
            f"{doing} undefined name {name!r} at runtime "
            f"(in {self._labels[-1]})",
            code="undefined-name",
        )

    # ------------------------------------------------------------------
    # Root scope
    # ------------------------------------------------------------------
    def build_root(self) -> None:
        """Allocate the root register file: intrinsic objects first,
        then every pipeline variable, mirroring ``_fresh_env``."""
        self._push("pipeline")
        self.im_slot = self._define(IM_VAR)
        self.pkt_slot = self._define(PKT_VAR)
        for name, vtype in self.composed.variables.items():
            slot = self._define(name)
            if isinstance(vtype, ast.ExternType) and vtype.name == "register":
                self.register_slots.append((slot, name))
                continue
            if isinstance(vtype, (ast.BitType, ast.BoolType)):
                self.template[slot] = 0 if isinstance(vtype, ast.BitType) else False
                continue
            if isinstance(vtype, ast.EnumType):
                self.template[slot] = vtype.members[0] if vtype.members else ""
                continue
            factory = _factory_for(vtype)
            if isinstance(vtype, ast.ExternType):
                if vtype.name == "mc_engine":
                    self.mc_slots.append(slot)
                    self.factories.append((slot, factory))
                # Other externs default to None — already the template.
                elif vtype.name != "register":
                    self.template[slot] = None
                continue
            self.factories.append((slot, factory))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def compile_stmts(self, stmts: List[ast.Stmt]) -> Tuple[Callable, ...]:
        return tuple(self.compile_stmt(s) for s in stmts)

    def compile_stmt(self, stmt: ast.Stmt) -> Callable:
        if isinstance(stmt, ast.BlockStmt):
            self._push()
            body = self.compile_stmts(stmt.stmts)
            self._pop()

            def run_block(ctx, _body=body):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                for s in _body:
                    s(ctx)

            return run_block

        if isinstance(stmt, ast.AssignStmt):
            rhs = self.compile_expr(stmt.rhs)
            store = self.compile_store(stmt.lhs)

            def run_assign(ctx, _rhs=rhs, _store=store):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                _store(ctx, _rhs(ctx))

            return run_assign

        if isinstance(stmt, ast.VarDeclStmt):
            # The initializer is compiled (and at runtime evaluated)
            # before the name becomes visible, like the interpreter.
            if stmt.init is not None:
                init = self.compile_expr(stmt.init)
                slot = self._define(stmt.name)

                def run_decl(ctx, _init=init, _slot=slot):
                    steps = ctx.steps + 1
                    ctx.steps = steps
                    if steps > ctx.step_limit:
                        _budget(ctx)
                    ctx.regs[_slot] = _init(ctx)

                return run_decl
            factory = _factory_for(stmt.var_type)
            slot = self._define(stmt.name)

            def run_decl_default(ctx, _factory=factory, _slot=slot):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                ctx.regs[_slot] = _factory()

            return run_decl_default

        if isinstance(stmt, ast.MethodCallStmt):
            call = self.compile_call(stmt.call)

            def run_call(ctx, _call=call):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                _call(ctx)

            return run_call

        if isinstance(stmt, ast.IfStmt):
            cond = self.compile_expr(stmt.cond)
            then = self.compile_stmt(stmt.then_body)
            if stmt.else_body is None:

                def run_if(ctx, _cond=cond, _then=then):
                    steps = ctx.steps + 1
                    ctx.steps = steps
                    if steps > ctx.step_limit:
                        _budget(ctx)
                    if _cond(ctx):
                        _then(ctx)

                return run_if
            other = self.compile_stmt(stmt.else_body)

            def run_if_else(ctx, _cond=cond, _then=then, _else=other):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                if _cond(ctx):
                    _then(ctx)
                else:
                    _else(ctx)

            return run_if_else

        if isinstance(stmt, ast.SwitchStmt):
            return self._compile_switch(stmt)

        if isinstance(stmt, ast.EmptyStmt):

            def run_empty(ctx):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)

            return run_empty

        if isinstance(stmt, ast.ExitStmt):

            def run_exit(ctx):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                raise ExitSignal()

            return run_exit

        if isinstance(stmt, ast.ReturnStmt):

            def run_return(ctx):
                steps = ctx.steps + 1
                ctx.steps = steps
                if steps > ctx.step_limit:
                    _budget(ctx)
                raise ReturnSignal()

            return run_return

        # Unknown statements fail on execution, after the step count,
        # exactly like Interpreter.exec_stmt's fallthrough.
        message = f"cannot execute {type(stmt).__name__}"

        def run_unknown(ctx, _message=message):
            steps = ctx.steps + 1
            ctx.steps = steps
            if steps > ctx.step_limit:
                _budget(ctx)
            raise TargetError(_message)

        return run_unknown

    def _compile_switch(self, stmt: ast.SwitchStmt) -> Callable:
        subject = self.compile_expr(stmt.subject)
        bodies = [
            self.compile_stmt(case.body) if case.body is not None else None
            for case in stmt.cases
        ]
        # Resolve fallthrough statically: a match on case i executes the
        # first compiled body at or after i.
        resolved = [
            next((b for b in bodies[i:] if b is not None), None)
            for i in range(len(bodies))
        ]
        arms = []
        for index, case in enumerate(stmt.cases):
            for keyset in case.keysets:
                matcher = (
                    None
                    if isinstance(keyset, ast.DefaultExpr)
                    else self.compile_expr(keyset)
                )
                arms.append((matcher, resolved[index]))
        arms_t = tuple(arms)

        def run_switch(ctx, _subject=subject, _arms=arms_t):
            steps = ctx.steps + 1
            ctx.steps = steps
            if steps > ctx.step_limit:
                _budget(ctx)
            value = _subject(ctx)
            for matcher, body in _arms:
                if matcher is None or matcher(ctx) == value:
                    if body is not None:
                        body(ctx)
                    return

        return run_switch

    # ------------------------------------------------------------------
    # Stores (compiled lvalues)
    # ------------------------------------------------------------------
    def compile_store(self, lhs: ast.Expr) -> Callable:
        if isinstance(lhs, ast.PathExpr):
            slot = self._lookup(lhs.name)
            if slot is None:
                return self._undefined(lhs.name, "assignment to")
            if isinstance(lhs.type, ast.BitType):
                mask = (1 << lhs.type.width) - 1

                def store_masked(ctx, value, _slot=slot, _mask=mask):
                    ctx.regs[_slot] = int(value) & _mask

                return store_masked

            def store_path(ctx, value, _slot=slot):
                ctx.regs[_slot] = value

            return store_path

        if isinstance(lhs, ast.MemberExpr):
            base = self.compile_expr(lhs.base)
            member = lhs.member
            if isinstance(lhs.type, ast.BitType):
                mask = (1 << lhs.type.width) - 1

                def store_field(ctx, value, _base=base, _m=member, _mask=mask):
                    target = _base(ctx)
                    try:
                        fields = target.fields
                    except AttributeError:
                        raise TargetError(
                            f"cannot assign member of {target!r}"
                        ) from None
                    if _m not in fields:
                        raise TargetError(f"no field {_m!r} in {target!r}")
                    fields[_m] = int(value) & _mask

                return store_field

            def store_field_raw(ctx, value, _base=base, _m=member):
                target = _base(ctx)
                try:
                    fields = target.fields
                except AttributeError:
                    raise TargetError(
                        f"cannot assign member of {target!r}"
                    ) from None
                if _m not in fields:
                    raise TargetError(f"no field {_m!r} in {target!r}")
                fields[_m] = value

            return store_field_raw

        if isinstance(lhs, ast.SliceExpr):
            current = self.compile_expr(lhs.base)
            below = self.compile_store(lhs.base)
            width = lhs.hi - lhs.lo + 1
            smask = (1 << width) - 1
            keep = ~(smask << lhs.lo)
            lo = lhs.lo

            def store_slice(
                ctx, value, _cur=current, _set=below, _keep=keep,
                _smask=smask, _lo=lo,
            ):
                updated = (int(_cur(ctx)) & _keep) | (
                    (int(value) & _smask) << _lo
                )
                _set(ctx, updated)

            return store_slice

        return _raising(f"unsupported lvalue {type(lhs).__name__}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def compile_expr(self, expr: ast.Expr) -> Callable:
        if isinstance(expr, ast.IntLit):
            value = expr.value
            return lambda ctx, _v=value: _v
        if isinstance(expr, ast.BoolLit):
            value = expr.value
            return lambda ctx, _v=value: _v
        if isinstance(expr, ast.PathExpr):
            decl = getattr(expr, "decl", None)
            if isinstance(decl, Symbol) and decl.kind == "const":
                value = decl.value
                return lambda ctx, _v=value: _v
            slot = self._lookup(expr.name)
            if slot is None:
                return self._undefined(expr.name, "read of")
            return lambda ctx, _slot=slot: ctx.regs[_slot]
        if isinstance(expr, ast.MemberExpr):
            return self._compile_member(expr)
        if isinstance(expr, ast.SliceExpr):
            base = self.compile_expr(expr.base)
            lo = expr.lo
            mask = (1 << (expr.hi - expr.lo + 1)) - 1
            return lambda ctx, _b=base, _lo=lo, _m=mask: (_b(ctx) >> _lo) & _m
        if isinstance(expr, ast.UnaryExpr):
            return self._compile_unary(expr)
        if isinstance(expr, ast.CastExpr):
            operand = self.compile_expr(expr.operand)
            if isinstance(expr.target, ast.BitType):
                mask = (1 << expr.target.width) - 1
                return lambda ctx, _o=operand, _m=mask: int(_o(ctx)) & _m
            if isinstance(expr.target, ast.BoolType):
                return lambda ctx, _o=operand: bool(_o(ctx))
            return _raising_after(f"unsupported cast to {expr.target}", operand)
        if isinstance(expr, ast.BinaryExpr):
            return self._compile_binary(expr)
        if isinstance(expr, ast.MethodCallExpr):
            return self.compile_call(expr)
        return _raising(f"cannot evaluate {type(expr).__name__}")

    def _compile_member(self, expr: ast.MemberExpr) -> Callable:
        # Enum member access evaluates to the member name, statically.
        if isinstance(expr.base, ast.PathExpr):
            decl = getattr(expr.base, "decl", None)
            if (
                isinstance(decl, Symbol)
                and decl.kind == "type"
                and isinstance(decl.type, ast.EnumType)
            ):
                member = expr.member
                return lambda ctx, _v=member: _v
        base = self.compile_expr(expr.base)
        member = expr.member

        def read_member(ctx, _base=base, _m=member):
            target = _base(ctx)
            try:
                return target.fields[_m]
            except KeyError:
                raise TargetError(f"no field {_m!r} in {target!r}") from None
            except AttributeError:
                raise TargetError(
                    f"cannot read member {_m!r} of {target!r}"
                ) from None

        return read_member

    def _compile_unary(self, expr: ast.UnaryExpr) -> Callable:
        operand = self.compile_expr(expr.operand)
        if expr.op == "!":
            return lambda ctx, _o=operand: not _o(ctx)
        t = expr.type if expr.type else expr.operand.type
        if not isinstance(t, ast.BitType):
            return _raising_after(
                f"unary has no bit width at runtime (type {t})", operand
            )
        mask = (1 << t.width) - 1
        if expr.op == "~":
            return lambda ctx, _o=operand, _m=mask: ~_o(ctx) & _m
        if expr.op == "-":
            return lambda ctx, _o=operand, _m=mask: -_o(ctx) & _m
        return _raising(f"unknown unary op {expr.op!r}")

    def _compile_binary(self, expr: ast.BinaryExpr) -> Callable:
        op = expr.op
        left = self.compile_expr(expr.left)
        right = self.compile_expr(expr.right)
        if op == "&&":
            return lambda ctx, _l=left, _r=right: bool(_l(ctx)) and bool(_r(ctx))
        if op == "||":
            return lambda ctx, _l=left, _r=right: bool(_l(ctx)) or bool(_r(ctx))
        if op == "==":
            return lambda ctx, _l=left, _r=right: _l(ctx) == _r(ctx)
        if op == "!=":
            return lambda ctx, _l=left, _r=right: _l(ctx) != _r(ctx)
        if op == "<":
            return lambda ctx, _l=left, _r=right: _l(ctx) < _r(ctx)
        if op == "<=":
            return lambda ctx, _l=left, _r=right: _l(ctx) <= _r(ctx)
        if op == ">":
            return lambda ctx, _l=left, _r=right: _l(ctx) > _r(ctx)
        if op == ">=":
            return lambda ctx, _l=left, _r=right: _l(ctx) >= _r(ctx)
        if op == "++":
            rt = expr.right.type
            if not isinstance(rt, ast.BitType):
                return _raising_after(
                    f"concat operand has no bit width at runtime (type {rt})",
                    left,
                    right,
                )
            rwidth = rt.width
            return lambda ctx, _l=left, _r=right, _w=rwidth: (
                (int(_l(ctx)) << _w) | int(_r(ctx))
            )
        if op == "&":
            return lambda ctx, _l=left, _r=right: int(_l(ctx)) & int(_r(ctx))
        if op == "|":
            return lambda ctx, _l=left, _r=right: int(_l(ctx)) | int(_r(ctx))
        if op == "^":
            return lambda ctx, _l=left, _r=right: int(_l(ctx)) ^ int(_r(ctx))
        if op == ">>":
            return lambda ctx, _l=left, _r=right: int(_l(ctx)) >> int(_r(ctx))
        if not isinstance(expr.type, ast.BitType):
            return _raising_after(
                f"result of {op!r} has no bit width at runtime "
                f"(type {expr.type})",
                left,
                right,
            )
        mask = (1 << expr.type.width) - 1
        if op == "+":
            return lambda ctx, _l=left, _r=right, _m=mask: (
                (int(_l(ctx)) + int(_r(ctx))) & _m
            )
        if op == "-":
            return lambda ctx, _l=left, _r=right, _m=mask: (
                (int(_l(ctx)) - int(_r(ctx))) & _m
            )
        if op == "*":
            return lambda ctx, _l=left, _r=right, _m=mask: (
                (int(_l(ctx)) * int(_r(ctx))) & _m
            )
        if op == "<<":
            return lambda ctx, _l=left, _r=right, _m=mask: (
                (int(_l(ctx)) << int(_r(ctx))) & _m
            )
        if op == "/":

            def div_ordered(ctx, _l=left, _r=right, _m=mask):
                lv = _l(ctx)
                rv = _r(ctx)
                if rv == 0:
                    raise TargetError("division by zero in dataplane expression")
                return (int(lv) // int(rv)) & _m

            return div_ordered
        if op == "%":

            def mod_ordered(ctx, _l=left, _r=right, _m=mask):
                lv = _l(ctx)
                rv = _r(ctx)
                if rv == 0:
                    raise TargetError("modulo by zero in dataplane expression")
                return (int(lv) % int(rv)) & _m

            return mod_ordered
        return _raising(f"unknown binary op {op!r}")

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def compile_call(self, call: ast.MethodCallExpr) -> Callable:
        resolved = getattr(call, "resolved", None)
        if resolved is None:
            return _raising("unresolved call reached the interpreter")
        kind = resolved[0]
        if kind == "header_op":
            return self._compile_header_op(call, resolved[1])
        if kind == "table":
            return self._compile_table_apply(resolved[1])
        if kind == "action":
            argcs = tuple(self.compile_expr(a) for a in call.args)
            invoker = self._compile_action_invoker(resolved[1])

            def run_action(ctx, _args=argcs, _invoke=invoker):
                _invoke(ctx, [a(ctx) for a in _args])

            return run_action
        if kind == "extern":
            return self._compile_extern(call, resolved[1], resolved[2])
        if kind == "builtin":
            return self._compile_builtin(call, resolved[1])
        if kind == "module":
            return _raising(
                "module apply survived inlining; run the composer first"
            )
        if kind == "stack_op":
            return _raising(
                "header-stack op survived lowering; run the hdr_stack pass"
            )
        return _raising(f"cannot execute call kind {kind!r}")

    def _compile_header_op(self, call: ast.MethodCallExpr, op: str) -> Callable:
        target = call.target
        assert isinstance(target, ast.MemberExpr)
        base = self.compile_expr(target.base)
        if op == "isValid":

            def is_valid(ctx, _base=base):
                header = _base(ctx)
                if isinstance(header, HeaderValue):
                    return header.valid
                raise TargetError(f"isValid on a non-header value {header!r}")

            return is_valid
        if op == "setValid":

            def set_valid(ctx, _base=base):
                header = _base(ctx)
                if isinstance(header, HeaderValue):
                    header.valid = True
                    return None
                raise TargetError(f"setValid on a non-header value {header!r}")

            return set_valid
        if op == "setInvalid":

            def set_invalid(ctx, _base=base):
                header = _base(ctx)
                if isinstance(header, HeaderValue):
                    header.valid = False
                    return None
                raise TargetError(
                    f"setInvalid on a non-header value {header!r}"
                )

            return set_invalid

        def unknown_op(ctx, _base=base, _op=op):
            header = _base(ctx)
            if not isinstance(header, HeaderValue):
                raise TargetError(f"{_op} on a non-header value {header!r}")
            raise TargetError(f"unknown header op {_op!r}")

        return unknown_op

    def _compile_table_apply(self, decl: ast.TableDecl) -> Callable:
        runtime = self.tables.get(decl.name)
        if runtime is None:
            return _raising(f"table {decl.name!r} has no runtime state")
        keys = tuple(self.compile_expr(k) for k in runtime.key_exprs)
        # Pre-compile an invoker for every composed action so a runtime
        # entry can select any of them; unknown names still raise like
        # the interpreter does.
        dispatch = {
            name: self._compile_action_invoker(adecl)
            for name, adecl in self.composed.actions.items()
        }
        name = decl.name
        site = f"table:{name}"
        prefix = name + ":"
        lookup = runtime.lookup_full
        entry_index = runtime.entry_index

        def apply_table(
            ctx,
            _name=name,
            _site=site,
            _prefix=prefix,
            _keys=keys,
            _lookup=lookup,
            _entry_index=entry_index,
            _dispatch=dispatch,
        ):
            faults = ctx.faults
            if faults is not None and faults.trip("table", _name):
                raise FaultError(
                    "extern-fault",
                    f"injected lookup failure in table {_name!r}",
                    site=_site,
                )
            lat_on = ctx.lat_on
            if lat_on:
                t0 = _perf_counter()
            key_values = tuple(int(k(ctx)) for k in _keys)
            action_name, args, hit, entry = _lookup(key_values)
            if lat_on:
                METRICS.observe(
                    "pipeline.latency_us.lookup",
                    (_perf_counter() - t0) * 1e6,
                )
            ctx.table_trace.append(_prefix + action_name)
            ptrace = ctx.ptrace
            if ptrace is not None:
                ptrace.table(
                    _name,
                    key_values,
                    action_name,
                    hit,
                    entry=_entry_index(entry) if entry is not None else None,
                    const=entry.is_const if entry is not None else None,
                    args=args,
                )
            # Accumulated on the per-packet ctx and reported as two incs
            # in process() — per-table METRICS calls cost more than the
            # telemetry overhead budget allows on the compiled backend.
            if hit:
                ctx.hits += 1
            else:
                ctx.misses += 1
            if action_name != "NoAction":
                invoker = _dispatch.get(action_name)
                if invoker is None:
                    raise TargetError(
                        f"table {_name!r} selected unknown action "
                        f"{action_name!r}"
                    )
                if lat_on:
                    t0 = _perf_counter()
                invoker(ctx, args)
                if lat_on:
                    METRICS.observe(
                        "pipeline.latency_us.action",
                        (_perf_counter() - t0) * 1e6,
                    )
            return hit

        return apply_table

    def _compile_action_invoker(self, decl: ast.ActionDecl) -> Callable:
        # Memoized per (action, lexical frame): the interpreter's action
        # frame chains to the call-site environment, and since the env
        # chain mirrors lexical structure, a per-frame compile is exact.
        key = (id(decl), id(self._frames[-1]))
        cached = self._action_cache.get(key)
        if cached is not None:
            return cached
        self._push(f"action {decl.name!r}")
        slots = tuple(self._define(p.name) for p in decl.params)
        body = self.compile_stmts(decl.body.stmts)
        self._pop()
        nparams = len(decl.params)
        name = decl.name

        def invoke(ctx, args, _slots=slots, _body=body, _n=nparams, _name=name):
            if len(args) != _n:
                raise TargetError(
                    f"action {_name!r} expects {_n} args, got {len(args)}"
                )
            regs = ctx.regs
            for slot, value in zip(_slots, args):
                regs[slot] = value
            for s in _body:
                s(ctx)

        self._action_cache[key] = invoke
        return invoke

    def _compile_builtin(self, call: ast.MethodCallExpr, name: str) -> Callable:
        if name == "recirculate":
            slot = self._lookup(IM_VAR)
            if slot is None:
                return self._undefined(IM_VAR, "read of")
            argcs = tuple(self.compile_expr(a) for a in call.args)

            def recirc(ctx, _slot=slot, _args=argcs):
                im = ctx.regs[_slot]
                if isinstance(im, ImState):
                    im.recirculate_requested = True
                for a in _args:
                    a(ctx)

            return recirc
        return _raising(f"unknown builtin function {name!r}")

    # ------------------------------------------------------------------
    # Externs
    # ------------------------------------------------------------------
    def _compile_extern(
        self, call: ast.MethodCallExpr, extern: str, method: str
    ) -> Callable:
        target = call.target
        assert isinstance(target, ast.MemberExpr)
        site = f"extern:{extern}"
        fault_message = f"injected fault in extern {extern!r}.{method}"

        if extern == "extractor":
            if self._in_parser:
                return self._compile_extract(call, site, fault_message)

            def no_parser(ctx, _site=site, _msg=fault_message):
                faults = ctx.faults
                if faults is not None and faults.trip("extern", "extractor"):
                    raise FaultError("extern-fault", _msg, site=_site)
                raise TargetError(
                    "extractor.extract outside a native parser context"
                )

            return no_parser
        if extern == "emitter":

            def no_deparser(ctx, _ext=extern, _site=site, _msg=fault_message):
                faults = ctx.faults
                if faults is not None and faults.trip("extern", _ext):
                    raise FaultError("extern-fault", _msg, site=_site)
                raise TargetError(
                    "emitter.emit outside a native deparser context"
                )

            return no_deparser

        base = self.compile_expr(target.base)
        argcs = tuple(self.compile_expr(a) for a in call.args)

        def generic_body(ctx, _base=base, _args=argcs, _ext=extern, _m=method):
            obj = _base(ctx)
            args = [a(ctx) for a in _args]
            if hasattr(obj, "call"):
                return obj.call(_m, args)
            raise TargetError(f"extern instance {_ext!r} missing at runtime")

        if extern == "register" and method == "read" and len(call.args) == 2:
            index = self.compile_expr(call.args[1])
            store = self.compile_store(call.args[0])

            def reg_read(
                ctx, _base=base, _idx=index, _store=store,
                _ext=extern, _site=site, _msg=fault_message,
                _generic=generic_body,
            ):
                faults = ctx.faults
                if faults is not None and faults.trip("extern", _ext):
                    raise FaultError("extern-fault", _msg, site=_site)
                obj = _base(ctx)
                if isinstance(obj, RegisterState):
                    value = obj.cells.get(int(_idx(ctx)) % obj.size, 0)
                    _store(ctx, value)
                    return None
                return _generic(ctx)

            return reg_read

        if extern == "im_t" and method in _IM_FAST and len(call.args) <= 1:
            if method == "set_out_port":
                arg0 = argcs[0]

                def im_set_out_port(
                    ctx, _base=base, _a0=arg0, _ext=extern, _site=site,
                    _msg=fault_message, _generic=generic_body,
                ):
                    faults = ctx.faults
                    if faults is not None and faults.trip("extern", _ext):
                        raise FaultError("extern-fault", _msg, site=_site)
                    im = _base(ctx)
                    if im.__class__ is ImState:
                        port = int(_a0(ctx))
                        im.out_port = port
                        if port == ImState.DROP_PORT:
                            im.dropped = True
                        return None
                    return _generic(ctx)

                return im_set_out_port
            if method == "drop":

                def im_drop(
                    ctx, _base=base, _ext=extern, _site=site,
                    _msg=fault_message, _generic=generic_body,
                ):
                    faults = ctx.faults
                    if faults is not None and faults.trip("extern", _ext):
                        raise FaultError("extern-fault", _msg, site=_site)
                    im = _base(ctx)
                    if im.__class__ is ImState:
                        im.dropped = True
                        return None
                    return _generic(ctx)

                return im_drop
            attr = "out_port" if method == "get_out_port" else "in_port"

            def im_get(
                ctx, _base=base, _attr=attr, _ext=extern, _site=site,
                _msg=fault_message, _generic=generic_body,
            ):
                faults = ctx.faults
                if faults is not None and faults.trip("extern", _ext):
                    raise FaultError("extern-fault", _msg, site=_site)
                im = _base(ctx)
                if im.__class__ is ImState:
                    return getattr(im, _attr)
                return _generic(ctx)

            return im_get

        def generic(
            ctx, _ext=extern, _site=site, _msg=fault_message,
            _body=generic_body,
        ):
            faults = ctx.faults
            if faults is not None and faults.trip("extern", _ext):
                raise FaultError("extern-fault", _msg, site=_site)
            return _body(ctx)

        return generic

    def _compile_extract(
        self, call: ast.MethodCallExpr, site: str, fault_message: str
    ) -> Callable:
        lvalue = call.args[1]
        htype = lvalue.type
        getter = self.compile_expr(lvalue)
        if not isinstance(htype, ast.HeaderType):

            def bad_target(ctx, _get=getter, _site=site, _msg=fault_message):
                faults = ctx.faults
                if faults is not None and faults.trip("extern", "extractor"):
                    raise FaultError("extern-fault", _msg, site=_site)
                _get(ctx)
                raise TargetError("extract target is not a header")

            return bad_target
        size = htype.byte_width
        plan = _unpack_plan(htype)
        name = _expr_name(lvalue)

        def do_extract(
            ctx, _get=getter, _size=size, _plan=plan, _name=name,
            _site=site, _msg=fault_message,
        ):
            faults = ctx.faults
            if faults is not None and faults.trip("extern", "extractor"):
                raise FaultError("extern-fault", _msg, site=_site)
            header = _get(ctx)
            if header.__class__ is not HeaderValue:
                raise TargetError("extract target is not a header")
            data = ctx.data
            cursor = ctx.cursor
            end = cursor + _size
            if end > len(data):
                raise ParserErrorSignal("truncated-extract")
            acc = int.from_bytes(data[cursor:end], "big")
            fields = header.fields
            for fname, shift, fmask in _plan:
                fields[fname] = (acc >> shift) & fmask
            header.valid = True
            ptrace = ctx.ptrace
            if ptrace is not None:
                ptrace.extract(_name, _size, offset=cursor)
            ctx.cursor = end
            return None

        return do_extract

    # ------------------------------------------------------------------
    # Native parser
    # ------------------------------------------------------------------
    def compile_parser(
        self, parser: ast.ParserDecl
    ) -> Tuple[Dict[str, _PState], Tuple[Callable, ...]]:
        """Compile all states and the parser-locals initializers.

        Returns ``(states, local_inits)``; the locals live in one shared
        frame like the interpreter's, initialized per packet before the
        ``start`` state runs.
        """
        self._in_parser = True
        self._push(f"parser {parser.name!r}")
        inits: List[Callable] = []
        for local in parser.locals:
            if not isinstance(local, ast.VarLocal):
                continue
            if local.init is not None:
                init = self.compile_expr(local.init)
                slot = self._define(local.name)

                def run_init(ctx, _init=init, _slot=slot):
                    ctx.regs[_slot] = _init(ctx)

                inits.append(run_init)
            else:
                factory = _factory_for(local.var_type)
                slot = self._define(local.name)

                def run_init_default(ctx, _factory=factory, _slot=slot):
                    ctx.regs[_slot] = _factory()

                inits.append(run_init_default)
        states: Dict[str, _PState] = {}
        for state in parser.states:
            stmts = self.compile_stmts(state.stmts)
            transition = self._compile_transition(state)
            states[state.name] = _PState(state.name, stmts, transition)
        self._pop()
        self._in_parser = False
        return states, tuple(inits)

    def _compile_transition(self, state: ast.ParserState) -> Callable:
        if state.direct_next is not None:
            target = state.direct_next
            return lambda ctx, _t=target: _t
        if not state.select_exprs:
            return lambda ctx: "reject"
        subjects = tuple(self.compile_expr(e) for e in state.select_exprs)
        cases = tuple(
            (
                tuple(self._compile_keyset(ks) for ks in keysets),
                target,
            )
            for keysets, target in state.select_cases
        )

        def transition(ctx, _subjects=subjects, _cases=cases):
            values = [s(ctx) for s in _subjects]
            for matchers, target in _cases:
                for matcher, value in zip(matchers, values):
                    if matcher is not None and not matcher(ctx, value):
                        break
                else:
                    return target
            return "reject"

        return transition

    def _compile_keyset(self, keyset: ast.Expr) -> Optional[Callable]:
        """A ``(ctx, subject) -> bool`` matcher; None means always-match
        (``default`` / ``_``)."""
        if isinstance(keyset, ast.DefaultExpr):
            return None
        if isinstance(keyset, ast.MaskExpr):
            value = self.compile_expr(keyset.value)
            mask = self.compile_expr(keyset.mask)

            def match_mask(ctx, subject, _v=value, _m=mask):
                v = _v(ctx)
                m = int(_m(ctx))
                return (int(subject) & m) == (int(v) & m)

            return match_mask
        if isinstance(keyset, ast.RangeExpr):
            lo = self.compile_expr(keyset.lo)
            hi = self.compile_expr(keyset.hi)

            def match_range(ctx, subject, _lo=lo, _hi=hi):
                return int(_lo(ctx)) <= int(subject) <= int(_hi(ctx))

            return match_range
        value = self.compile_expr(keyset)

        def match_eq(ctx, subject, _v=value):
            return _v(ctx) == subject

        return match_eq


# ======================================================================
# The compiled pipeline
# ======================================================================


class CompiledPipeline:
    """Drop-in execution backend for a :class:`ComposedPipeline`,
    API-compatible with :class:`~repro.targets.pipeline.PipelineInstance`
    for everything the switch, soak harness, and control API touch:
    ``process`` / ``process_traced``, ``tables``, ``composed``,
    ``configure_faults``, ``guards``, ``last_drop_reason``, and
    ``table_trace``.

    Orchestration-time module invocation (``process_with`` /
    ``module_hook``) stays on the interpreter — it is control-plane
    machinery, not the per-packet fast path this backend specializes.
    """

    backend = "compiled"

    def __init__(
        self,
        composed: ComposedPipeline,
        use_table_index: bool = True,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.composed = composed
        self.tables: Dict[str, TableRuntime] = {
            name: TableRuntime(decl, use_index=use_table_index)
            for name, decl in composed.tables.items()
        }
        self.persistent: Dict[str, object] = {}
        self.last_drop_reason: Optional[str] = None
        self.table_trace: List[str] = []
        # Packet counter driving deterministic stage-latency sampling
        # (see LATENCY_SAMPLE_EVERY); only advances while metrics are on.
        self._lat_tick = 0
        self.step_limit = DEFAULT_STEP_BUDGET
        self.faults: Optional[FaultPlan] = None
        self.guards = ResourceGuards()

        compiler = _Compiler(composed, self.tables)
        compiler.build_root()
        self._body = compiler.compile_stmts(composed.statements)
        self._pstates: Optional[Dict[str, _PState]] = None
        self._plocal_inits: Tuple[Callable, ...] = ()
        self._emits: Tuple[Tuple[Callable, str, int, tuple], ...] = ()
        if composed.mode == "micro":
            bs = composed.byte_stack
            assert bs is not None
            self._bs_slot = compiler._lookup(BS_INSTANCE)
            self._bslen_slot = compiler._lookup(BS_LEN_VAR)
            self._perr_slot = compiler._lookup(PARSER_ERR_VAR)
            self._bnames = tuple(f"b{i}" for i in range(bs.size))
            self._bs_size = bs.size
            self._extract_len = composed.region.extract_length
        else:
            if composed.native_parser is not None:
                self._pstates, self._plocal_inits = compiler.compile_parser(
                    composed.native_parser
                )
            emits = []
            for emit in composed.native_emits or []:
                getter = compiler.compile_expr(emit)
                htype = emit.type
                if isinstance(htype, ast.HeaderType):
                    plan = _pack_plan(htype)
                    nbytes = htype.fixed_bit_width // 8
                else:
                    plan = ()
                    nbytes = 0
                emits.append((getter, _expr_name(emit), nbytes, plan))
            self._emits = tuple(emits)

        self._template = compiler.template
        self._factories = tuple(compiler.factories)
        self._register_slots = tuple(compiler.register_slots)
        self._mc_slots = tuple(compiler.mc_slots)
        self._im_slot = compiler.im_slot
        self._pkt_slot = compiler.pkt_slot
        self.configure_faults(guards=guards, faults=faults)
        if METRICS.enabled:
            METRICS.inc("compiled.builds")
            METRICS.set_gauge("compiled.slots", compiler.nslots)

    # ------------------------------------------------------------------
    def configure_faults(
        self,
        guards: Optional[ResourceGuards] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        """(Re)wire resource guards and a fault-injection plan — same
        contract as ``PipelineInstance.configure_faults``."""
        if guards is not None:
            self.guards = guards
        self.step_limit = self.guards.interp_step_budget
        self.faults = faults

    # ------------------------------------------------------------------
    def _fresh_ctx(
        self, packet: Packet, in_port: int, trace: Optional[PacketTrace]
    ) -> _Ctx:
        ctx = _Ctx()
        ctx.regs = regs = self._template[:]
        im = ImState(in_port=in_port, pkt_len=len(packet))
        regs[self._im_slot] = im
        regs[self._pkt_slot] = PktObject(packet)
        for slot, factory in self._factories:
            regs[slot] = factory()
        for slot, name in self._register_slots:
            regs[slot] = self.persistent.setdefault(name, RegisterState())
        for slot in self._mc_slots:
            value = regs[slot]
            if isinstance(value, McEngine):
                value.im = im
        ctx.steps = 0
        ctx.step_limit = self.step_limit
        ctx.faults = self.faults
        ctx.ptrace = trace
        ctx.table_trace = self.table_trace
        ctx.data = packet.tobytes()
        ctx.cursor = 0
        ctx.lat_on = False
        ctx.hits = 0
        ctx.misses = 0
        return ctx

    # ------------------------------------------------------------------
    def process(
        self,
        packet: Packet,
        in_port: int = 0,
        trace: Optional[PacketTrace] = None,
    ) -> List[PacketOut]:
        """Run one packet through the compiled program; [] means dropped."""
        lat_on = False
        if METRICS.enabled:
            METRICS.inc("compiled.packets")
            tick = self._lat_tick
            self._lat_tick = tick + 1
            lat_on = tick % LATENCY_SAMPLE_EVERY == 0
        self.last_drop_reason = None
        ctx = self._fresh_ctx(packet, in_port, trace)
        ctx.lat_on = lat_on
        try:
            if self.composed.mode == "micro":
                return self._process_micro(ctx, trace)
            return self._process_monolithic(ctx, trace)
        finally:
            # Faulted packets still report the lookups they completed,
            # matching the interpreter's inline counting.
            if METRICS.enabled:
                if ctx.hits:
                    METRICS.inc("compiled.table_hits", ctx.hits)
                if ctx.misses:
                    METRICS.inc("compiled.table_misses", ctx.misses)

    def process_traced(self, packet: Packet, in_port: int = 0):
        """Convenience: run one packet with tracing on; returns
        ``(outputs, trace)``."""
        trace = PacketTrace()
        outputs = self.process(packet, in_port, trace=trace)
        return outputs, trace

    # ------------------------------------------------------------------
    def _process_micro(
        self, ctx: _Ctx, trace: Optional[PacketTrace]
    ) -> List[PacketOut]:
        regs = ctx.regs
        data = ctx.data
        lat_on = ctx.lat_on
        if lat_on:
            t0 = _perf_counter()
        extract_len = self._extract_len
        loaded = min(len(data), extract_len)
        stack = regs[self._bs_slot]
        stack.valid = True
        fields = stack.fields
        bnames = self._bnames
        for i in range(loaded):
            fields[bnames[i]] = data[i]
        regs[self._bslen_slot] = loaded
        payload = data[extract_len:]
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.parse", (_perf_counter() - t0) * 1e6
            )
        if trace is not None:
            trace.extract("byte_stack", loaded, extract_length=extract_len)

        try:
            for s in self._body:
                s(ctx)
        except (ExitSignal, ReturnSignal):
            pass

        im = regs[self._im_slot]
        if regs[self._perr_slot] == 1 or im.dropped:
            reason = (
                "parser-error" if regs[self._perr_slot] == 1 else "pipeline-drop"
            )
            self.last_drop_reason = reason
            if trace is not None:
                trace.drop(reason)
            return []
        out_len = int(regs[self._bslen_slot])
        if out_len > self._bs_size or out_len < 0:
            raise FaultError(
                "bytestack-bounds",
                f"byte-stack length {out_len} outside stack size "
                f"{self._bs_size}",
            )
        if lat_on:
            t0 = _perf_counter()
        out_bytes = bytes(map(fields.__getitem__, bnames[:out_len])) + payload
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.deparse", (_perf_counter() - t0) * 1e6
            )
        if trace is not None:
            trace.deparse(out_len, len(payload))
            trace.output(
                im.out_port,
                len(out_bytes),
                im.mcast_grp,
                im.recirculate_requested,
            )
        return [
            PacketOut(
                Packet(out_bytes),
                im.out_port,
                im.mcast_grp,
                recirculate=im.recirculate_requested,
            )
        ]

    # ------------------------------------------------------------------
    def _process_monolithic(
        self, ctx: _Ctx, trace: Optional[PacketTrace]
    ) -> List[PacketOut]:
        data = ctx.data
        lat_on = ctx.lat_on
        if self._pstates is not None:
            if lat_on:
                t0 = _perf_counter()
            try:
                self._run_parser(ctx, trace)
            except ParserErrorSignal as sig:
                self.last_drop_reason = sig.reason
                if trace is not None:
                    trace.drop(sig.reason)
                return []
            finally:
                if lat_on:
                    METRICS.observe(
                        "pipeline.latency_us.parse",
                        (_perf_counter() - t0) * 1e6,
                    )
        payload = data[ctx.cursor:]

        try:
            for s in self._body:
                s(ctx)
        except (ExitSignal, ReturnSignal):
            pass

        im = ctx.regs[self._im_slot]
        if im.dropped:
            self.last_drop_reason = "pipeline-drop"
            if trace is not None:
                trace.drop("pipeline-drop")
            return []
        if lat_on:
            t0 = _perf_counter()
        out = bytearray()
        for getter, name, nbytes, plan in self._emits:
            value = getter(ctx)
            if not isinstance(value, HeaderValue):
                raise TargetError("native emit of a non-header value")
            if not value.valid:
                continue
            acc = 0
            hfields = value.fields
            for fname, width, fmask in plan:
                acc = (acc << width) | (hfields[fname] & fmask)
            packed = acc.to_bytes(nbytes, "big")
            if trace is not None:
                trace.emit(name, len(packed))
            out.extend(packed)
        out.extend(payload)
        if lat_on:
            METRICS.observe(
                "pipeline.latency_us.deparse", (_perf_counter() - t0) * 1e6
            )
        if trace is not None:
            trace.output(
                im.out_port,
                len(out),
                im.mcast_grp,
                im.recirculate_requested,
            )
        return [
            PacketOut(
                Packet(bytes(out)),
                im.out_port,
                im.mcast_grp,
                recirculate=im.recirculate_requested,
            )
        ]

    def _run_parser(self, ctx: _Ctx, trace: Optional[PacketTrace]) -> None:
        for init in self._plocal_inits:
            init(ctx)
        states = self._pstates
        name = "start"
        for _ in range(self.guards.parser_step_budget):
            if name == "accept":
                return
            if name == "reject":
                raise ParserErrorSignal("parser-reject")
            state = states.get(name)
            if state is None:
                raise TargetError(f"parser reached unknown state {name!r}")
            if trace is not None:
                trace.parser_state(name)
            for s in state.stmts:
                s(ctx)
            name = state.transition(ctx)
        raise FaultError(
            "parse-depth",
            f"native parser exceeded its "
            f"{self.guards.parser_step_budget}-state step budget",
        )
