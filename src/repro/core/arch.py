"""µPA — the µP4 logical architecture (paper §4).

µPA is *logical*: no device implements it.  It fixes (i) the pipeline
kinds and interfaces modules are written against, and (ii) the logical
externs that stand in for target-specific constructs.  This module
documents that contract programmatically so tools (and tests) can
enumerate it; the semantic objects themselves live in
:mod:`repro.frontend.builtins`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.frontend import builtins as bi


@dataclass(frozen=True)
class InterfaceSpec:
    """One µPA interface (Fig. 11)."""

    name: str
    roles: List[str]
    description: str


@dataclass(frozen=True)
class ExternSpec:
    """One logical extern (Fig. 6)."""

    name: str
    methods: List[str]
    description: str


@dataclass(frozen=True)
class ArchitectureSpec:
    interfaces: Dict[str, InterfaceSpec] = field(default_factory=dict)
    externs: Dict[str, ExternSpec] = field(default_factory=dict)
    intrinsic_metadata: List[str] = field(default_factory=list)


def _build() -> ArchitectureSpec:
    interfaces = {
        "Unicast": InterfaceSpec(
            "Unicast",
            ["parser", "control", "deparser"],
            "Linear pipeline producing one output per input packet; "
            "invoked with (pkt, im_t, in/out/inout user params).",
        ),
        "Multicast": InterfaceSpec(
            "Multicast",
            ["parser", "control", "deparser"],
            "Linear pipeline that may replicate the packet via "
            "mc_engine into an out_buf of per-replica results.",
        ),
        "Orchestration": InterfaceSpec(
            "Orchestration",
            ["control"],
            "Non-linear pipeline consuming an in_buf and producing an "
            "out_buf; different copies may be processed differently.",
        ),
    }
    externs = {}
    for name, ext in bi.builtin_types().items():
        if hasattr(ext, "methods"):
            externs[name] = ExternSpec(
                name,
                sorted(ext.methods),
                _EXTERN_DOCS.get(name, ""),
            )
    return ArchitectureSpec(
        interfaces=interfaces,
        externs=externs,
        intrinsic_metadata=list(bi.META_T_MEMBERS),
    )


_EXTERN_DOCS = {
    "pkt": "The packet byte-stream: a byte array plus length.",
    "extractor": "Header extraction from a pkt (parser role).",
    "emitter": "Header emission into a pkt (deparser role).",
    "im_t": "Intrinsic metadata: ports, timestamps, drop, multicast.",
    "in_buf": "Logical input buffer feeding an orchestration pipeline.",
    "out_buf": "Logical output buffer collecting processed packets.",
    "mc_buf": "Buffer of replicated headers for multicast processing.",
    "mc_engine": "Packet replication engine (set_mc_group / apply).",
}

ARCHITECTURE = _build()


def describe_architecture() -> str:
    """Human-readable µPA summary."""
    lines = ["µPA — the µP4 logical architecture", ""]
    lines.append("Interfaces:")
    for spec in ARCHITECTURE.interfaces.values():
        lines.append(f"  {spec.name}<{', '.join(spec.roles)}>")
        lines.append(f"      {spec.description}")
    lines.append("")
    lines.append("Logical externs:")
    for spec in ARCHITECTURE.externs.values():
        lines.append(f"  {spec.name}: {', '.join(spec.methods)}")
        if spec.description:
            lines.append(f"      {spec.description}")
    lines.append("")
    lines.append("Intrinsic metadata (meta_t): " + ", ".join(
        ARCHITECTURE.intrinsic_metadata
    ))
    return "\n".join(lines)
