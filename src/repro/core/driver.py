"""µP4C — the compiler driver (paper Fig. 7).

Runs the pass pipeline:

    frontend  : parse + type-check each module          (µP4-IR)
    midend    : link, analyze, homogenize, compose      (composed IR)
    backend   : v1model (partition + codegen) or
                tna (PHV + ALU legality + stages)       (target output)

``CompilerOptions`` exposes the knobs the paper discusses: target
choice, monolithic mode (the evaluation baseline), and the TNA
backend's field-alignment and assignment-splitting passes (§6.3).

The driver is a *pass manager*: every stage in :data:`PASS_ORDER` runs
inside a :class:`~repro.obs.trace.Tracer` span recording wall-time and
input/output sizes, and the finished trace is attached to
:class:`CompileResult`.  Construct the compiler with
``Up4Compiler(options, tracer=Tracer())`` (or use ``--trace`` /
``repro profile`` on the CLI) to collect it; the default tracer is
disabled and costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.backend.tna import TnaBackend, TnaReport
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.backend.v1model import V1ModelBackend, V1ModelProgram
from repro.errors import CompileError
from repro.frontend.typecheck import Module, check_program
from repro.midend.analysis import Analyzer, OperationalRegion
from repro.midend.hdr_stack import lower_header_stacks
from repro.midend.inline import ComposedPipeline, compose, compose_monolithic
from repro.midend.linker import LinkedProgram, link_modules
from repro.midend.varlen import lower_varlen_headers
from repro.obs.trace import NULL_TRACER, Tracer

TARGETS = ("v1model", "tna")

#: The stages the pass manager runs, in order; each becomes a span of
#: the same name (frontend spans repeat once per module).
PASS_ORDER = (
    "frontend",
    "midend.link",
    "midend.analyze",
    "midend.compose",
    "midend.optimize",
    "backend",
)


@dataclass
class CompilerOptions:
    """Compilation knobs."""

    target: str = "v1model"
    monolithic: bool = False
    # §8.1 midend optimization: elide trivial synthesized MATs.
    optimize_mats: bool = False
    # TNA backend passes (§6.3).
    align_fields: bool = True
    split_assignments: bool = True
    descriptor: Optional[TofinoDescriptor] = None

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise CompileError(
                f"unknown target {self.target!r}; supported: {TARGETS}"
            )


@dataclass
class CompileResult:
    """Everything the driver produces for one build."""

    composed: ComposedPipeline
    region: OperationalRegion
    target_output: Union[V1ModelProgram, TnaReport, None] = None
    # The pass trace, when the driver's tracer was enabled.
    trace: Optional[Tracer] = None


class Up4Compiler:
    """The µP4C pass manager."""

    def __init__(
        self,
        options: Optional[CompilerOptions] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.options = options or CompilerOptions()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Frontend
    # ------------------------------------------------------------------
    def frontend(self, source: str, name: str = "<module>") -> Module:
        """Parse and type-check one µP4 module (Fig. 4a)."""
        with self.tracer.span(
            "frontend", module=name, source_bytes=len(source)
        ) as sp:
            with self.tracer.span("frontend.check", module=name):
                module = check_program(source, name)
            with self.tracer.span("frontend.lower", module=name):
                lower_header_stacks(module)
                lower_varlen_headers(module)
            sp.set(programs=len(module.programs))
        return module

    # ------------------------------------------------------------------
    # Midend
    # ------------------------------------------------------------------
    def link(self, main: Module, libraries: Optional[List[Module]] = None) -> LinkedProgram:
        with self.tracer.span(
            "midend.link", modules=1 + len(libraries or [])
        ) as sp:
            linked = link_modules(main, libraries or [])
            sp.set(programs=len(linked.providers))
        return linked

    def analyze(self, linked: LinkedProgram) -> Analyzer:
        """Run the §5.2 operational-region analysis over ``linked``."""
        with self.tracer.span("midend.analyze") as sp:
            analyzer = Analyzer(linked)
            region = analyzer.analyze()
            sp.set(
                extract_length=region.extract_length,
                byte_stack=region.byte_stack_size,
                min_packet=region.min_packet_size,
            )
        return analyzer

    def midend(
        self, linked: LinkedProgram, analyzer: Optional[Analyzer] = None
    ) -> ComposedPipeline:
        if self.options.monolithic:
            with self.tracer.span("midend.compose", mode="monolithic") as sp:
                composed = compose_monolithic(linked, analyzer=analyzer)
                sp.set(tables=len(composed.tables))
            return composed
        with self.tracer.span("midend.compose", mode="micro") as sp:
            composed = compose(linked, analyzer=analyzer, tracer=self.tracer)
            sp.set(
                tables=len(composed.tables),
                byte_stack=composed.byte_stack_size,
            )
        if self.options.optimize_mats:
            from repro.midend.optimize import elide_trivial_mats

            with self.tracer.span(
                "midend.optimize", tables=len(composed.tables)
            ) as sp:
                stats = elide_trivial_mats(composed)
                sp.set(elided=stats.total, tables=len(composed.tables))
        return composed

    # ------------------------------------------------------------------
    # Backend
    # ------------------------------------------------------------------
    def backend(self, composed: ComposedPipeline):
        with self.tracer.span(
            f"backend.{self.options.target}", tables=len(composed.tables)
        ) as sp:
            if self.options.target == "v1model":
                out = V1ModelBackend().compile(composed)
                sp.set(source_lines=len(out.source_text.splitlines()))
            else:
                out = TnaBackend(
                    descriptor=self.options.descriptor,
                    align_fields=self.options.align_fields,
                    split_assignments=self.options.split_assignments,
                ).compile(composed)
                sp.set(
                    stages=out.num_stages,
                    phv_bits=out.bits_allocated,
                    splits=len(out.split.extra_depth),
                )
        return out

    # ------------------------------------------------------------------
    def compile_modules(
        self, main: Module, libraries: Optional[List[Module]] = None
    ) -> CompileResult:
        """Full pipeline: link → analyze → compose → backend."""
        linked = self.link(main, libraries)
        analyzer = self.analyze(linked)
        composed = self.midend(linked, analyzer=analyzer)
        result = CompileResult(composed=composed, region=composed.region)
        result.target_output = self.backend(composed)
        if self.tracer.enabled:
            result.trace = self.tracer
        return result

    def compile_sources(
        self,
        main_source: str,
        library_sources: Optional[Dict[str, str]] = None,
        main_name: str = "main.up4",
    ) -> CompileResult:
        """Convenience: compile from source texts."""
        main = self.frontend(main_source, main_name)
        libs = [
            self.frontend(text, name)
            for name, text in (library_sources or {}).items()
        ]
        return self.compile_modules(main, libs)
