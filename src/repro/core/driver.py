"""µP4C — the compiler driver (paper Fig. 7).

Runs the pass pipeline:

    frontend  : parse + type-check each module          (µP4-IR)
    midend    : link, analyze, homogenize, compose      (composed IR)
    backend   : v1model (partition + codegen) or
                tna (PHV + ALU legality + stages)       (target output)

``CompilerOptions`` exposes the knobs the paper discusses: target
choice, monolithic mode (the evaluation baseline), and the TNA
backend's field-alignment and assignment-splitting passes (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.backend.tna import TnaBackend, TnaReport
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.backend.v1model import V1ModelBackend, V1ModelProgram
from repro.errors import CompileError
from repro.frontend.typecheck import Module, check_program
from repro.midend.analysis import OperationalRegion, analyze
from repro.midend.hdr_stack import lower_header_stacks
from repro.midend.inline import ComposedPipeline, compose, compose_monolithic
from repro.midend.linker import LinkedProgram, link_modules
from repro.midend.varlen import lower_varlen_headers

TARGETS = ("v1model", "tna")


@dataclass
class CompilerOptions:
    """Compilation knobs."""

    target: str = "v1model"
    monolithic: bool = False
    # §8.1 midend optimization: elide trivial synthesized MATs.
    optimize_mats: bool = False
    # TNA backend passes (§6.3).
    align_fields: bool = True
    split_assignments: bool = True
    descriptor: Optional[TofinoDescriptor] = None

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise CompileError(
                f"unknown target {self.target!r}; supported: {TARGETS}"
            )


@dataclass
class CompileResult:
    """Everything the driver produces for one build."""

    composed: ComposedPipeline
    region: OperationalRegion
    target_output: Union[V1ModelProgram, TnaReport, None] = None


class Up4Compiler:
    """The µP4C pass manager."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()

    # ------------------------------------------------------------------
    # Frontend
    # ------------------------------------------------------------------
    def frontend(self, source: str, name: str = "<module>") -> Module:
        """Parse and type-check one µP4 module (Fig. 4a)."""
        module = check_program(source, name)
        lower_header_stacks(module)
        lower_varlen_headers(module)
        return module

    # ------------------------------------------------------------------
    # Midend
    # ------------------------------------------------------------------
    def link(self, main: Module, libraries: Optional[List[Module]] = None) -> LinkedProgram:
        return link_modules(main, libraries or [])

    def midend(self, linked: LinkedProgram) -> ComposedPipeline:
        if self.options.monolithic:
            return compose_monolithic(linked)
        composed = compose(linked)
        if self.options.optimize_mats:
            from repro.midend.optimize import elide_trivial_mats

            elide_trivial_mats(composed)
        return composed

    # ------------------------------------------------------------------
    # Backend
    # ------------------------------------------------------------------
    def backend(self, composed: ComposedPipeline):
        if self.options.target == "v1model":
            return V1ModelBackend().compile(composed)
        return TnaBackend(
            descriptor=self.options.descriptor,
            align_fields=self.options.align_fields,
            split_assignments=self.options.split_assignments,
        ).compile(composed)

    # ------------------------------------------------------------------
    def compile_modules(
        self, main: Module, libraries: Optional[List[Module]] = None
    ) -> CompileResult:
        """Full pipeline: link → analyze → compose → backend."""
        linked = self.link(main, libraries)
        composed = self.midend(linked)
        result = CompileResult(composed=composed, region=composed.region)
        result.target_output = self.backend(composed)
        return result

    def compile_sources(
        self,
        main_source: str,
        library_sources: Optional[Dict[str, str]] = None,
        main_name: str = "main.up4",
    ) -> CompileResult:
        """Convenience: compile from source texts."""
        main = self.frontend(main_source, main_name)
        libs = [
            self.frontend(text, name)
            for name, text in (library_sources or {}).items()
        ]
        return self.compile_modules(main, libs)
