"""Public API: write modules, compose them, get an executable dataplane.

The intended usage mirrors the paper's Fig. 4 workflow::

    from repro import compile_module, build_dataplane

    l3 = compile_module(L3_SOURCE, "l3.up4")          # Fig. 4a
    ipv4 = compile_module(IPV4_SOURCE, "ipv4.up4")
    main = compile_module(MAIN_SOURCE, "main.up4")

    dp = build_dataplane(main, [l3, ipv4], target="v1model")  # Fig. 4b
    dp.api.add_entry("forward_tbl", [7], "forward", [dmac, smac, port])
    outputs = dp.inject(packet, in_port=1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.driver import CompilerOptions, CompileResult, Up4Compiler
from repro.frontend.json_ir import dump_module, load_module
from repro.frontend.typecheck import Module
from repro.midend.inline import ComposedPipeline
from repro.net.packet import Packet
from repro.obs.pkttrace import PacketTrace
from repro.obs.trace import Tracer
from repro.targets.pipeline import PacketOut, PipelineInstance
from repro.targets.runtime_api import RuntimeAPI
from repro.targets.switch import Switch, SwitchConfig


def compile_module(source: str, name: str = "<module>") -> Module:
    """Stage 1 (Fig. 4a): compile one µP4 module to µP4-IR."""
    return Up4Compiler().frontend(source, name)


def save_ir(module: Module) -> str:
    """Serialize a compiled module to µP4-IR JSON."""
    return dump_module(module)


def load_ir(text: str) -> Module:
    """Load µP4-IR JSON back into a checked module."""
    return load_module(text)


def compose_modules(
    main: Module,
    libraries: Optional[List[Module]] = None,
    monolithic: bool = False,
) -> ComposedPipeline:
    """Link and run the midend, returning the composed pipeline."""
    compiler = Up4Compiler(CompilerOptions(monolithic=monolithic))
    linked = compiler.link(main, libraries)
    return compiler.midend(linked)


@dataclass
class Dataplane:
    """An executable dataplane: switch + control API + compile artifacts."""

    compile_result: CompileResult
    instance: PipelineInstance
    switch: Switch
    api: RuntimeAPI = field(init=False)

    def __post_init__(self) -> None:
        self.api = self.switch.api

    @property
    def composed(self) -> ComposedPipeline:
        return self.compile_result.composed

    @property
    def target_output(self):
        return self.compile_result.target_output

    def inject(
        self,
        packet: Union[Packet, bytes],
        in_port: int = 0,
        trace: Optional[PacketTrace] = None,
    ) -> List[PacketOut]:
        """Send one packet through the dataplane."""
        if isinstance(packet, (bytes, bytearray)):
            packet = Packet(bytes(packet))
        return self.switch.inject(packet, in_port, trace)

    def inject_traced(
        self, packet: Union[Packet, bytes], in_port: int = 0
    ) -> "tuple[List[PacketOut], PacketTrace]":
        """Send one packet through and return its event trace too."""
        trace = PacketTrace()
        outputs = self.inject(packet, in_port, trace)
        return outputs, trace

    def set_multicast_group(self, group_id: int, ports: Sequence[int]) -> None:
        self.switch.set_multicast_group(group_id, list(ports))


def build_dataplane(
    main: Module,
    libraries: Optional[List[Module]] = None,
    target: str = "v1model",
    monolithic: bool = False,
    options: Optional[CompilerOptions] = None,
    switch_config: Optional[SwitchConfig] = None,
    tracer: Optional["Tracer"] = None,
) -> Dataplane:
    """Stage 2 (Fig. 4b): compose, compile for a target, make it runnable."""
    opts = options or CompilerOptions(target=target, monolithic=monolithic)
    compiler = Up4Compiler(opts, tracer=tracer)
    result = compiler.compile_modules(main, libraries)
    instance = PipelineInstance(result.composed)
    switch = Switch(instance, switch_config)
    return Dataplane(compile_result=result, instance=instance, switch=switch)
