"""µP4 core: the public compiler driver and the µPA architecture.

This package is the paper's primary contribution surface:

* :mod:`~repro.core.api` — the two-stage compile flow of Fig. 4:
  ``compile_module`` (µP4 source → µP4-IR) and ``build_dataplane``
  (compose modules, run the midend, target a backend, and return an
  executable dataplane with its control API).
* :mod:`~repro.core.arch` — µPA: interfaces, logical externs and
  intrinsic metadata (Figs. 5, 6 and 11).
* :mod:`~repro.core.driver` — the µP4C pass manager.
"""

from repro.core.api import (
    Dataplane,
    build_dataplane,
    compile_module,
    compose_modules,
    load_ir,
    save_ir,
)
from repro.core.arch import ARCHITECTURE, describe_architecture
from repro.core.driver import CompilerOptions, Up4Compiler

__all__ = [
    "Dataplane",
    "build_dataplane",
    "compile_module",
    "compose_modules",
    "load_ir",
    "save_ir",
    "ARCHITECTURE",
    "describe_architecture",
    "CompilerOptions",
    "Up4Compiler",
]
