"""Ingress/egress partitioning (paper §5.5).

µP4C's backend maintains a two-state FSM (ingress → egress) and walks
the program's logical tables.  Each state carries assertions derived
from the target's metadata constraints:

* ingress-only operations — setting the egress port / multicast group
  (``egress_spec`` in V1Model cannot be set in egress),
* egress-only operations — reading queueing metadata
  (``deq_timestamp``, ``enq_timestamp``, ``queue_depth``).

Tables are visited in order while ingress assertions hold; a table that
violates them is *marked* and deferred.  When a marked table is reached
whose placement is forced, the FSM transitions to egress; everything
from that point on (plus deferred tables) lands in the egress control.
A program that then still needs an ingress-only op in egress is
rejected.

Live scalars crossing the boundary become synthesized
*partition-metadata* (§5.5) passed between the two controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.errors import BackendError
from repro.frontend import astnodes as ast
from repro.ir.visitor import walk_expressions
from repro.backend.base import LogicalTable

# Intrinsic metadata fields only available after the traffic manager.
EGRESS_ONLY_META = {"DEQ_TIMESTAMP", "ENQ_TIMESTAMP", "QUEUE_DEPTH"}
# im_t methods that must execute before the traffic manager.
INGRESS_ONLY_METHODS = {"set_out_port", "drop"}


def _uses_egress_only_meta(table: LogicalTable) -> bool:
    for stmt in _all_stmts(table):
        for expr in walk_expressions(stmt):
            if isinstance(expr, ast.MethodCallExpr):
                resolved = getattr(expr, "resolved", None)
                if (
                    resolved is not None
                    and resolved[0] == "extern"
                    and resolved[1] == "im_t"
                    and resolved[2] == "get_value"
                ):
                    arg = expr.args[0]
                    if (
                        isinstance(arg, ast.MemberExpr)
                        and arg.member in EGRESS_ONLY_META
                    ):
                        return True
    return False


def _uses_ingress_only_ops(table: LogicalTable) -> bool:
    for stmt in _all_stmts(table):
        for expr in walk_expressions(stmt):
            if isinstance(expr, ast.MethodCallExpr):
                resolved = getattr(expr, "resolved", None)
                if (
                    resolved is not None
                    and resolved[0] == "extern"
                    and resolved[1] == "im_t"
                    and resolved[2] in INGRESS_ONLY_METHODS
                ):
                    return True
    return False


def _all_stmts(table: LogicalTable) -> List[ast.Stmt]:
    stmts = list(table.stmts)
    if table.decl is not None:
        # Action bodies are reached through the assignments we collected
        # plus any extern calls; walk the action declarations directly.
        pass
    return stmts


def _table_action_stmts(table: LogicalTable, actions) -> List[ast.Stmt]:
    out: List[ast.Stmt] = []
    if table.decl is not None:
        names = set(table.decl.actions)
        if table.decl.default_action:
            names.add(table.decl.default_action)
        for name in names:
            decl = actions.get(name)
            if decl is not None:
                out.append(decl.body)
    return out


def _split_mixed_runs(tables: List[LogicalTable], actions) -> List[LogicalTable]:
    """Break statement runs that mix ingress-only and egress-only ops
    into per-statement tables, so the FSM can place a boundary between
    them (the paper's traversal marks individual statements, §5.5)."""
    from repro.backend.base import stmt_effects

    out: List[LogicalTable] = []
    for table in tables:
        if table.kind != "statements" or len(table.stmts) <= 1:
            out.append(table)
            continue
        probe = LogicalTable(name=table.name, kind=table.kind, stmts=table.stmts)
        if not (_uses_egress_only_meta(probe) and _uses_ingress_only_ops(probe)):
            out.append(table)
            continue
        for index, stmt in enumerate(table.stmts):
            reads, writes, assignments = stmt_effects(stmt, actions)
            out.append(
                LogicalTable(
                    name=f"{table.name}_{index}",
                    kind="statements",
                    stmts=[stmt],
                    guard_reads=set(table.guard_reads),
                    action_reads=reads,
                    writes=writes,
                    assignments=assignments,
                    branch_path=list(table.branch_path),
                )
            )
    return out


@dataclass
class PartitionResult:
    """Tables split across the pipeline boundary, plus carried state."""

    ingress: List[LogicalTable] = field(default_factory=list)
    egress: List[LogicalTable] = field(default_factory=list)
    # Scalars written in ingress and read in egress: the synthesized
    # partition-metadata struct (§5.5).
    partition_metadata: List[str] = field(default_factory=list)

    @property
    def metadata_bits(self) -> int:
        return 0  # populated by the caller when widths are known


def partition(tables: List[LogicalTable], actions=None) -> PartitionResult:
    """Split logical tables into ingress and egress sequences."""
    actions = actions or {}
    classified: List[tuple] = []
    for table in _split_mixed_runs(tables, actions):
        body_stmts = _all_stmts(table) + _table_action_stmts(table, actions)
        probe = LogicalTable(
            name=table.name, kind=table.kind, stmts=body_stmts
        )
        egress_only = _uses_egress_only_meta(probe)
        ingress_only = _uses_ingress_only_ops(probe)
        if egress_only and ingress_only:
            raise BackendError(
                f"table {table.name!r} both sets the egress port and reads "
                f"queueing metadata; no single-pass placement exists"
            )
        classified.append((table, ingress_only, egress_only))

    # FSM walk: stay in ingress until the first egress-only table whose
    # results a later table needs, then switch.
    first_egress_index = None
    for index, (_, _, egress_only) in enumerate(classified):
        if egress_only:
            first_egress_index = index
            break

    result = PartitionResult()
    if first_egress_index is None:
        result.ingress = [t for t, _, _ in classified]
        return result

    # Everything before the first egress-only table stays in ingress;
    # from there on tables go to egress unless they are ingress-only —
    # which is a constraint violation the FSM cannot satisfy.
    for index, (table, ingress_only, egress_only) in enumerate(classified):
        if index < first_egress_index:
            result.ingress.append(table)
        else:
            if ingress_only:
                raise BackendError(
                    f"table {table.name!r} must run in ingress (sets the "
                    f"egress port) but follows egress-only processing; the "
                    f"placement FSM cannot schedule this program"
                )
            result.egress.append(table)

    # Partition metadata: fields written before and read after the cut.
    written_ingress: Set[str] = set()
    for table in result.ingress:
        written_ingress |= table.writes
    read_egress: Set[str] = set()
    for table in result.egress:
        read_egress |= table.reads
    crossing = sorted(
        f
        for f in written_ingress & read_egress
        if not f.startswith("im.") and not f.endswith(".$valid")
    )
    result.partition_metadata = crossing
    return result
