"""Global-parser reconstruction (paper §8.1).

The paper's most aggressive optimization: "µP4C can reconstruct a single
global parser by merging and concatenating all the parsers.  This global
parser can be executed in the programmable parser unit on the hardware
… With this, we expect the number of hardware stages needed for µP4
programs to match those for monolithic programs."

This module models that optimization at the resource-accounting level:

* **eligibility** — merging is possible only when every callee is
  invoked at a static packet offset (guaranteed post-composition) *and*
  module dispatch depends only on parsed header bytes, not on values
  the control plane computes at runtime (the paper's caveat: "may be
  difficult … when a µP4 program invokes different µP4 programs based
  on information provided by the control plane at runtime").  We check
  this on the logical tables: a parser MAT whose guard reads a field
  written by an earlier *match* table is not parser-expressible.
* **effect** — eligible parser MATs move into the (free) hardware
  parser: they vanish from stage scheduling and their match-crossbar
  demand disappears; their writes are treated like parser outputs.
  Deparser MATs remain — deparsing is still MAT-based in this scheme
  ("any metadata in callee µP4 programs can still be initialized by
  synthesizing MATs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.backend.base import LogicalTable
from repro.midend.inline import ComposedPipeline


@dataclass
class GlobalParserPlan:
    """Which parser MATs the hardware parser absorbs."""

    absorbed: List[str] = field(default_factory=list)
    ineligible: List[str] = field(default_factory=list)

    @property
    def applied(self) -> bool:
        return bool(self.absorbed)


def _parser_mat_names(composed: ComposedPipeline) -> Set[str]:
    return {mat.table.name for mat in composed.parser_mats.values()}


def plan_global_parser(
    composed: ComposedPipeline, tables: List[LogicalTable]
) -> GlobalParserPlan:
    """Decide which parser MATs can merge into a global parser."""
    plan = GlobalParserPlan()
    if composed.mode != "micro":
        return plan
    parser_names = _parser_mat_names(composed)
    # Fields written by match-stage processing (anything that is not a
    # parser MAT): a parser MAT guarded by such a field cannot be
    # hoisted into the parser.
    runtime_written: Set[str] = set()
    for table in tables:
        if table.name in parser_names:
            continue
        runtime_written |= table.writes
    for table in tables:
        if table.name not in parser_names:
            continue
        if table.guard_reads & runtime_written:
            plan.ineligible.append(table.name)
        else:
            plan.absorbed.append(table.name)
    return plan


def apply_global_parser(
    tables: List[LogicalTable], plan: GlobalParserPlan
) -> List[LogicalTable]:
    """Drop absorbed parser MATs from the schedulable table list.

    Their writes become parser outputs: no table is stage-ordered after
    them anymore (the hardware parser runs before stage 0).
    """
    absorbed = set(plan.absorbed)
    return [t for t in tables if t.name not in absorbed]
