"""Resource utilization reports (Tables 2 and 3).

:class:`TnaReport` bundles the PHV allocation, the split analysis and
the stage schedule for one compiled program.  :func:`overhead_row`
computes the paper's Table 2 metric:

    (usage(µP4) − usage(monolithic)) / usage(monolithic) × 100 %

per container size plus total allocated bits, and the Table 3 stage
counts come straight from the schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.backend.tna.phv import PhvAllocation
from repro.backend.tna.schedule import ScheduleResult
from repro.backend.tna.split import SplitResult


@dataclass
class TnaReport:
    """Compiled-program resource summary."""

    name: str
    mode: str
    phv: PhvAllocation
    split: SplitResult
    schedule: ScheduleResult
    global_parser_plan: Optional[object] = None

    @property
    def container_counts(self) -> Dict[int, int]:
        return self.phv.counts()

    @property
    def bits_allocated(self) -> int:
        return self.phv.bits_allocated

    @property
    def num_stages(self) -> int:
        return self.schedule.num_stages

    def summary(self) -> str:
        counts = self.container_counts
        return (
            f"{self.name} [{self.mode}]: "
            f"8b={counts[8]} 16b={counts[16]} 32b={counts[32]} "
            f"bits={self.bits_allocated} stages={self.num_stages} "
            f"splits={len(self.split.extra_depth)}"
        )

    def to_dict(self) -> Dict[str, object]:
        counts = self.container_counts
        return {
            "name": self.name,
            "mode": self.mode,
            "containers": {"8": counts[8], "16": counts[16], "32": counts[32]},
            "bits_allocated": self.bits_allocated,
            "stages": self.num_stages,
            "splits": len(self.split.extra_depth),
        }


def _pct(micro: int, mono: int) -> Optional[float]:
    if mono == 0:
        return None
    return (micro - mono) / mono * 100.0


@dataclass
class OverheadRow:
    """One row of Table 2 (plus the Table 3 stage counts)."""

    program: str
    pct_8b: Optional[float]
    pct_16b: Optional[float]
    pct_32b: Optional[float]
    pct_bits: Optional[float]
    stages_mono: int
    stages_micro: int

    def render(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return f"{v:8.2f}" if v is not None else "     n/a"

        return (
            f"{self.program:4s} {fmt(self.pct_8b)} {fmt(self.pct_16b)} "
            f"{fmt(self.pct_32b)} {fmt(self.pct_bits)}   "
            f"{self.stages_mono:2d} -> {self.stages_micro:2d}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "pct_8b": self.pct_8b,
            "pct_16b": self.pct_16b,
            "pct_32b": self.pct_32b,
            "pct_bits": self.pct_bits,
            "stages_mono": self.stages_mono,
            "stages_micro": self.stages_micro,
        }


def overhead_row(
    program: str, micro: TnaReport, mono: Optional[TnaReport]
) -> OverheadRow:
    """Table 2 percentages for one program (mono may have failed)."""
    if mono is None:
        return OverheadRow(
            program=program,
            pct_8b=None,
            pct_16b=None,
            pct_32b=None,
            pct_bits=None,
            stages_mono=0,
            stages_micro=micro.num_stages,
        )
    mc, bc = micro.container_counts, mono.container_counts
    return OverheadRow(
        program=program,
        pct_8b=_pct(mc[8], bc[8]),
        pct_16b=_pct(mc[16], bc[16]),
        pct_32b=_pct(mc[32], bc[32]),
        pct_bits=_pct(micro.bits_allocated, mono.bits_allocated),
        stages_mono=mono.num_stages,
        stages_micro=micro.num_stages,
    )
