"""Tofino resource envelope.

Numbers follow the publicly documented Tofino-1 figures (RMT paper,
"Programmable Data Plane at Terabit Speeds" slides): 224 PHV containers
(64×8b, 96×16b, 64×32b), 12 MAU stages, 16 logical tables per stage,
and action ALUs that combine at most two PHV sources into one
destination container per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TofinoDescriptor:
    """Resource parameters of the modeled Tofino pipeline."""

    containers: Dict[int, int] = field(
        default_factory=lambda: {8: 64, 16: 96, 32: 64}
    )
    num_stages: int = 12
    tables_per_stage: int = 16
    # Match crossbar budgets per stage, in bits (128 B exact / 66 B ternary).
    exact_crossbar_bits: int = 1024
    ternary_crossbar_bits: int = 528
    # An action ALU writes one container from at most this many PHV sources.
    max_alu_sources: int = 2

    @property
    def total_container_bits(self) -> int:
        return sum(size * count for size, count in self.containers.items())

    def scaled(self, factor: float) -> "TofinoDescriptor":
        """A descriptor with container pools scaled by ``factor`` —
        used by ablation benches to probe where programs stop fitting."""
        return TofinoDescriptor(
            containers={
                size: max(1, int(count * factor))
                for size, count in self.containers.items()
            },
            num_stages=self.num_stages,
            tables_per_stage=self.tables_per_stage,
            exact_crossbar_bits=self.exact_crossbar_bits,
            ternary_crossbar_bits=self.ternary_crossbar_bits,
            max_alu_sources=self.max_alu_sources,
        )
