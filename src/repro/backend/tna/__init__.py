"""TNA (Tofino Native Architecture) backend (§6.3).

Models the resource-relevant behaviour of ``bf-p4c`` on an RMT pipeline:

* :mod:`~repro.backend.tna.descriptor` — the chip's resource envelope
  (PHV container pools, per-ALU source limits, MAU stages, crossbars).
* :mod:`~repro.backend.tna.phv` — PHV container allocation, including
  the µP4C field-alignment pass that re-sizes byte-stack and header
  fields to 16-bit containers (§6.3).
* :mod:`~repro.backend.tna.split` — detection and costing of "complex
  assignments" that feed one destination container from more source
  containers than an action ALU can read, and the series-of-MATs fix.
* :mod:`~repro.backend.tna.schedule` — MAT dependency analysis and
  greedy stage assignment (Table 3).
* :mod:`~repro.backend.tna.report` — the utilization report behind
  Table 2.
"""

from repro.backend.tna.descriptor import TofinoDescriptor
from repro.backend.tna.phv import PhvAllocation, allocate_phv
from repro.backend.tna.split import SplitResult, analyze_assignments
from repro.backend.tna.schedule import ScheduleResult, schedule_stages
from repro.backend.tna.report import TnaReport, overhead_row

from dataclasses import dataclass
from typing import Optional

from repro.backend.base import extract_logical_tables
from repro.midend.inline import ComposedPipeline


class TnaBackend:
    """End-to-end TNA compilation: PHV, ALU legality, stages."""

    name = "tna"

    def __init__(
        self,
        descriptor: Optional[TofinoDescriptor] = None,
        align_fields: bool = True,
        split_assignments: bool = True,
        global_parser: bool = False,
    ) -> None:
        self.descriptor = descriptor or TofinoDescriptor()
        self.align_fields = align_fields
        self.split_assignments = split_assignments
        self.global_parser = global_parser

    def compile(self, composed: ComposedPipeline) -> TnaReport:
        """Allocate and schedule ``composed``; raises ResourceError on
        an infeasible program (the paper's "failed to compile")."""
        from repro.backend.tna.global_parser import (
            apply_global_parser,
            plan_global_parser,
        )

        tables = extract_logical_tables(composed)
        gp_plan = None
        if self.global_parser:
            gp_plan = plan_global_parser(composed, tables)
            tables = apply_global_parser(tables, gp_plan)
        phv = allocate_phv(composed, self.descriptor, align=self.align_fields)
        split = analyze_assignments(
            tables, phv, self.descriptor, enabled=self.split_assignments
        )
        phv.add_temporaries(split.temp_bits)
        phv.check_capacity(self.descriptor)
        schedule = schedule_stages(tables, split, self.descriptor)
        return TnaReport(
            name=composed.name,
            mode=composed.mode,
            phv=phv,
            split=split,
            schedule=schedule,
            global_parser_plan=gp_plan,
        )


__all__ = [
    "TnaBackend",
    "TnaReport",
    "TofinoDescriptor",
    "PhvAllocation",
    "allocate_phv",
    "SplitResult",
    "analyze_assignments",
    "ScheduleResult",
    "schedule_stages",
    "overhead_row",
]
