"""PHV container allocation (§6.3).

Models how ``bf-p4c`` lays dataplane state out in Packet Header Vector
containers of 8, 16 and 32 bits, for the two program styles the paper
compares:

* **monolithic** — headers are packed *contiguously*: each header's
  byte span is covered greedily with the largest containers (this is
  why monolithic programs dominate 32-bit container usage in Table 2);
  scalar metadata gets best-fit containers per field.
* **µP4 (micro)** — the byte stack plus every module's header copies
  live in the PHV.  With the backend's *field-alignment pass* enabled
  (the paper's fix for action-ALU pressure), byte-stack slots are
  merged pairwise into 16-bit containers and every field is re-sized to
  16-bit chunks — hence the ~3× 16-bit container inflation and the
  near-zero 32-bit usage that Table 2 reports.

The allocation records, for every field, which containers cover which
bit ranges; the split pass uses this to count ALU sources per
destination container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ResourceError
from repro.frontend import astnodes as ast
from repro.midend.bytestack import BS_INSTANCE
from repro.midend.inline import ComposedPipeline
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.obs.metrics import METRICS

# (container_id, hi, lo): the container covers field bits hi..lo (LSB 0).
Span = Tuple[str, int, int]


@dataclass
class PhvAllocation:
    """Result of PHV allocation for one program."""

    mode: str
    align: bool
    # container id -> size in bits
    containers: Dict[str, int] = field(default_factory=dict)
    # field name -> covering spans (MSB-first)
    layout: Dict[str, List[Span]] = field(default_factory=dict)
    field_widths: Dict[str, int] = field(default_factory=dict)
    temp_bits: int = 0

    # ------------------------------------------------------------------
    def counts(self) -> Dict[int, int]:
        out = {8: 0, 16: 0, 32: 0}
        for size in self.containers.values():
            out[size] += 1
        return out

    @property
    def bits_allocated(self) -> int:
        return sum(self.containers.values())

    @property
    def bits_used(self) -> int:
        return sum(self.field_widths.values())

    # ------------------------------------------------------------------
    def spans_of(self, field_name: str) -> List[Span]:
        return self.layout.get(field_name, [])

    def sources_for(self, field_name: str, hi: int, lo: int) -> Set[str]:
        """Containers feeding bits ``hi..lo`` of ``field_name``."""
        out: Set[str] = set()
        for cid, span_hi, span_lo in self.spans_of(field_name):
            if span_lo <= hi and lo <= span_hi:
                out.add(cid)
        return out

    def add_temporaries(self, bits: int) -> None:
        """Account PHV for split-pass temporaries (16-bit each)."""
        self.temp_bits += bits
        index = 0
        while bits > 0:
            cid = f"tmp{len(self.containers)}_{index}"
            self.containers[cid] = 16
            bits -= 16
            index += 1
        METRICS.set_gauge("tna.phv.containers_allocated", len(self.containers))
        METRICS.set_gauge("tna.phv.bits_allocated", self.bits_allocated)

    # ------------------------------------------------------------------
    def check_capacity(self, desc: TofinoDescriptor) -> None:
        """Fit container demand into the chip pools, spilling smaller
        demands into larger containers when a pool runs out."""
        demand = self.counts()
        avail = dict(desc.containers)
        for size in (8, 16, 32):
            need = demand.get(size, 0)
            take = min(need, avail[size])
            avail[size] -= take
            overflow = need - take
            if overflow:
                spilled = False
                for bigger in (16, 32):
                    if bigger > size and avail.get(bigger, 0) >= overflow:
                        avail[bigger] -= overflow
                        overflow = 0
                        spilled = True
                        break
                if not spilled:
                    raise ResourceError(
                        f"PHV allocation failed: {demand[size]}x{size}b "
                        f"containers requested, pools exhausted "
                        f"(demand {demand}, chip {desc.containers})"
                    )


# ======================================================================
# Allocation strategies
# ======================================================================


def _chunks_greedy(width: int) -> List[int]:
    """Cover ``width`` bits contiguously with the largest containers."""
    out: List[int] = []
    rem = width
    while rem >= 32:
        out.append(32)
        rem -= 32
    if rem > 16:
        out.append(32)
        rem = 0
    elif rem > 8:
        out.append(16)
        rem = 0
    elif rem > 0:
        out.append(8)
        rem = 0
    return out


def _chunks_bestfit(width: int) -> List[int]:
    """Best-fit containers for an isolated field."""
    if width <= 8:
        return [8]
    if width <= 16:
        return [16]
    if width <= 32:
        return [32]
    return _chunks_greedy(width)


def _chunks_align16(width: int) -> List[int]:
    """The alignment pass: re-size fields to 16-bit-aligned containers.

    Fields wider than 32 bits keep 32-bit chunks where possible (each is
    still fed from two aligned 16-bit stack containers, which satisfies
    the ALU source limit); everything else lands in 16-bit containers.
    This mirrors the paper's observation that µP4 programs end up
    dominated by 16b containers with only residual 32b usage.
    """
    if width <= 8:
        return [8]
    if width <= 16:
        return [16]
    if width <= 32:
        return [32]
    count, rem = divmod(width, 16)
    return [16] * count + ([16] if rem else [])


def _flatten_fields(name: str, vtype: ast.Type) -> List[Tuple[str, int]]:
    """(field name, width) pairs for one pipeline variable."""
    if isinstance(vtype, ast.BitType):
        return [(name, vtype.width)]
    if isinstance(vtype, ast.BoolType):
        return [(name, 1)]
    if isinstance(vtype, (ast.HeaderType, ast.StructType)):
        out: List[Tuple[str, int]] = []
        for fname, ftype in vtype.fields:
            out.extend(_flatten_fields(f"{name}.{fname}", ftype))
        return out
    return []  # externs carry no PHV state


class _Allocator:
    def __init__(self, alloc: PhvAllocation) -> None:
        self.alloc = alloc
        self.counter = 0

    def new_container(self, size: int) -> str:
        cid = f"c{self.counter}_{size}"
        self.counter += 1
        self.alloc.containers[cid] = size
        return cid

    def place_field(self, name: str, width: int, chunks: List[int]) -> None:
        """Allocate dedicated containers for one field."""
        self.alloc.field_widths[name] = width
        spans: List[Span] = []
        hi = width - 1
        for size in chunks:
            lo = max(hi - size + 1, 0)
            spans.append((self.new_container(size), hi, lo))
            hi = lo - 1
            if hi < 0:
                break
        self.alloc.layout[name] = spans

    def place_header_contiguous(
        self, prefix: str, header: ast.HeaderType
    ) -> None:
        """Pack a whole header into a contiguous container run."""
        total = header.fixed_bit_width
        chunk_sizes = _chunks_greedy(total)
        # Container spans over the header, MSB-based offsets.
        spans: List[Tuple[str, int, int]] = []  # (cid, start, end) MSB-based
        pos = 0
        for size in chunk_sizes:
            cid = self.new_container(size)
            spans.append((cid, pos, min(pos + size, total)))
            pos += size
        offset = 0
        for fname, ftype in header.fields:
            assert isinstance(ftype, ast.BitType)
            width = ftype.width
            name = f"{prefix}.{fname}"
            self.alloc.field_widths[name] = width
            field_spans: List[Span] = []
            for cid, start, end in spans:
                a = max(start, offset)
                b = min(end, offset + width)
                if a < b:
                    field_spans.append(
                        (cid, width - 1 - (a - offset), width - (b - offset))
                    )
            self.alloc.layout[name] = field_spans
            offset += width


def allocate_phv(
    composed: ComposedPipeline,
    desc: Optional[TofinoDescriptor] = None,
    align: bool = True,
) -> PhvAllocation:
    """Allocate PHV containers for every pipeline variable."""
    alloc = PhvAllocation(mode=composed.mode, align=align)
    allocator = _Allocator(alloc)

    for name, vtype in composed.variables.items():
        if name == BS_INSTANCE and isinstance(vtype, ast.HeaderType):
            _allocate_byte_stack(allocator, vtype, align)
            continue
        if composed.mode == "monolithic" and isinstance(vtype, ast.HeaderType):
            allocator.place_header_contiguous(name, vtype)
            continue
        for fname, width in _flatten_fields(name, vtype):
            if composed.mode == "micro" and align:
                chunks = _chunks_align16(width)
            else:
                chunks = _chunks_bestfit(width)
            allocator.place_field(fname, width, chunks)
    METRICS.set_gauge("tna.phv.containers_allocated", len(alloc.containers))
    METRICS.set_gauge("tna.phv.bits_allocated", alloc.bits_allocated)
    METRICS.set_gauge("tna.phv.bits_used", alloc.bits_used)
    return alloc


def _allocate_byte_stack(
    allocator: _Allocator, bs_type: ast.HeaderType, align: bool
) -> None:
    """Byte-stack slots: one 8b container each, or merged 16b pairs."""
    slots = [fname for fname, _ in bs_type.fields]
    if not align:
        for fname in slots:
            allocator.place_field(f"{BS_INSTANCE}.{fname}", 8, [8])
        return
    for pair_start in range(0, len(slots), 2):
        pair = slots[pair_start : pair_start + 2]
        if len(pair) == 2:
            cid = allocator.new_container(16)
            hi_name = f"{BS_INSTANCE}.{pair[0]}"
            lo_name = f"{BS_INSTANCE}.{pair[1]}"
            allocator.alloc.field_widths[hi_name] = 8
            allocator.alloc.field_widths[lo_name] = 8
            allocator.alloc.layout[hi_name] = [(cid, 7, 0)]
            allocator.alloc.layout[lo_name] = [(cid, 7, 0)]
        else:
            allocator.place_field(f"{BS_INSTANCE}.{pair[0]}", 8, [8])
