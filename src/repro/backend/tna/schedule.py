"""MAU stage scheduling (Table 3).

Logical tables are placed greedily into pipeline stages under RMT
ordering rules:

* a *match dependency* (an earlier table writes a field this table
  matches or is predicated on) forces the next stage,
* an *action dependency* (write/read or write/write overlap between
  actions) also forces the next stage,
* independent tables may share a stage subject to per-stage capacity:
  the logical-table count and the exact/ternary match crossbar budgets.

Tables that the split pass rewrote into a series of MATs occupy extra
consecutive stages (their combine-tree depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ResourceError
from repro.backend.base import LogicalTable
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.backend.tna.split import SplitResult
from repro.obs.metrics import METRICS


@dataclass
class StageUse:
    tables: List[str] = field(default_factory=list)
    exact_bits: int = 0
    ternary_bits: int = 0


@dataclass
class ScheduleResult:
    """Stage placement of every logical table."""

    placement: Dict[str, int] = field(default_factory=dict)
    stages: List[StageUse] = field(default_factory=list)
    dependencies: List[tuple] = field(default_factory=list)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def tables_in_stage(self, stage: int) -> List[str]:
        return self.stages[stage].tables if stage < len(self.stages) else []


def _crossbar_demand(table: LogicalTable) -> tuple:
    """(exact_bits, ternary_bits) the table needs on the match crossbar."""
    exact = 0
    ternary = 0
    if table.decl is None:
        return 0, 0
    for key, kind in zip(table.decl.keys, table.match_kinds):
        width = 0
        t = key.expr.type
        if hasattr(t, "width"):
            width = t.width  # type: ignore[union-attr]
        elif t is not None and type(t).__name__ == "BoolType":
            width = 1
        if kind in ("ternary", "lpm", "range"):
            ternary += width
        else:
            exact += width
    return exact, ternary


def schedule_stages(
    tables: List[LogicalTable],
    split: Optional[SplitResult],
    desc: TofinoDescriptor,
) -> ScheduleResult:
    """Greedy dependency-respecting stage assignment."""
    result = ScheduleResult()
    # effective_end[name]: last stage a table (plus its split chain) uses.
    effective_end: Dict[str, int] = {}
    placed: List[LogicalTable] = []

    for table in tables:
        earliest = 0
        for earlier in placed:
            dep = table.depends_on(earlier)
            if dep is not None:
                earliest = max(earliest, effective_end[earlier.name] + 1)
                result.dependencies.append((earlier.name, table.name, dep))
        exact, ternary = _crossbar_demand(table)
        stage = earliest
        while True:
            while len(result.stages) <= stage:
                result.stages.append(StageUse())
            use = result.stages[stage]
            if (
                len(use.tables) < desc.tables_per_stage
                and use.exact_bits + exact <= desc.exact_crossbar_bits
                and use.ternary_bits + ternary <= desc.ternary_crossbar_bits
            ):
                break
            stage += 1
        use = result.stages[stage]
        use.tables.append(table.name)
        use.exact_bits += exact
        use.ternary_bits += ternary
        result.placement[table.name] = stage
        extra = split.extra_depth.get(table.name, 0) if split else 0
        end = stage + extra
        while len(result.stages) <= end:
            result.stages.append(StageUse())
        for chain_stage in range(stage + 1, end + 1):
            result.stages[chain_stage].tables.append(f"{table.name}$split")
        effective_end[table.name] = end
        placed.append(table)

    METRICS.set_gauge("tna.schedule.stages_used", result.num_stages)
    METRICS.set_gauge("tna.schedule.dependencies", len(result.dependencies))
    for use in result.stages:
        METRICS.observe("tna.schedule.stage_occupancy", len(use.tables))
    if result.num_stages > desc.num_stages:
        raise ResourceError(
            f"program needs {result.num_stages} MAU stages; the target has "
            f"{desc.num_stages}"
        )
    return result
