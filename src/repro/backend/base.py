"""Backend-shared analysis: logical tables and their dataflow.

Both the partitioning pass (§5.5) and the TNA stage scheduler (§6.3)
view a composed pipeline as an ordered list of *logical tables*: the
user and synthesized MATs plus "action-only tables" formed from runs of
bare statements.  Each logical table carries read/write field sets
(canonical dotted names; header validity is the pseudo-field
``<hdr>.$valid``, intrinsic metadata is ``im.<field>``), which drive
dependency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import BackendError
from repro.frontend import astnodes as ast
from repro.ir.printer import expr_text
from repro.ir.visitor import walk_expressions
from repro.midend.inline import ComposedPipeline


@dataclass
class LogicalTable:
    """One schedulable unit: a MAT or a run of straight-line statements."""

    name: str
    kind: str  # "match" | "statements"
    decl: Optional[ast.TableDecl] = None
    stmts: List[ast.Stmt] = field(default_factory=list)
    key_reads: Set[str] = field(default_factory=set)
    guard_reads: Set[str] = field(default_factory=set)
    action_reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    assignments: List[ast.AssignStmt] = field(default_factory=list)
    match_kinds: List[str] = field(default_factory=list)
    key_bits: int = 0
    entries: int = 0
    # Enclosing branch arms: (branch_id, arm_index) per if/switch level.
    branch_path: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def reads(self) -> Set[str]:
        return self.key_reads | self.guard_reads | self.action_reads

    def depends_on(self, earlier: "LogicalTable") -> Optional[str]:
        """Dependency of self on an earlier table, or None.

        * match dependency — the earlier table writes a field this one
          matches on (or is guarded by),
        * action dependency — the earlier table writes a field this
          one's actions *read* (RAW).

        Write-after-write and write-after-read pairs may share a stage
        under RMT's ordered-priority semantics (Bosshart et al.), which
        is how e.g. mutually exclusive IPv4/IPv6 tables that both set
        the next hop co-reside in one stage.
        """
        if self.exclusive_with(earlier):
            return None
        if earlier.writes & (self.key_reads | self.guard_reads):
            return "match"
        if earlier.writes & self.action_reads:
            return "action"
        return None

    def exclusive_with(self, other: "LogicalTable") -> bool:
        """True when the two tables sit in different arms of the same
        conditional and can therefore never both execute (bf-p4c's
        mutual-exclusion analysis lets such tables share stages)."""
        arms = dict(self.branch_path)
        for branch_id, arm in other.branch_path:
            if branch_id in arms and arms[branch_id] != arm:
                return True
        return False


# ======================================================================
# Field collection
# ======================================================================


def _root_name(expr: ast.Expr) -> Optional[str]:
    while isinstance(expr, (ast.MemberExpr, ast.IndexExpr, ast.SliceExpr)):
        expr = expr.base
    if isinstance(expr, ast.PathExpr):
        return expr.name
    return None


def field_name(expr: ast.Expr) -> Optional[str]:
    """Canonical field name for a data lvalue, or None for non-data."""
    if isinstance(expr, ast.SliceExpr):
        return field_name(expr.base)
    if isinstance(expr, ast.PathExpr):
        if isinstance(expr.type, ast.ExternType):
            return None
        return expr.name
    if isinstance(expr, ast.MemberExpr):
        base = field_name(expr.base)
        if base is None:
            return None
        return f"{base}.{expr.member}"
    return None


def expr_reads(expr: ast.Expr) -> Set[str]:
    """All data fields an expression reads (validity included)."""
    reads: Set[str] = set()
    for node in walk_expressions(expr):
        if isinstance(node, ast.MethodCallExpr):
            resolved = getattr(node, "resolved", None)
            if resolved is not None and resolved[0] == "header_op":
                if resolved[1] == "isValid":
                    target = node.target
                    assert isinstance(target, ast.MemberExpr)
                    base = field_name(target.base)
                    if base is not None:
                        reads.add(f"{base}.$valid")
        elif isinstance(node, ast.MemberExpr):
            name = field_name(node)
            if name is not None and isinstance(
                node.type, (ast.BitType, ast.BoolType)
            ):
                reads.add(name)
        elif isinstance(node, ast.PathExpr):
            if isinstance(node.type, (ast.BitType, ast.BoolType)):
                decl = getattr(node, "decl", None)
                if decl is not None and getattr(decl, "kind", "") == "const":
                    continue
                reads.add(node.name)
    return reads


def stmt_effects(
    stmt: ast.Stmt, actions: Dict[str, ast.ActionDecl]
) -> Tuple[Set[str], Set[str], List[ast.AssignStmt]]:
    """(reads, writes, assignments) of one leaf statement."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    assignments: List[ast.AssignStmt] = []

    def visit(s: ast.Stmt, bound: Set[str]) -> None:
        if isinstance(s, ast.BlockStmt):
            for inner in s.stmts:
                visit(inner, bound)
        elif isinstance(s, ast.AssignStmt):
            target = field_name(s.lhs)
            if target is not None and target.split(".")[0] not in bound:
                writes.add(target)
            reads.update(r for r in expr_reads(s.rhs) if r.split(".")[0] not in bound)
            if isinstance(s.lhs, ast.SliceExpr):
                if target is not None:
                    reads.add(target)  # read-modify-write
            assignments.append(s)
        elif isinstance(s, ast.VarDeclStmt):
            if s.init is not None:
                reads.update(expr_reads(s.init))
                writes.add(s.name)
        elif isinstance(s, ast.MethodCallStmt):
            _call_effects(s.call, reads, writes, assignments, bound)
        elif isinstance(s, ast.IfStmt):
            reads.update(expr_reads(s.cond))
            visit(s.then_body, bound)
            if s.else_body is not None:
                visit(s.else_body, bound)
        elif isinstance(s, ast.SwitchStmt):
            reads.update(expr_reads(s.subject))
            for case in s.cases:
                if case.body is not None:
                    visit(case.body, bound)
        elif isinstance(s, (ast.EmptyStmt, ast.ReturnStmt, ast.ExitStmt)):
            pass
        else:
            raise BackendError(f"cannot analyze {type(s).__name__}")

    def _call_effects(call, creads, cwrites, cassigns, bound):
        resolved = getattr(call, "resolved", None)
        if resolved is None:
            raise BackendError("unresolved call in backend analysis")
        kind = resolved[0]
        if kind == "header_op":
            target = call.target
            base = field_name(target.base)
            if base is None:
                return
            if resolved[1] in ("setValid", "setInvalid"):
                cwrites.add(f"{base}.$valid")
            else:
                creads.add(f"{base}.$valid")
        elif kind == "action":
            decl: ast.ActionDecl = resolved[1]
            for arg in call.args:
                creads.update(expr_reads(arg))
            inner_bound = bound | {p.name for p in decl.params}
            visit(decl.body, inner_bound)
        elif kind == "extern":
            _, extern, method = resolved
            for arg in call.args:
                creads.update(expr_reads(arg))
            if extern == "im_t":
                if method.startswith("set_") or method == "drop":
                    cwrites.add("im.out")
                elif method.startswith("get_"):
                    creads.add("im.meta")
            elif extern == "register":
                base = field_name(call.target.base)
                if base is not None:
                    if method == "write":
                        cwrites.add(f"{base}.$data")
                    else:  # read: writes its out argument, reads state
                        creads.add(f"{base}.$data")
                        out_arg = field_name(call.args[0]) if call.args else None
                        if out_arg is not None:
                            cwrites.add(out_arg)
            # pkt / mc_engine effects are opaque to stage scheduling.
        elif kind == "builtin":
            # recirculate(data): reads its arguments, resubmits the packet.
            for arg in call.args:
                creads.update(expr_reads(arg))
            cwrites.add("im.out")
        elif kind == "table":
            raise BackendError(
                "table apply inside analyzed statement run; split first"
            )
        else:
            raise BackendError(f"unhandled call kind {kind!r}")

    visit(stmt, set())
    return reads, writes, assignments


# ======================================================================
# Logical table extraction
# ======================================================================


def _table_effects(
    decl: ast.TableDecl, actions: Dict[str, ast.ActionDecl]
) -> Tuple[Set[str], Set[str], Set[str], List[ast.AssignStmt], int]:
    key_reads: Set[str] = set()
    key_bits = 0
    for key in decl.keys:
        key_reads.update(expr_reads(key.expr))
        t = key.expr.type
        if isinstance(t, ast.BitType):
            key_bits += t.width
        elif isinstance(t, ast.BoolType):
            key_bits += 1
    action_reads: Set[str] = set()
    writes: Set[str] = set()
    assignments: List[ast.AssignStmt] = []
    names = set(decl.actions)
    if decl.default_action:
        names.add(decl.default_action)
    for aname in names:
        adecl = actions.get(aname)
        if adecl is None:
            continue
        reads, awrites, aassigns = stmt_effects(
            ast.MethodCallStmt(
                call=_fake_action_call(adecl)
            ),
            actions,
        )
        action_reads.update(reads)
        writes.update(awrites)
        assignments.extend(aassigns)
    return key_reads, action_reads, writes, assignments, key_bits


def _fake_action_call(decl: ast.ActionDecl) -> ast.MethodCallExpr:
    call = ast.MethodCallExpr(
        target=ast.PathExpr(name=decl.name),
        args=[_zero_arg(p) for p in decl.params],
    )
    call.resolved = ("action", decl)  # type: ignore[attr-defined]
    return call


def _zero_arg(param: ast.Param) -> ast.Expr:
    lit = ast.IntLit(value=0, width=None)
    lit.type = param.param_type
    return lit


def extract_logical_tables(composed: ComposedPipeline) -> List[LogicalTable]:
    """Flatten a composed pipeline into ordered logical tables."""
    tables: List[LogicalTable] = []
    actions = composed.actions
    run: List[ast.Stmt] = []
    run_guard: Set[str] = set()
    run_branch: List[Tuple[int, int]] = []
    counter = [0]
    branch_counter = [0]

    def flush_run() -> None:
        if not run:
            return
        reads: Set[str] = set()
        writes: Set[str] = set()
        assignments: List[ast.AssignStmt] = []
        for s in run:
            r, w, a = stmt_effects(s, actions)
            reads |= r
            writes |= w
            assignments.extend(a)
        counter[0] += 1
        tables.append(
            LogicalTable(
                name=f"stmts_{counter[0]}",
                kind="statements",
                stmts=list(run),
                guard_reads=set(run_guard),
                action_reads=reads,
                writes=writes,
                assignments=assignments,
                branch_path=list(run_branch),
            )
        )
        run.clear()

    def visit(stmt: ast.Stmt, guard: Set[str], branch: List[Tuple[int, int]]) -> None:
        nonlocal run_guard, run_branch
        if isinstance(stmt, ast.BlockStmt):
            for inner in stmt.stmts:
                visit(inner, guard, branch)
            return
        if isinstance(stmt, ast.IfStmt):
            flush_run()
            inner_guard = guard | expr_reads(stmt.cond)
            branch_counter[0] += 1
            bid = branch_counter[0]
            visit(stmt.then_body, inner_guard, branch + [(bid, 0)])
            flush_run()
            if stmt.else_body is not None:
                visit(stmt.else_body, inner_guard, branch + [(bid, 1)])
                flush_run()
            return
        if isinstance(stmt, ast.SwitchStmt):
            flush_run()
            inner_guard = guard | expr_reads(stmt.subject)
            branch_counter[0] += 1
            bid = branch_counter[0]
            for arm, case in enumerate(stmt.cases):
                if case.body is not None:
                    visit(case.body, inner_guard, branch + [(bid, arm)])
                    flush_run()
            return
        if isinstance(stmt, ast.MethodCallStmt):
            resolved = getattr(stmt.call, "resolved", None)
            if resolved is not None and resolved[0] == "table":
                flush_run()
                decl: ast.TableDecl = resolved[1]
                key_reads, action_reads, writes, assignments, key_bits = (
                    _table_effects(decl, actions)
                )
                tables.append(
                    LogicalTable(
                        name=decl.name,
                        kind="match",
                        decl=decl,
                        key_reads=key_reads,
                        guard_reads=set(guard),
                        action_reads=action_reads,
                        writes=writes,
                        assignments=assignments,
                        match_kinds=[k.match_kind for k in decl.keys],
                        key_bits=key_bits,
                        entries=len(decl.const_entries) + (decl.size or 0),
                        branch_path=list(branch),
                    )
                )
                return
        run_guard = set(guard)
        run_branch = list(branch)
        run.append(stmt)

    for stmt in composed.statements:
        visit(stmt, set(), [])
    flush_run()
    return tables
