"""µP4C backends: target-specific translation and allocation (§5.5, §6.3).

* :mod:`~repro.backend.base` — logical-table extraction and dataflow
  summaries shared by all backends.
* :mod:`~repro.backend.partition` — ingress/egress partitioning FSM and
  partition-metadata synthesis (§5.5, V1Model reference flow).
* :mod:`~repro.backend.v1model` — V1Model code generation.
* :mod:`~repro.backend.tna` — Tofino Native Architecture backend:
  field alignment, assignment splitting, PHV allocation and MAU stage
  scheduling, with the resource reports behind Tables 2 and 3.
"""

from repro.backend.base import LogicalTable, extract_logical_tables
from repro.backend.partition import PartitionResult, partition
from repro.backend.v1model import V1ModelBackend
from repro.backend.tna import TnaBackend, TnaReport

__all__ = [
    "LogicalTable",
    "extract_logical_tables",
    "PartitionResult",
    "partition",
    "V1ModelBackend",
    "TnaBackend",
    "TnaReport",
]
