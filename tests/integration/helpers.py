"""Shared helpers for integration tests: pipelines, entries, packets.

The entry sets installed here give every composition (P1–P7) a small but
meaningful FIB/rule set, with per-mode action names where the monolithic
program had to rename a colliding action (e.g. the two ``process``
actions of the IPv4/IPv6 modules become ``process_v4``/``process_v6``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lib.catalog import build_monolithic, build_pipeline
from repro.net.build import PacketBuilder
from repro.net.ethernet import mac
from repro.net.ipv4 import ip4
from repro.net.ipv6 import ip6
from repro.net.srv6 import srh_bytes
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI

MAC_A = "02:00:00:00:00:aa"
MAC_B = "02:00:00:00:00:bb"

# (table, matches, action_micro, action_mono, args)
ENTRY_SETS: Dict[str, List[tuple]] = {
    "P4": [
        ("ipv4_lpm_tbl", [(ip4("10.0.0.0"), 8)], "process", "process_v4", [7]),
        ("ipv4_lpm_tbl", [(ip4("10.1.0.0"), 16)], "process", "process_v4", [8]),
        ("ipv6_lpm_tbl", [(ip6("2001:db8::"), 32)], "process", "process_v6", [9]),
        ("forward_tbl", [7], "forward", "forward", [mac(MAC_A), mac(MAC_B), 2]),
        ("forward_tbl", [8], "forward", "forward", [mac(MAC_A), mac(MAC_B), 3]),
        ("forward_tbl", [9], "forward", "forward", [mac(MAC_A), mac(MAC_B), 4]),
    ],
}
ENTRY_SETS["P1"] = ENTRY_SETS["P4"] + [
    ("acl_tbl", [None, None, 6, 22], "deny", "deny", []),
]
ENTRY_SETS["P2"] = ENTRY_SETS["P4"] + [
    ("mpls_tbl", [100], "pop_v4", "pop_v4", [7]),
    ("mpls_tbl", [101], "pop_v6", "pop_v6", [9]),
    ("mpls_tbl", [200], "swap", "swap", [300, 7]),
    ("mpls_push_tbl", [8], "push", "push", [777]),
]
ENTRY_SETS["P3"] = ENTRY_SETS["P4"] + [
    ("nat_tbl", [ip4("192.168.0.5"), 1234], "snat", "snat", [ip4("8.8.8.8"), 40000]),
]
ENTRY_SETS["P5"] = ENTRY_SETS["P4"] + [
    (
        "npt_tbl",
        [(ip6("fd00::"), 16)],
        "translate_src",
        "translate_src",
        [0x20010DB8_00010000],
    ),
]
ENTRY_SETS["P6"] = ENTRY_SETS["P4"] + [
    ("srv4_tbl", [ip4("10.1.2.3")], "encap", "encap", [ip4("99.0.0.9"), ip4("10.0.0.77")]),
    ("srv4_tbl", [ip4("99.0.0.1")], "decap", "decap", []),
]
ENTRY_SETS["P7"] = ENTRY_SETS["P4"] + [
    ("srv6_end_tbl", [ip6("2001:db8::1"), 1], "use_sid0", "use_sid0", []),
    ("srv6_end_tbl", [ip6("2001:db8::2"), 2], "use_sid1", "use_sid1", []),
]


def make_instance(
    name: str, mode: str, use_table_index: bool = True
) -> PipelineInstance:
    """Build a pipeline instance with the standard entries installed.

    ``use_table_index=False`` forces the reference linear-scan table
    lookup (for differential tests against the indexed fast path).
    """
    composed = build_pipeline(name) if mode == "micro" else build_monolithic(name)
    instance = PipelineInstance(composed, use_table_index=use_table_index)
    api = RuntimeAPI(instance)
    for table, matches, act_micro, act_mono, args in ENTRY_SETS[name]:
        action = act_micro if mode == "micro" else act_mono
        api.add_entry(table, matches, action, args)
    return instance


# ----------------------------------------------------------------------
# Packet corpus
# ----------------------------------------------------------------------


def eth_ipv4(dst: str = "10.0.0.5", ttl: int = 64, proto: int = 6,
             src: str = "192.168.0.1", payload: bytes = b"data") -> object:
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4(src, dst, proto, ttl=ttl)
        .payload(payload)
        .build()
    )


def eth_ipv4_tcp(dst: str = "10.0.0.5", sport: int = 1234, dport: int = 80,
                 src: str = "192.168.0.1") -> object:
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4(src, dst, 6, payload_len=20)
        .tcp(sport, dport)
        .build()
    )


def eth_ipv6(dst: str = "2001:db8::5", hop: int = 64,
             src: str = "fd00::1", payload: bytes = b"data6") -> object:
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
        .ipv6(src, dst, 59, payload_len=len(payload), hop_limit=hop)
        .payload(payload)
        .build()
    )


def eth_mpls_ipv4(label: int = 100, dst: str = "10.0.0.5") -> object:
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x8847)
        .mpls(label, bos=1)
        .ipv4("192.168.0.1", dst, 6)
        .payload(b"mpls-payload")
        .build()
    )


def eth_ipv4_in_ipv4(outer_dst: str = "99.0.0.1", inner_dst: str = "10.0.0.5") -> object:
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("88.0.0.1", outer_dst, 4)
        .ipv4("192.168.0.1", inner_dst, 6)
        .payload(b"tunnel")
        .build()
    )


def eth_ipv6_srh(dst: str = "2001:db8::1", segments=None, segments_left: int = 1) -> object:
    segments = segments or ["2001:db8::5", dst]
    srh = srh_bytes(segments, 59, segments_left)
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
        .ipv6("fd00::1", dst, 43, payload_len=len(srh))
        .payload(srh)
        .build()
    )


def standard_corpus(name: str) -> List[object]:
    """A packet mix exercising the interesting paths of composition ``name``."""
    corpus = [
        eth_ipv4(),  # routed via 10/8
        eth_ipv4(dst="10.1.2.3"),  # routed via 10.1/16 (more specific)
        eth_ipv4(dst="172.16.0.1"),  # no route -> drop
        eth_ipv4(ttl=0),  # ttl expired -> drop
        eth_ipv4(ttl=1),  # decrements to 0 but still forwarded
        eth_ipv6(),  # routed v6
        eth_ipv6(dst="fe80::1"),  # no route -> drop
        eth_ipv6(hop=0),  # hop limit expired
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x9999)
        .payload(b"unknown")
        .build(),  # unknown etherType -> drop (no nh)
    ]
    if name == "P1":
        corpus += [
            eth_ipv4_tcp(dport=22),  # denied by ACL
            eth_ipv4_tcp(dport=80),  # permitted
        ]
    if name == "P2":
        corpus += [
            eth_mpls_ipv4(label=100),  # pop to v4
            eth_mpls_ipv4(label=200),  # swap
            eth_mpls_ipv4(label=999),  # unknown label -> drop
            eth_ipv4(dst="10.1.2.3"),  # routed + pushed (nh 8)
        ]
    if name == "P3":
        corpus += [
            eth_ipv4_tcp(src="192.168.0.5", sport=1234),  # SNAT hit
            eth_ipv4_tcp(src="192.168.0.6", sport=999),  # NAT miss
        ]
    if name == "P5":
        corpus += [
            eth_ipv6(src="fd00::42"),  # prefix translated
        ]
    if name == "P6":
        corpus += [
            eth_ipv4(dst="10.1.2.3"),  # encap trigger
            eth_ipv4_in_ipv4(),  # decap trigger
        ]
    if name == "P7":
        corpus += [
            eth_ipv6_srh(),  # active segment endpoint
            eth_ipv6_srh(dst="2001:db8::99", segments_left=0),  # not endpoint
        ]
    return corpus


def run_both(name: str, packets=None):
    """Run the same packets through micro and monolithic pipelines."""
    packets = packets or standard_corpus(name)
    micro = make_instance(name, "micro")
    mono = make_instance(name, "mono")
    results = []
    for pkt in packets:
        results.append(
            (pkt, micro.process(pkt.copy(), 1), mono.process(pkt.copy(), 1))
        )
    return results
