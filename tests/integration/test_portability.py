"""Portability (paper goal #3): same modules, multiple targets.

"We verify portability of µP4 programs by reusing the same modules and
compiling the composed programs for two architectures: V1Model and TNA"
(§7).  Here: the same compiled modules build for both targets without
source changes, and — since µP4 semantics are target-agnostic — the
packet-level behavior is identical.
"""

import pytest

from repro import CompilerOptions, Up4Compiler, build_dataplane
from repro.lib.catalog import PROGRAMS, link_composition
from repro.lib.loader import compile_library_module

from tests.integration.helpers import ENTRY_SETS, eth_ipv4, standard_corpus


def dataplane_for(name, target):
    from repro.lib.catalog import COMPOSITIONS

    recipe = COMPOSITIONS[name]
    main = compile_library_module(recipe[0])
    libs = [compile_library_module(m) for m in recipe[1:]]
    dp = build_dataplane(main, libs, target=target)
    for table, matches, act_micro, _, args in ENTRY_SETS[name]:
        dp.api.add_entry(table, matches, act_micro, args)
    return dp


class TestBothTargetsCompile:
    @pytest.mark.parametrize("name", PROGRAMS)
    def test_v1model_and_tna(self, name):
        v1 = dataplane_for(name, "v1model")
        tna = dataplane_for(name, "tna")
        assert "control Ingress()" in v1.target_output.source_text
        assert tna.target_output.num_stages >= 5


class TestBehaviorTargetIndependent:
    @pytest.mark.parametrize("name", ["P1", "P2", "P4", "P7"])
    def test_same_outputs_on_both_targets(self, name):
        v1 = dataplane_for(name, "v1model")
        tna = dataplane_for(name, "tna")
        for pkt in standard_corpus(name):
            a = v1.inject(pkt.copy(), in_port=1)
            b = tna.inject(pkt.copy(), in_port=1)
            assert len(a) == len(b)
            for x, y in zip(a, b):
                assert x.port == y.port
                assert x.packet.tobytes() == y.packet.tobytes()

    def test_module_source_is_target_free(self):
        """No library module mentions a target architecture."""
        from repro.lib.loader import list_sources, load_module_source

        for name in list_sources("modules"):
            text = load_module_source(name).lower()
            for forbidden in ("v1model", "tna", "tofino", "psa",
                              "standard_metadata", "egress_spec"):
                assert forbidden not in text, (name, forbidden)
