"""Behavioral tests of the VLAN extension composition (P8)."""

import pytest

from repro.lib.catalog import build_monolithic, build_pipeline
from repro.net.build import PacketBuilder, dissect, layer_fields
from repro.net.ethernet import mac
from repro.net.ipv4 import ip4
from repro.net.vlan import vlan
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI


def program(instance):
    api = RuntimeAPI(instance)
    api.add_entry("vlan_admit_tbl", [100], "admit", [])
    api.add_entry("ipv4_lpm_tbl", [(ip4("10.0.0.0"), 8)],
                  "process" if instance.composed.mode == "micro" else "process_v4",
                  [7])
    api.add_entry(
        "forward_tbl", [7], "forward",
        [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), 2],
    )
    return instance


@pytest.fixture(scope="module")
def p8():
    return program(PipelineInstance(build_pipeline("P8")))


@pytest.fixture(scope="module")
def p8_mono():
    return program(PipelineInstance(build_monolithic("P8")))


def tagged(vid=100, dst="10.0.0.5"):
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x8100)
        .layer("vlan", vlan(vid, 0x0800))
        .ipv4("192.168.0.1", dst, 6)
        .payload(b"tagged")
        .build()
    )


def untagged(dst="10.0.0.5"):
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("192.168.0.1", dst, 6)
        .payload(b"plain")
        .build()
    )


class TestVlanTermination:
    def test_tag_popped_and_routed(self, p8):
        outs = p8.process(tagged(), 1)
        assert outs and outs[0].port == 2
        layers = dissect(outs[0].packet)
        assert [n for n, _ in layers] == ["ethernet", "ipv4", "payload"]
        assert layer_fields(layers, "ethernet")["etherType"] == 0x0800

    def test_packet_shrinks_by_tag(self, p8):
        pkt = tagged()
        outs = p8.process(pkt.copy(), 1)
        assert len(outs[0].packet) == len(pkt) - 4

    def test_unknown_vlan_denied(self, p8):
        assert p8.process(tagged(vid=999), 1) == []

    def test_untagged_routed_directly(self, p8):
        outs = p8.process(untagged(), 1)
        assert outs and outs[0].port == 2

    def test_ttl_decremented_after_pop(self, p8):
        outs = p8.process(tagged(), 1)
        assert layer_fields(dissect(outs[0].packet), "ipv4")["ttl"] == 63


class TestDifferential:
    @pytest.mark.parametrize(
        "pkt_fn",
        [
            lambda: tagged(),
            lambda: tagged(vid=999),
            lambda: tagged(dst="172.16.0.1"),
            lambda: untagged(),
            lambda: untagged(dst="172.16.0.1"),
        ],
    )
    def test_micro_equals_mono(self, p8, p8_mono, pkt_fn):
        pkt = pkt_fn()
        a = p8.process(pkt.copy(), 1)
        b = p8_mono.process(pkt.copy(), 1)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.port == y.port
            assert x.packet.tobytes() == y.packet.tobytes()
