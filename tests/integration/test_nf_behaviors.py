"""Deep behavioral tests of the NF modules (P1, P3, P5, P6).

These go beyond the differential suite: they assert the *semantic*
effect of each network function on packet fields.
"""

import pytest

from repro.net.build import dissect, layer_fields
from repro.net.ipv4 import ip4
from repro.net.ipv6 import ip6

from tests.integration.helpers import (
    eth_ipv4,
    eth_ipv4_in_ipv4,
    eth_ipv4_tcp,
    eth_ipv6,
    make_instance,
)


class TestAclP1:
    @pytest.fixture(scope="class")
    def fw(self):
        return make_instance("P1", "micro")

    def test_deny_rule_drops(self, fw):
        assert fw.process(eth_ipv4_tcp(dport=22), 1) == []

    def test_permit_forwards_unmodified_l4(self, fw):
        outs = fw.process(eth_ipv4_tcp(dport=80, sport=5555), 1)
        tcp = layer_fields(dissect(outs[0].packet), "tcp")
        assert tcp["srcPort"] == 5555 and tcp["dstPort"] == 80

    def test_non_tcp_not_matched_by_port_rule(self, fw):
        # UDP packet to port 22 has protocol 17; the deny rule requires 6.
        outs = fw.process(eth_ipv4(proto=17), 1)
        assert outs  # forwarded

    def test_acl_does_not_alter_packet(self, fw):
        pkt = eth_ipv4_tcp(dport=80)
        original_v4 = layer_fields(dissect(pkt), "ipv4")
        outs = fw.process(pkt.copy(), 1)
        v4 = layer_fields(dissect(outs[0].packet), "ipv4")
        assert v4["srcAddr"] == original_v4["srcAddr"]
        assert v4["dstAddr"] == original_v4["dstAddr"]
        assert v4["ttl"] == original_v4["ttl"] - 1  # only routing touched it


class TestNatP3:
    @pytest.fixture(scope="class")
    def nat(self):
        return make_instance("P3", "micro")

    def test_snat_rewrites_source(self, nat):
        outs = nat.process(eth_ipv4_tcp(src="192.168.0.5", sport=1234), 1)
        layers = dissect(outs[0].packet)
        assert layer_fields(layers, "ipv4")["srcAddr"] == ip4("8.8.8.8")
        assert layer_fields(layers, "tcp")["srcPort"] == 40000

    def test_snat_preserves_destination(self, nat):
        outs = nat.process(
            eth_ipv4_tcp(src="192.168.0.5", sport=1234, dst="10.0.0.9"), 1
        )
        layers = dissect(outs[0].packet)
        assert layer_fields(layers, "ipv4")["dstAddr"] == ip4("10.0.0.9")
        assert layer_fields(layers, "tcp")["dstPort"] == 80

    def test_miss_passes_untranslated(self, nat):
        outs = nat.process(eth_ipv4_tcp(src="192.168.0.6", sport=999), 1)
        assert layer_fields(dissect(outs[0].packet), "ipv4")["srcAddr"] == ip4(
            "192.168.0.6"
        )

    def test_routing_uses_pre_nat_destination(self, nat):
        """NAT rewrites the source; routing still keys on dst."""
        outs = nat.process(eth_ipv4_tcp(src="192.168.0.5", sport=1234), 1)
        assert outs[0].port == 2  # 10/8 route


class TestNptv6P5:
    @pytest.fixture(scope="class")
    def npt(self):
        return make_instance("P5", "micro")

    def test_prefix_translated(self, npt):
        outs = npt.process(eth_ipv6(src="fd00::42", dst="2001:db8::5"), 1)
        v6 = layer_fields(dissect(outs[0].packet), "ipv6")
        # Upper 64 bits replaced by 2001:db8:1::/64; interface id kept.
        assert v6["srcAddr"] >> 64 == 0x20010DB8_00010000
        assert v6["srcAddr"] & ((1 << 64) - 1) == 0x42

    def test_non_matching_prefix_untouched(self, npt):
        outs = npt.process(eth_ipv6(src="2001:db8::9", dst="2001:db8::5"), 1)
        v6 = layer_fields(dissect(outs[0].packet), "ipv6")
        assert v6["srcAddr"] == ip6("2001:db8::9")


class TestSrv4P6:
    @pytest.fixture(scope="class")
    def sr(self):
        return make_instance("P6", "micro")

    def test_encap_builds_outer_header(self, sr):
        outs = sr.process(eth_ipv4(dst="10.1.2.3", ttl=50), 1)
        layers = dissect(outs[0].packet)
        names = [n for n, _ in layers]
        assert names[:3] == ["ethernet", "ipv4", "ipv4"]
        outer = layer_fields(layers, "ipv4", 0)
        inner = layer_fields(layers, "ipv4", 1)
        assert outer["dstAddr"] == ip4("10.0.0.77")  # segment endpoint
        assert outer["protocol"] == 4  # IP-in-IP
        assert outer["totalLen"] == inner["totalLen"] + 20
        assert inner["dstAddr"] == ip4("10.1.2.3")

    def test_encap_routes_on_outer(self, sr):
        outs = sr.process(eth_ipv4(dst="10.1.2.3"), 1)
        # Outer dst 10.0.0.77 matches the 10/8 route -> port 2; the
        # outer TTL (64) is decremented by routing.
        assert outs[0].port == 2
        outer = layer_fields(dissect(outs[0].packet), "ipv4", 0)
        assert outer["ttl"] == 63

    def test_decap_restores_inner(self, sr):
        outs = sr.process(eth_ipv4_in_ipv4(), 1)
        layers = dissect(outs[0].packet)
        names = [n for n, _ in layers]
        assert names.count("ipv4") == 1
        v4 = layer_fields(layers, "ipv4")
        assert v4["dstAddr"] == ip4("10.0.0.5")

    def test_decap_packet_shrinks_by_20(self, sr):
        pkt = eth_ipv4_in_ipv4()
        outs = sr.process(pkt.copy(), 1)
        assert len(outs[0].packet) == len(pkt) - 20
