"""Differential testing: µP4-composed vs monolithic pipelines.

The paper implements "equivalent monolithic programs in P4 for
comparison" (§7).  Here we check the equivalence *behaviorally*: for
every composition P1–P7, the composed program and its monolithic
baseline must produce byte-identical packets on the same ports for a
corpus that exercises each feature path.
"""

import pytest

from tests.integration.helpers import run_both, standard_corpus

ALL_PROGRAMS = ["P1", "P2", "P3", "P4", "P5", "P6", "P7"]


@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_micro_equals_monolithic(name):
    for pkt, micro_out, mono_out in run_both(name):
        assert len(micro_out) == len(mono_out), (
            f"{name}: output count differs for {pkt!r}: "
            f"micro={len(micro_out)} mono={len(mono_out)}"
        )
        for m, b in zip(micro_out, mono_out):
            assert m.port == b.port, f"{name}: port differs for {pkt!r}"
            assert m.packet.tobytes() == b.packet.tobytes(), (
                f"{name}: bytes differ for {pkt!r}:\n"
                f"  micro={m.packet.hex()}\n  mono ={b.packet.hex()}"
            )


@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_corpus_covers_forward_and_drop(name):
    """Sanity: the corpus exercises both outcomes in both modes."""
    results = run_both(name)
    forwarded = sum(1 for _, m, _ in results if m)
    dropped = sum(1 for _, m, _ in results if not m)
    assert forwarded >= 3, f"{name}: corpus forwards too little"
    assert dropped >= 2, f"{name}: corpus drops too little"


def test_corpus_sizes():
    for name in ALL_PROGRAMS:
        assert len(standard_corpus(name)) >= 9
